//! # astore-baseline
//!
//! The comparator algorithms and engines the A-Store paper evaluates
//! against (§6), re-implemented from their original descriptions:
//!
//! - [`npo`] — the no-partitioning hash join of Balkesen et al. (ICDE
//!   2013), the paper's reference \[7\];
//! - [`pro`] — the (parallel) radix-partitioned hash join from the same
//!   work;
//! - [`sortmerge`] — sort-merge join (Balkesen et al., VLDB 2013, \[13\]);
//! - [`hashagg`] — conventional hash-based grouping/aggregation plus its
//!   dense-array counterpart (the §6.1.3 micro-benchmark pair);
//! - [`denorm`] — fully materialized denormalization (the hand-coded wide
//!   table of Fig. 1 / Table 5, cf. Blink \[31\] and WideTable \[33\]);
//! - [`engine`] — a pipelined hash-join SPJGA engine standing in for the
//!   hash-join-based execution of Hyper / Vectorwise.
//!
//! The original MonetDB / Vectorwise / Hyper binaries are proprietary or
//! impractical to embed; these re-implementations expose the same
//! *algorithmic* trade-offs (hash probe vs positional lookup, pipelined vs
//! staged aggregation, materialized vs virtual denormalization), which is
//! what the paper's comparisons measure. See DESIGN.md for the
//! substitution rationale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod denorm;
pub mod engine;
pub mod hashagg;
pub mod npo;
pub mod pro;
pub mod sortmerge;

/// Convenient glob import.
pub mod prelude {
    pub use crate::denorm::{denormalize, Denormalized};
    pub use crate::engine::{execute_hash_pipeline, HashPipelineOutput};
    pub use crate::hashagg::{array_group_pair_i32, hash_group_pair_i32};
    pub use crate::npo::{npo_join_sum, NpoHashTable};
    pub use crate::pro::{pro_join_sum, radix_partition, RadixConfig};
    pub use crate::sortmerge::sortmerge_join_sum;
}
