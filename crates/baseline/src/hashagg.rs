//! Standalone hash-based grouping/aggregation — the conventional operator
//! the paper's §4.3 and §6.1.3 compare array-based aggregation against.
//!
//! "Traditional OLAP engines usually perform hash based grouping and
//! aggregation. Basically, a hash table is used for storing aggregation
//! results. The grouping attributes are used as the hash key."

use std::collections::HashMap;

/// Hash-aggregates `count(*), sum(measure)` grouped by a pair of `i32`
/// columns (the shape of the paper's §6.1.3 micro-benchmark:
/// `select count(*), lo_discount, lo_tax from lineorder group by
/// lo_discount, lo_tax`).
///
/// Returns `(group_a, group_b, count, sum)` rows in unspecified order.
pub fn hash_group_pair_i32(
    col_a: &[i32],
    col_b: &[i32],
    measure: &[i64],
) -> Vec<(i32, i32, u64, i64)> {
    assert_eq!(col_a.len(), col_b.len());
    assert_eq!(col_a.len(), measure.len());
    let mut map: HashMap<(i32, i32), (u64, i64)> = HashMap::new();
    for i in 0..col_a.len() {
        let e = map.entry((col_a[i], col_b[i])).or_insert((0, 0));
        e.0 += 1;
        e.1 = e.1.wrapping_add(measure[i]);
    }
    map.into_iter().map(|((a, b), (c, s))| (a, b, c, s)).collect()
}

/// Array-based counterpart over the same shape, for the §6.1.3 comparison:
/// pre-sizes a dense 2-D array from the column value ranges and aggregates
/// by direct addressing. Only valid when both ranges are small (the caller
/// — A-Store's optimizer — guarantees this).
///
/// Returns the same row shape as [`hash_group_pair_i32`].
pub fn array_group_pair_i32(
    col_a: &[i32],
    col_b: &[i32],
    measure: &[i64],
) -> Vec<(i32, i32, u64, i64)> {
    assert_eq!(col_a.len(), col_b.len());
    assert_eq!(col_a.len(), measure.len());
    if col_a.is_empty() {
        return Vec::new();
    }
    let (min_a, max_a) = min_max(col_a);
    let (min_b, max_b) = min_max(col_b);
    let ra = (max_a - min_a + 1) as usize;
    let rb = (max_b - min_b + 1) as usize;
    let cells = ra.checked_mul(rb).expect("group space overflow");
    assert!(cells <= 1 << 26, "array aggregation needs a small group space");
    let mut counts = vec![0u64; cells];
    let mut sums = vec![0i64; cells];
    for i in 0..col_a.len() {
        let cell = (col_a[i] - min_a) as usize * rb + (col_b[i] - min_b) as usize;
        counts[cell] += 1;
        sums[cell] = sums[cell].wrapping_add(measure[i]);
    }
    let mut out = Vec::new();
    for (cell, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let a = (cell / rb) as i32 + min_a;
        let b = (cell % rb) as i32 + min_b;
        out.push((a, b, c, sums[cell]));
    }
    out
}

fn min_max(v: &[i32]) -> (i32, i32) {
    let mut lo = v[0];
    let mut hi = v[0];
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<(i32, i32, u64, i64)>) -> Vec<(i32, i32, u64, i64)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn hash_groups_correctly() {
        let a = [1, 1, 2, 2, 1];
        let b = [0, 0, 0, 1, 0];
        let m = [10i64, 20, 30, 40, 50];
        let got = sorted(hash_group_pair_i32(&a, &b, &m));
        assert_eq!(got, vec![(1, 0, 3, 80), (2, 0, 1, 30), (2, 1, 1, 40)]);
    }

    #[test]
    fn array_matches_hash() {
        let n = 10_000;
        let a: Vec<i32> = (0..n).map(|i| i % 11).collect();
        let b: Vec<i32> = (0..n).map(|i| i % 9).collect();
        let m: Vec<i64> = (0..n).map(|i| i as i64).collect();
        assert_eq!(
            sorted(array_group_pair_i32(&a, &b, &m)),
            sorted(hash_group_pair_i32(&a, &b, &m))
        );
    }

    #[test]
    fn array_handles_negative_and_offset_ranges() {
        let a = [-5, -5, -3];
        let b = [100, 101, 100];
        let m = [1i64, 2, 3];
        assert_eq!(
            sorted(array_group_pair_i32(&a, &b, &m)),
            vec![(-5, 100, 1, 1), (-5, 101, 1, 2), (-3, 100, 1, 3)]
        );
    }

    #[test]
    fn empty_input() {
        assert!(hash_group_pair_i32(&[], &[], &[]).is_empty());
        assert!(array_group_pair_i32(&[], &[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "small group space")]
    fn array_rejects_huge_group_space() {
        let a = [0, 100_000_000];
        let b = [0, 100_000_000];
        let m = [0i64, 0];
        array_group_pair_i32(&a, &b, &m);
    }
}
