//! Sort-merge join (Balkesen et al., VLDB 2013 — the paper's reference
//! \[13\], "Multi-core, main-memory joins: sort vs. hash revisited").
//!
//! Both inputs are sorted on the join key, then merged. For duplicate keys
//! on both sides the merge produces the full cross product, as an equi-join
//! must. This is the third comparator line of the A-Store paper's Fig. 8.

/// Sorts `(key, payload)` pairs by key, returning reordered columns.
pub fn sort_pairs(keys: &[u32], payloads: &[i64]) -> (Vec<u32>, Vec<i64>) {
    assert_eq!(keys.len(), payloads.len(), "columns misaligned");
    let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
    idx.sort_unstable_by_key(|&i| keys[i as usize]);
    let sorted_keys = idx.iter().map(|&i| keys[i as usize]).collect();
    let sorted_pays = idx.iter().map(|&i| payloads[i as usize]).collect();
    (sorted_keys, sorted_pays)
}

/// Merges two key-sorted inputs, counting matches and summing matched build
/// payloads (cross product on duplicate keys).
pub fn merge_sum(build_keys: &[u32], build_payloads: &[i64], probe_keys: &[u32]) -> (u64, i64) {
    let mut matches = 0u64;
    let mut sum = 0i64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < build_keys.len() && j < probe_keys.len() {
        let (bk, pk) = (build_keys[i], probe_keys[j]);
        if bk < pk {
            i += 1;
        } else if bk > pk {
            j += 1;
        } else {
            // Run of equal keys on both sides.
            let b_end = build_keys[i..].iter().take_while(|&&k| k == bk).count() + i;
            let p_end = probe_keys[j..].iter().take_while(|&&k| k == pk).count() + j;
            let b_run = (b_end - i) as u64;
            let p_run = (p_end - j) as u64;
            matches += b_run * p_run;
            let run_sum: i64 = build_payloads[i..b_end].iter().sum();
            sum = sum.wrapping_add(run_sum.wrapping_mul(p_run as i64));
            i = b_end;
            j = p_end;
        }
    }
    (matches, sum)
}

/// The full sort-merge join: sort both sides, merge, return
/// `(matches, payload_sum)`.
pub fn sortmerge_join_sum(
    build_keys: &[u32],
    build_payloads: &[i64],
    probe_keys: &[u32],
) -> (u64, i64) {
    let (bk, bp) = sort_pairs(build_keys, build_payloads);
    let mut pk = probe_keys.to_vec();
    pk.sort_unstable();
    merge_sum(&bk, &bp, &pk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_pairs_stays_aligned() {
        let keys = [5u32, 1, 3];
        let pays = [50i64, 10, 30];
        let (k, p) = sort_pairs(&keys, &pays);
        assert_eq!(k, vec![1, 3, 5]);
        assert_eq!(p, vec![10, 30, 50]);
    }

    #[test]
    fn basic_join() {
        let (m, s) = sortmerge_join_sum(&[1, 2, 3], &[10, 20, 30], &[2, 3, 3, 9]);
        assert_eq!(m, 3);
        assert_eq!(s, 20 + 30 + 30);
    }

    #[test]
    fn duplicates_produce_cross_product() {
        // Build has key 4 twice, probe has key 4 three times: 6 matches.
        let (m, s) = sortmerge_join_sum(&[4, 4], &[1, 2], &[4, 4, 4]);
        assert_eq!(m, 6);
        assert_eq!(s, (1 + 2) * 3);
    }

    #[test]
    fn agrees_with_npo_on_random_input() {
        let build: Vec<u32> = (0..500u32).map(|i| i % 97).collect();
        let pays: Vec<i64> = build.iter().map(|&k| i64::from(k) * 11).collect();
        let probe: Vec<u32> = (0..2000u32).map(|i| (i * 31) % 120).collect();
        let sm = sortmerge_join_sum(&build, &pays, &probe);
        let npo = crate::npo::npo_join_sum(&build, &pays, &probe);
        assert_eq!(sm, npo);
    }

    #[test]
    fn disjoint_inputs_no_matches() {
        assert_eq!(sortmerge_join_sum(&[1, 2], &[1, 2], &[3, 4]), (0, 0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sortmerge_join_sum(&[], &[], &[1]), (0, 0));
        assert_eq!(sortmerge_join_sum(&[1], &[1], &[]), (0, 0));
    }
}
