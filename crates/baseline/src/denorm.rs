//! Fully materialized denormalization — the paper's "Denormalization"
//! comparator (hand-coded wide table, cf. Blink \[31\] and WideTable \[33\]).
//!
//! [`denormalize`] joins the entire star/snowflake into one wide table by
//! chasing the AIR chains once per fact row and materializing every
//! non-key column. Dictionary-compressed dimension columns keep their
//! dictionaries (only the code arrays are gathered), mirroring WideTable's
//! compression strategy. [`Denormalized::rewrite`] rebinds a normalized
//! SPJGA [`Query`] onto the wide table so the same engine can execute it —
//! the execution then has zero AIR hops, which is exactly the trade the
//! paper quantifies: faster scans for ~5× the RAM (§6.2.2).

use std::collections::HashMap;

use astore_core::graph::JoinGraph;
use astore_core::query::{ColRef, Query};
use astore_core::universal::{bind_root, BindError, Universal};
use astore_storage::column::Column;
use astore_storage::dictionary::DictColumn;
use astore_storage::prelude::*;

/// A materialized wide table plus the mapping back to the source schema.
pub struct Denormalized {
    /// A database holding the single wide table.
    pub db: Database,
    /// Name of the wide table.
    pub wide_name: String,
    /// `(source table, source column) -> wide column`.
    mapping: HashMap<(String, String), String>,
}

impl Denormalized {
    /// The wide table.
    pub fn table(&self) -> &Table {
        self.db.table(&self.wide_name).expect("wide table exists")
    }

    /// The wide column name for a source column.
    pub fn wide_column(&self, table: &str, column: &str) -> Option<&str> {
        self.mapping.get(&(table.to_owned(), column.to_owned())).map(String::as_str)
    }

    /// Rebinds a normalized query onto the wide table: all selections,
    /// grouping columns and measures become local columns of the wide
    /// table, so execution is a pure scan with no AIR hops.
    pub fn rewrite(&self, query: &Query, source_root: &str) -> Query {
        let mut out = Query::new().root(self.wide_name.clone());
        for (table, pred) in &query.selections {
            let table = table.clone();
            let renamed = pred.clone().map_columns(&|c| {
                self.wide_column(&table, c)
                    .unwrap_or_else(|| panic!("no wide column for {table}.{c}"))
                    .to_owned()
            });
            out = out.filter(self.wide_name.clone(), renamed);
        }
        for g in &query.group_by {
            let wide = self
                .wide_column(&g.table, &g.column)
                .unwrap_or_else(|| panic!("no wide column for {g}"));
            out.group_by.push(ColRef::new(self.wide_name.clone(), wide));
        }
        for a in &query.aggregates {
            let mut a = a.clone();
            a.expr = a.expr.map(|e| {
                e.map_columns(&|c| {
                    self.wide_column(source_root, c)
                        .unwrap_or_else(|| panic!("no wide column for {source_root}.{c}"))
                        .to_owned()
                })
            });
            out.aggregates.push(a);
        }
        out.order_by = query.order_by.clone();
        out.limit = query.limit;
        out
    }

    /// Approximate bytes of the wide table (for the paper's §6.2.2 space
    /// comparison: 262 GB materialized vs 46 GB virtual at SF 100).
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
    }
}

/// Materializes the full denormalization of the schema rooted at `root`
/// (explicit, or inferred as the single covering root).
///
/// Fact rows with an incomplete chain (a NULL or dangling reference, or a
/// reference to a deleted tuple) are dropped, as an inner join would do.
pub fn denormalize(db: &Database, root: Option<&str>) -> Result<Denormalized, BindError> {
    let graph = JoinGraph::build(db);
    let all: Vec<&str> = db.table_names().iter().map(String::as_str).collect();
    let root = bind_root(&graph, root, &all)?;
    let u = Universal::new(db, &graph, &root)?;
    let fact = u.root_table();
    let n = fact.num_slots();

    // Tables to fold in: the root plus everything reachable, in a stable
    // order (root first, then leaves sorted).
    let mut tables: Vec<String> = vec![root.clone()];
    tables.extend(graph.leaves_of(&root).iter().map(|s| s.to_string()));

    // Rows that survive the inner join: live fact rows whose chain to every
    // reachable table is complete and lands on live tuples.
    let mut keep: Vec<usize> = Vec::with_capacity(fact.num_live());
    {
        let mut chain_hops = Vec::new();
        for t in &tables[1..] {
            let hops = u.hops_to(t)?;
            let live = db.table(t).map(|tb| (tb.has_deletes(), tb.num_slots()));
            chain_hops.push((hops, live));
        }
        'rows: for row in 0..n {
            if !fact.is_live(row as RowId) {
                continue;
            }
            for (hops, live) in &chain_hops {
                let mut r = row;
                for keys in hops {
                    let k = keys[r];
                    if k == NULL_KEY || (k as usize) >= live.map(|(_, n)| n).unwrap_or(0) {
                        continue 'rows;
                    }
                    r = k as usize;
                }
            }
            // Liveness of the final targets.
            for (t, (hops, _)) in tables[1..].iter().zip(&chain_hops) {
                let target = db.table(t).unwrap();
                if target.has_deletes() {
                    let mut r = row;
                    for keys in hops {
                        r = keys[r] as usize;
                    }
                    if !target.is_live(r as RowId) {
                        continue 'rows;
                    }
                }
            }
            keep.push(row);
        }
    }

    // Materialize every non-key column of every table.
    let mut defs: Vec<ColumnDef> = Vec::new();
    let mut cols: Vec<Column> = Vec::new();
    let mut mapping: HashMap<(String, String), String> = HashMap::new();
    let mut used_names: HashMap<String, usize> = HashMap::new();

    for t in &tables {
        let table = db.table(t).unwrap();
        let hops = u.hops_to(t)?;
        // Pre-chase the chain once per kept row for this table.
        let dim_rows: Vec<usize> = keep
            .iter()
            .map(|&row| {
                let mut r = row;
                for keys in &hops {
                    r = keys[r] as usize;
                }
                r
            })
            .collect();
        for (name, col) in table.columns() {
            if matches!(col, Column::Key { .. }) {
                continue; // joins are materialized; references are dropped
            }
            let wide_name = match used_names.entry(name.to_owned()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(1);
                    name.to_owned()
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += 1;
                    format!("{t}_{name}")
                }
            };
            mapping.insert((t.clone(), name.to_owned()), wide_name.clone());
            let gathered = gather(col, &dim_rows);
            defs.push(ColumnDef::new(wide_name, gathered.dtype()));
            cols.push(gathered);
        }
    }

    let wide_name = "wide".to_owned();
    let wide = Table::from_columns(wide_name.clone(), Schema::new(defs), cols);
    let mut out = Database::new();
    out.add_table(wide);
    Ok(Denormalized { db: out, wide_name, mapping })
}

/// Gathers `col[rows[i]]` into a fresh column. Dictionary columns reuse the
/// source dictionary; only codes are gathered.
fn gather(col: &Column, rows: &[usize]) -> Column {
    match col {
        Column::I32(v) => Column::I32(rows.iter().map(|&r| v[r]).collect()),
        Column::I64(v) => Column::I64(rows.iter().map(|&r| v[r]).collect()),
        Column::F64(v) => Column::F64(rows.iter().map(|&r| v[r]).collect()),
        Column::Dict(dc) => {
            let codes = rows.iter().map(|&r| dc.code(r)).collect();
            Column::Dict(DictColumn::from_parts(codes, dc.dict().clone()))
        }
        Column::Str(sc) => {
            let mut out = astore_storage::strings::StrColumn::new();
            for &r in rows {
                out.push(sc.get(r));
            }
            Column::Str(out)
        }
        Column::Key { .. } => unreachable!("key columns are not materialized"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};
    use astore_core::expr::{MeasureExpr, Pred};
    use astore_core::query::{Aggregate, OrderKey};

    fn star_db() -> Database {
        let mut db = Database::new();
        let mut nation =
            Table::new("nation", Schema::new(vec![ColumnDef::new("n_name", DataType::Dict)]));
        for n in ["BRAZIL", "CHINA"] {
            nation.append_row(&[Value::Str(n.into())]);
        }
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Key { target: "nation".into() }),
                ColumnDef::new("c_seg", DataType::Dict),
            ]),
        );
        customer.append_row(&[Value::Key(0), Value::Str("AUTO".into())]);
        customer.append_row(&[Value::Key(1), Value::Str("BIKE".into())]);
        let mut fact = Table::new(
            "sales",
            Schema::new(vec![
                ColumnDef::new("s_cust", DataType::Key { target: "customer".into() }),
                ColumnDef::new("s_qty", DataType::I64),
            ]),
        );
        for (c, q) in [(0u32, 5i64), (1, 7), (0, 11), (1, 2)] {
            fact.append_row(&[Value::Key(c), Value::Int(q)]);
        }
        db.add_table(nation);
        db.add_table(customer);
        db.add_table(fact);
        db
    }

    #[test]
    fn wide_table_has_all_non_key_columns() {
        let db = star_db();
        let d = denormalize(&db, None).unwrap();
        let wide = d.table();
        assert_eq!(wide.num_slots(), 4);
        // s_qty, c_seg, n_name materialized; 2 key columns dropped.
        assert_eq!(wide.schema().arity(), 3);
        assert_eq!(d.wide_column("nation", "n_name"), Some("n_name"));
        assert_eq!(d.wide_column("sales", "s_qty"), Some("s_qty"));
    }

    #[test]
    fn wide_rows_are_the_join_result() {
        let db = star_db();
        let d = denormalize(&db, None).unwrap();
        let wide = d.table();
        let names: Vec<Value> = (0..4).map(|r| wide.column("n_name").unwrap().get(r)).collect();
        assert_eq!(
            names,
            vec![
                Value::Str("BRAZIL".into()),
                Value::Str("CHINA".into()),
                Value::Str("BRAZIL".into()),
                Value::Str("CHINA".into()),
            ]
        );
    }

    #[test]
    fn rewritten_query_matches_normalized_execution() {
        let db = star_db();
        let q = Query::new()
            .filter("customer", Pred::eq("c_seg", "AUTO"))
            .group("nation", "n_name")
            .agg(Aggregate::sum(MeasureExpr::col("s_qty"), "total"))
            .order(OrderKey::asc("n_name"));
        let normalized = execute(&db, &q, &ExecOptions::default()).unwrap();

        let d = denormalize(&db, None).unwrap();
        let wq = d.rewrite(&q, "sales");
        let wide = execute(&d.db, &wq, &ExecOptions::default()).unwrap();
        assert!(wide.result.same_contents(&normalized.result, 1e-9));
        assert_eq!(wide.result.rows, vec![vec![Value::Str("BRAZIL".into()), Value::Float(16.0)]]);
    }

    #[test]
    fn broken_chains_are_dropped_like_an_inner_join() {
        let mut db = star_db();
        db.table_mut("sales").unwrap().append_row(&[Value::Key(NULL_KEY), Value::Int(100)]);
        let d = denormalize(&db, None).unwrap();
        assert_eq!(d.table().num_slots(), 4, "NULL-chain row dropped");
    }

    #[test]
    fn deleted_rows_are_dropped() {
        let mut db = star_db();
        db.table_mut("sales").unwrap().delete(0);
        db.table_mut("customer").unwrap().delete(1);
        let d = denormalize(&db, None).unwrap();
        // sales rows: 0 deleted; 1,3 reference deleted customer; only 2 left.
        assert_eq!(d.table().num_slots(), 1);
        assert_eq!(d.table().column("s_qty").unwrap().get(0), Value::Int(11));
    }

    #[test]
    fn column_name_collisions_are_prefixed() {
        let mut db = Database::new();
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("v", DataType::I32)]));
        dim.append_row(&[Value::Int(1)]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Key { target: "dim".into() }),
                ColumnDef::new("v", DataType::I32),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(2)]);
        db.add_table(dim);
        db.add_table(fact);
        let d = denormalize(&db, None).unwrap();
        assert_eq!(d.wide_column("fact", "v"), Some("v"));
        assert_eq!(d.wide_column("dim", "v"), Some("dim_v"));
    }

    #[test]
    fn wide_table_uses_more_space_than_normalized() {
        let db = star_db();
        let d = denormalize(&db, None).unwrap();
        // The dimension attributes are replicated per fact row, so the wide
        // table is at least as large as the fact table's own columns.
        assert!(d.approx_bytes() >= db.table("sales").unwrap().num_slots() * 8);
    }
}
