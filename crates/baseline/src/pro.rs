//! PRO: parallel radix-partitioned hash join (Balkesen et al., ICDE 2013,
//! the paper's reference \[7\]).
//!
//! Both sides are radix-partitioned on their hashed keys (MSB-first, up to
//! `bits_per_pass` bits per pass so the scatter fan-out stays TLB-friendly),
//! then each partition pair is joined with a small, cache-resident hash
//! table. PRO pays a constant partitioning cost but keeps probe misses low —
//! the flat ~5 cycles/tuple line of Table 2 in the A-Store paper.

/// Tuning for the radix join.
#[derive(Debug, Clone, Copy)]
pub struct RadixConfig {
    /// Total radix bits (partition count = `2^bits`).
    pub bits: u32,
    /// Maximum bits per partitioning pass (fan-out limit).
    pub bits_per_pass: u32,
}

impl Default for RadixConfig {
    fn default() -> Self {
        RadixConfig { bits: 10, bits_per_pass: 6 }
    }
}

/// The partition id of a key: a multiplicative scramble so skewed key
/// spaces spread evenly, masked to `bits`.
#[inline]
fn part_of(key: u32, bits: u32) -> usize {
    (key.wrapping_mul(2654435761) & ((1u32 << bits) - 1)) as usize
}

/// Radix-partitions `(keys, payloads)` into `2^cfg.bits` buckets, returning
/// the reordered pairs plus partition boundaries: partition `p` occupies
/// `bounds[p]..bounds[p + 1]`, in ascending `p` order.
pub fn radix_partition(
    keys: &[u32],
    payloads: &[i64],
    cfg: RadixConfig,
) -> (Vec<u32>, Vec<i64>, Vec<usize>) {
    assert_eq!(keys.len(), payloads.len(), "columns misaligned");
    let total_bits = cfg.bits;
    let mut out_keys = keys.to_vec();
    let mut out_pays = payloads.to_vec();
    let mut scratch_keys = vec![0u32; keys.len()];
    let mut scratch_pays = vec![0i64; keys.len()];

    // MSB-first: each pass subdivides every current range by the next
    // `pass_bits` of the partition id, keeping final ranges in ascending
    // partition-id order.
    let mut ranges: Vec<std::ops::Range<usize>> = std::iter::once(0..keys.len()).collect();
    let mut remaining = total_bits;
    let mut shift = total_bits;
    while remaining > 0 {
        let pass_bits = cfg.bits_per_pass.min(remaining);
        shift -= pass_bits;
        let fanout = 1usize << pass_bits;
        let mask = fanout - 1;
        let mut new_ranges = Vec::with_capacity(ranges.len() * fanout);
        for range in &ranges {
            let (start, end) = (range.start, range.end);
            let mut hist = vec![0usize; fanout];
            for &k in &out_keys[start..end] {
                hist[(part_of(k, total_bits) >> shift) & mask] += 1;
            }
            let mut cursors = vec![0usize; fanout];
            let mut acc = start;
            for (sub, &h) in hist.iter().enumerate() {
                cursors[sub] = acc;
                new_ranges.push(acc..acc + h);
                acc += h;
            }
            for i in start..end {
                let k = out_keys[i];
                let sub = (part_of(k, total_bits) >> shift) & mask;
                let dst = cursors[sub];
                cursors[sub] += 1;
                scratch_keys[dst] = k;
                scratch_pays[dst] = out_pays[i];
            }
            out_keys[start..end].copy_from_slice(&scratch_keys[start..end]);
            out_pays[start..end].copy_from_slice(&scratch_pays[start..end]);
        }
        ranges = new_ranges;
        remaining -= pass_bits;
    }

    let mut bounds = Vec::with_capacity(ranges.len() + 1);
    bounds.push(0);
    for r in &ranges {
        bounds.push(r.end);
    }
    (out_keys, out_pays, bounds)
}

/// The full radix join: partition both sides, then join each partition pair
/// with a small chained table. Returns `(matches, payload_sum)` where the
/// sum is over matched *build* payloads.
pub fn pro_join_sum(
    build_keys: &[u32],
    build_payloads: &[i64],
    probe_keys: &[u32],
    cfg: RadixConfig,
) -> (u64, i64) {
    let probe_payloads = vec![0i64; probe_keys.len()];
    let (bk, bp, bb) = radix_partition(build_keys, build_payloads, cfg);
    let (pk, _pp, pb) = radix_partition(probe_keys, &probe_payloads, cfg);
    debug_assert_eq!(bb.len(), pb.len());

    let mut matches = 0u64;
    let mut sum = 0i64;
    for p in 0..(bb.len() - 1) {
        let b_range = bb[p]..bb[p + 1];
        let p_range = pb[p]..pb[p + 1];
        if b_range.is_empty() || p_range.is_empty() {
            continue;
        }
        let keys = &bk[b_range.clone()];
        let pays = &bp[b_range];
        let n_buckets = keys.len().next_power_of_two().max(8);
        let mask = (n_buckets - 1) as u32;
        let mut heads = vec![-1i32; n_buckets];
        let mut next = vec![-1i32; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            let b = (k.wrapping_mul(0x9E37_79B1) & mask) as usize;
            next[i] = heads[b];
            heads[b] = i as i32;
        }
        for &k in &pk[p_range] {
            let mut e = heads[(k.wrapping_mul(0x9E37_79B1) & mask) as usize];
            while e >= 0 {
                let i = e as usize;
                if keys[i] == k {
                    matches += 1;
                    sum = sum.wrapping_add(pays[i]);
                }
                e = next[i];
            }
        }
    }
    (matches, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_preserves_multiset() {
        let keys: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(37) % 517).collect();
        let pays: Vec<i64> = keys.iter().map(|&k| i64::from(k) * 2).collect();
        let (pk, pp, bounds) = radix_partition(&keys, &pays, RadixConfig::default());
        assert_eq!(pk.len(), keys.len());
        assert_eq!(*bounds.last().unwrap(), keys.len());
        let mut orig: Vec<(u32, i64)> = keys.iter().copied().zip(pays.iter().copied()).collect();
        let mut part: Vec<(u32, i64)> = pk.iter().copied().zip(pp.iter().copied()).collect();
        orig.sort_unstable();
        part.sort_unstable();
        assert_eq!(orig, part, "pairs stay aligned through partitioning");
    }

    #[test]
    fn partitions_are_coherent_single_pass() {
        check_coherence(RadixConfig { bits: 8, bits_per_pass: 8 });
    }

    #[test]
    fn partitions_are_coherent_multi_pass() {
        check_coherence(RadixConfig { bits: 8, bits_per_pass: 3 });
    }

    fn check_coherence(cfg: RadixConfig) {
        let keys: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(2246822519)).collect();
        let pays = vec![0i64; keys.len()];
        let (pk, _, bounds) = radix_partition(&keys, &pays, cfg);
        assert_eq!(bounds.len(), (1 << cfg.bits) + 1);
        for p in 0..(bounds.len() - 1) {
            for &k in &pk[bounds[p]..bounds[p + 1]] {
                assert_eq!(part_of(k, cfg.bits), p, "key {k} in wrong partition");
            }
        }
    }

    #[test]
    fn join_matches_expected_pk_fk_semantics() {
        let build: Vec<u32> = (0..2048).collect();
        let pays: Vec<i64> = build.iter().map(|&k| i64::from(k)).collect();
        let probe: Vec<u32> = (0..10_000u32).map(|i| (i * 13) % 2048).collect();
        let (m, s) = pro_join_sum(&build, &pays, &probe, RadixConfig::default());
        assert_eq!(m, 10_000);
        let expected: i64 = probe.iter().map(|&k| i64::from(k)).sum();
        assert_eq!(s, expected);
    }

    #[test]
    fn single_pass_and_multi_pass_agree() {
        let build: Vec<u32> = (0..600u32).map(|i| i * 3 % 601).collect();
        let pays: Vec<i64> = build.iter().map(|&k| i64::from(k) + 7).collect();
        let probe: Vec<u32> = (0..3000u32).map(|i| i % 700).collect();
        let one = pro_join_sum(&build, &pays, &probe, RadixConfig { bits: 6, bits_per_pass: 6 });
        let two = pro_join_sum(&build, &pays, &probe, RadixConfig { bits: 6, bits_per_pass: 2 });
        assert_eq!(one, two);
    }

    #[test]
    fn duplicate_build_keys_multiply_matches() {
        let (m, s) = pro_join_sum(&[4, 4], &[1, 2], &[4, 4], RadixConfig::default());
        assert_eq!(m, 4);
        assert_eq!(s, 6);
    }

    #[test]
    fn misses_do_not_match() {
        let (m, s) = pro_join_sum(&[1, 2, 3], &[1, 2, 3], &[7, 8, 9], RadixConfig::default());
        assert_eq!((m, s), (0, 0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(pro_join_sum(&[], &[], &[1], RadixConfig::default()), (0, 0));
        assert_eq!(pro_join_sum(&[1], &[1], &[], RadixConfig::default()), (0, 0));
    }
}
