//! A pipelined hash-join SPJGA engine — the stand-in for the hash-join
//! based execution of Hyper / Vectorwise that the paper compares against.
//!
//! Star-join plan, one pipeline (cf. Hyper's produce/consume model):
//!
//! 1. **Build**: for every dimension chain, evaluate the dimension
//!    predicates and build a *hash table* keyed on the dimension's key
//!    value, whose payload carries the chain's group codes. (In A-Store the
//!    key value equals the array index; the difference under test is the
//!    probe mechanism — hashing vs positional addressing.)
//! 2. **Probe**: one pass over the fact table; each tuple is filtered on
//!    its local predicates, probes every chain's hash table, and its
//!    measures are folded into a hash aggregation table immediately
//!    (row-at-a-time pipelining, no Measure Index).
//!
//! Correctness is identical to `astore_core::exec::execute`; the
//! performance difference is the paper's Table 3/5 comparison.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use astore_core::agg::{AggTable, Grouper};
use astore_core::exec::agg_output;
use astore_core::expr::{CompiledMeasure, CompiledPred};
use astore_core::filter::{build_chain_filter, participating_chains};
use astore_core::graph::JoinGraph;
use astore_core::groupvec::{build_group_vector, FactGrouper, GroupDict, GroupVector};
use astore_core::query::{AggFunc, Query};
use astore_core::result::QueryResult;
use astore_core::universal::{bind_root, BindError, Universal};
use astore_storage::catalog::Database;
use astore_storage::types::{Key, Value, NULL_KEY};

/// Execution report of the hash-pipeline engine.
#[derive(Debug, Clone)]
pub struct HashPipelineOutput {
    /// The result rows.
    pub result: QueryResult,
    /// Time spent building the dimension hash tables.
    pub build_time: Duration,
    /// Time spent in the probe/aggregate pipeline.
    pub probe_time: Duration,
    /// Fact tuples that survived all predicates.
    pub selected_rows: usize,
}

/// One dimension chain's hash table: dimension key -> payload index, with
/// group codes stored per payload in `group_codes` (flattened,
/// `group_cols.len()` codes per entry).
struct ChainHashTable {
    /// Positions in `query.group_by` this chain covers.
    group_cols: Vec<usize>,
    /// key -> flattened payload index.
    table: HashMap<Key, u32>,
    /// Flattened group codes.
    group_codes: Vec<Key>,
    /// Dictionaries, one per covered group column.
    dicts: Vec<GroupDict>,
    /// Fact column to probe with.
    fact_key_col: String,
}

/// Executes a SPJGA query with hash joins + hash aggregation.
pub fn execute_hash_pipeline(
    db: &Database,
    query: &Query,
) -> Result<HashPipelineOutput, BindError> {
    let graph = JoinGraph::build(db);
    let root = bind_root(&graph, query.root.as_deref(), &query.referenced_tables())?;
    let u = Universal::new(db, &graph, &root)?;
    let fact = u.root_table();

    // ---- Build phase ----
    let t_build = Instant::now();
    let chains = participating_chains(&graph, &root, query)?;
    let mut hash_tables: Vec<ChainHashTable> = Vec::with_capacity(chains.len());
    for chain in &chains {
        // Which group columns does this chain cover?
        let mut group_cols = Vec::new();
        for (gi, g) in query.group_by.iter().enumerate() {
            if g.table == root {
                continue;
            }
            let path = graph.path(&root, &g.table).expect("participating table reachable");
            if path.steps[0].key_column == chain.fact_key_col {
                group_cols.push(gi);
            }
        }
        // Qualify dimension rows (predicates + liveness + chain integrity).
        let filter = build_chain_filter(db, &graph, query, chain);
        // Group vectors give the codes to stash in the payloads.
        let gvs: Vec<GroupVector> = group_cols
            .iter()
            .map(|&gi| {
                build_group_vector(db, &graph, &root, &query.group_by[gi], Some(&filter))
                    .expect("group vector over participating chain")
            })
            .collect();

        let mut table = HashMap::new();
        let mut group_codes = Vec::new();
        for slot in filter.iter_ones() {
            // Deep chains may still null a group code (broken tail).
            let codes: Vec<Key> = gvs.iter().map(|gv| gv.codes[slot]).collect();
            if codes.contains(&NULL_KEY) {
                continue;
            }
            let idx = (group_codes.len() / group_cols.len().max(1)) as u32;
            table.insert(slot as Key, idx);
            group_codes.extend(codes);
            if group_cols.is_empty() {
                // Still need membership; store a zero-width payload.
                group_codes.extend(std::iter::empty::<Key>());
            }
        }
        hash_tables.push(ChainHashTable {
            group_cols,
            table,
            group_codes,
            dicts: gvs.into_iter().map(|gv| gv.dict).collect(),
            fact_key_col: chain.fact_key_col.clone(),
        });
    }
    let build_time = t_build.elapsed();

    // ---- Probe phase (pipelined) ----
    let t_probe = Instant::now();
    let fact_preds: Vec<CompiledPred<'_>> = query
        .selection_on(&root)
        .map(|p| p.conjuncts().iter().map(|c| c.compile(fact)).collect())
        .unwrap_or_default();

    let probe_keys: Vec<&[Key]> = hash_tables
        .iter()
        .map(|ht| {
            fact.column(&ht.fact_key_col)
                .expect("fact key column exists")
                .as_key()
                .expect("fact key column is a key")
                .1
        })
        .collect();

    // Fact-local group columns.
    let dims = query.group_by.len();
    let mut fact_groupers: Vec<(usize, FactGrouper<'_>)> = Vec::new();
    for (gi, g) in query.group_by.iter().enumerate() {
        if g.table == root {
            let col = fact
                .column(&g.column)
                .ok_or_else(|| BindError::NoColumn(g.table.clone(), g.column.clone()))?;
            fact_groupers.push((gi, FactGrouper::new(col)));
        }
    }

    let funcs: Vec<AggFunc> = query.aggregates.iter().map(|a| a.func).collect();
    let grouper = if dims == 0 { Grouper::Scalar } else { Grouper::hash(dims) };
    let mut agg = AggTable::new(grouper, &funcs);
    let measures: Vec<Option<CompiledMeasure<'_>>> =
        query.aggregates.iter().map(|a| a.expr.as_ref().map(|e| e.compile(fact))).collect();

    let n = fact.num_slots();
    let has_deletes = fact.has_deletes();
    let live = fact.live_bitmap();
    let mut coords = vec![0 as Key; dims];
    let mut selected = 0usize;
    'rows: for r in 0..n {
        if has_deletes && !live.get_or_false(r) {
            continue;
        }
        for p in &fact_preds {
            if !p.eval(r) {
                continue 'rows;
            }
        }
        // Probe every chain hash table.
        for (ht, keys) in hash_tables.iter().zip(&probe_keys) {
            let Some(&payload) = ht.table.get(&keys[r]) else {
                continue 'rows;
            };
            let w = ht.group_cols.len();
            let base = payload as usize * w;
            for (gslot, &gi) in ht.group_cols.iter().enumerate() {
                coords[gi] = ht.group_codes[base + gslot];
            }
        }
        selected += 1;
        for (gi, fg) in &mut fact_groupers {
            coords[*gi] = fg.code_for(r);
        }
        // Pipelined aggregation: fold immediately, no Measure Index.
        let cell = agg.register(&coords);
        for (j, m) in measures.iter().enumerate() {
            match m {
                Some(cm) => agg.update(j, cell, cm.eval(r)),
                None => agg.update(j, cell, 0.0),
            }
        }
    }

    // Assemble dictionaries in group_by order.
    let mut dicts: Vec<Option<GroupDict>> = (0..dims).map(|_| None).collect();
    for ht in hash_tables {
        for (slot, gi) in ht.group_cols.iter().enumerate() {
            dicts[*gi] = Some(ht.dicts[slot].clone());
        }
    }
    for (gi, fg) in fact_groupers {
        dicts[gi] = Some(fg.dict);
    }
    let dicts: Vec<GroupDict> =
        dicts.into_iter().map(|d| d.expect("every group column has a dictionary")).collect();

    let columns = query.output_names();
    let mut rows = Vec::new();
    for cell in agg.emit() {
        let mut row: Vec<Value> = Vec::with_capacity(columns.len());
        for (d, &c) in cell.coords.iter().enumerate() {
            row.push(dicts[d].label(c).to_value());
        }
        for (j, &(s, c)) in cell.accs.iter().enumerate() {
            row.push(agg_output(funcs[j], s, c));
        }
        rows.push(row);
    }
    let mut result = QueryResult { columns, rows };
    result.order_and_limit(&query.order_by, query.limit);
    let probe_time = t_probe.elapsed();

    Ok(HashPipelineOutput { result, build_time, probe_time, selected_rows: selected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};
    use astore_core::expr::{CmpOp, MeasureExpr, Pred};
    use astore_core::query::{Aggregate, OrderKey};
    use astore_storage::prelude::*;

    fn snowflake_db() -> Database {
        let mut db = Database::new();
        let mut region =
            Table::new("region", Schema::new(vec![ColumnDef::new("r_name", DataType::Dict)]));
        for r in ["AMERICA", "ASIA"] {
            region.append_row(&[Value::Str(r.into())]);
        }
        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                ColumnDef::new("n_name", DataType::Dict),
                ColumnDef::new("n_region", DataType::Key { target: "region".into() }),
            ]),
        );
        for (n, r) in [("BRAZIL", 0u32), ("CHINA", 1), ("JAPAN", 1)] {
            nation.append_row(&[Value::Str(n.into()), Value::Key(r)]);
        }
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![ColumnDef::new(
                "c_nation",
                DataType::Key { target: "nation".into() },
            )]),
        );
        for nk in [0u32, 1, 2, 1] {
            customer.append_row(&[Value::Key(nk)]);
        }
        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1996, 1997] {
            date.append_row(&[Value::Int(y)]);
        }
        let mut fact = Table::new(
            "sales",
            Schema::new(vec![
                ColumnDef::new("s_cust", DataType::Key { target: "customer".into() }),
                ColumnDef::new("s_date", DataType::Key { target: "date".into() }),
                ColumnDef::new("s_rev", DataType::I64),
            ]),
        );
        for (c, d, v) in
            [(0u32, 0u32, 10i64), (1, 0, 20), (2, 1, 30), (3, 1, 40), (1, 1, 50), (0, 1, 60)]
        {
            fact.append_row(&[Value::Key(c), Value::Key(d), Value::Int(v)]);
        }
        db.add_table(region);
        db.add_table(nation);
        db.add_table(customer);
        db.add_table(date);
        db.add_table(fact);
        db
    }

    fn snowflake_query() -> Query {
        Query::new()
            .filter("region", Pred::eq("r_name", "ASIA"))
            .filter("date", Pred::cmp("d_year", CmpOp::Ge, 1996))
            .group("nation", "n_name")
            .group("date", "d_year")
            .agg(Aggregate::sum(MeasureExpr::col("s_rev"), "revenue"))
            .agg(Aggregate::count("n"))
            .order(OrderKey::asc("n_name"))
            .order(OrderKey::asc("d_year"))
    }

    #[test]
    fn matches_air_engine_on_snowflake() {
        let db = snowflake_db();
        let q = snowflake_query();
        let air = execute(&db, &q, &ExecOptions::default()).unwrap();
        let hash = execute_hash_pipeline(&db, &q).unwrap();
        assert!(
            hash.result.same_contents(&air.result, 1e-9),
            "hash:\n{:?}\nair:\n{:?}",
            hash.result.rows,
            air.result.rows
        );
        assert_eq!(hash.selected_rows, air.plan.selected_rows);
    }

    #[test]
    fn count_only_no_group() {
        let db = snowflake_db();
        let q = Query::new()
            .root("sales")
            .filter("region", Pred::eq("r_name", "ASIA"))
            .agg(Aggregate::count("n"));
        let hash = execute_hash_pipeline(&db, &q).unwrap();
        // ASIA customers: nations CHINA(1)/JAPAN(2) -> customers 1,2,3.
        // Fact rows with those: 1,2,3,4 -> 4 rows.
        assert_eq!(hash.result.rows, vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn fact_local_groups_and_predicates() {
        let db = snowflake_db();
        let q = Query::new()
            .root("sales")
            .filter("sales", Pred::cmp("s_rev", CmpOp::Gt, 15))
            .group("sales", "s_date")
            .agg(Aggregate::sum(MeasureExpr::col("s_rev"), "rev"))
            .order(OrderKey::asc("s_date"));
        let air = execute(&db, &q, &ExecOptions::default()).unwrap();
        let hash = execute_hash_pipeline(&db, &q).unwrap();
        assert!(hash.result.same_contents(&air.result, 1e-9));
    }

    #[test]
    fn respects_deletes() {
        let mut db = snowflake_db();
        db.table_mut("customer").unwrap().delete(1);
        db.table_mut("sales").unwrap().delete(0);
        let q = snowflake_query();
        let air = execute(&db, &q, &ExecOptions::default()).unwrap();
        let hash = execute_hash_pipeline(&db, &q).unwrap();
        assert!(hash.result.same_contents(&air.result, 1e-9));
    }

    #[test]
    fn timings_populated() {
        let db = snowflake_db();
        let out = execute_hash_pipeline(&db, &snowflake_query()).unwrap();
        assert!(out.build_time.as_nanos() > 0 || out.probe_time.as_nanos() > 0);
    }
}
