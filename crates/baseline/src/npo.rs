//! NPO: the no-partitioning hash join of Balkesen et al. (ICDE 2013), the
//! paper's reference \[7\].
//!
//! The build side is hashed into one shared bucket-chained hash table; the
//! probe side streams through it. NPO shines when the build side fits the
//! LLC and degrades with random misses as it grows — exactly the behaviour
//! Table 2 of the A-Store paper contrasts with AIR's positional lookups.
//!
//! Keys are `u32` (matching AIR keys), payloads `i64`; joins materialize by
//! summing matched payloads, following the microbenchmark convention.

/// A bucket-chained hash table over `(key, payload)` pairs.
#[derive(Debug)]
pub struct NpoHashTable {
    /// Head index per bucket (`-1` = empty).
    buckets: Vec<i32>,
    /// Next pointer per entry (`-1` = end of chain).
    next: Vec<i32>,
    keys: Vec<u32>,
    payloads: Vec<i64>,
    mask: u32,
}

/// Multiplicative hashing (Fibonacci constant), then masked to the table
/// size. Matches the cheap hash used by the reference NPO implementation.
#[inline]
fn hash(key: u32, mask: u32) -> usize {
    (key.wrapping_mul(2654435761) & mask) as usize
}

impl NpoHashTable {
    /// Builds the table from aligned key/payload slices.
    pub fn build(keys: &[u32], payloads: &[i64]) -> Self {
        assert_eq!(keys.len(), payloads.len(), "build columns misaligned");
        let n_buckets = keys.len().next_power_of_two().max(16);
        let mask = (n_buckets - 1) as u32;
        let mut ht = NpoHashTable {
            buckets: vec![-1; n_buckets],
            next: vec![-1; keys.len()],
            keys: keys.to_vec(),
            payloads: payloads.to_vec(),
            mask,
        };
        for (i, &k) in keys.iter().enumerate() {
            let b = hash(k, mask);
            ht.next[i] = ht.buckets[b];
            ht.buckets[b] = i as i32;
        }
        ht
    }

    /// Probes one key, returning the first matching payload.
    #[inline]
    pub fn probe_one(&self, key: u32) -> Option<i64> {
        let mut e = self.buckets[hash(key, self.mask)];
        while e >= 0 {
            let i = e as usize;
            if self.keys[i] == key {
                return Some(self.payloads[i]);
            }
            e = self.next[i];
        }
        None
    }

    /// Streams a probe column through the table, counting matches and
    /// summing matched payloads (handles duplicate build keys).
    pub fn probe_sum(&self, probe_keys: &[u32]) -> (u64, i64) {
        let mut matches = 0u64;
        let mut sum = 0i64;
        for &k in probe_keys {
            let mut e = self.buckets[hash(k, self.mask)];
            while e >= 0 {
                let i = e as usize;
                if self.keys[i] == k {
                    matches += 1;
                    sum = sum.wrapping_add(self.payloads[i]);
                }
                e = self.next[i];
            }
        }
        (matches, sum)
    }

    /// Number of build entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` if the build side was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Convenience: full NPO join. Build on `(build_keys, build_payloads)`,
/// probe with `probe_keys`, return `(matches, payload_sum)`.
pub fn npo_join_sum(build_keys: &[u32], build_payloads: &[i64], probe_keys: &[u32]) -> (u64, i64) {
    NpoHashTable::build(build_keys, build_payloads).probe_sum(probe_keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe_one() {
        let keys = [5u32, 9, 1];
        let pay = [50i64, 90, 10];
        let ht = NpoHashTable::build(&keys, &pay);
        assert_eq!(ht.probe_one(9), Some(90));
        assert_eq!(ht.probe_one(5), Some(50));
        assert_eq!(ht.probe_one(2), None);
        assert_eq!(ht.len(), 3);
        assert!(!ht.is_empty());
    }

    #[test]
    fn probe_sum_counts_all_matches() {
        let build = [1u32, 2, 3];
        let pay = [10i64, 20, 30];
        let probe = [1u32, 3, 3, 7];
        let (m, s) = npo_join_sum(&build, &pay, &probe);
        assert_eq!(m, 3);
        assert_eq!(s, 10 + 30 + 30);
    }

    #[test]
    fn duplicate_build_keys_multiply_matches() {
        let build = [4u32, 4];
        let pay = [1i64, 2];
        let (m, s) = npo_join_sum(&build, &pay, &[4]);
        assert_eq!(m, 2);
        assert_eq!(s, 3);
    }

    #[test]
    fn pk_fk_join_equals_probe_count() {
        // Dimension: keys 0..1000, payload = key.
        let build: Vec<u32> = (0..1000).collect();
        let pay: Vec<i64> = (0..1000).collect();
        let probe: Vec<u32> = (0..5000u32).map(|i| (i * 7) % 1000).collect();
        let (m, s) = npo_join_sum(&build, &pay, &probe);
        assert_eq!(m, 5000);
        let expected: i64 = probe.iter().map(|&k| i64::from(k)).sum();
        assert_eq!(s, expected);
    }

    #[test]
    fn empty_sides() {
        let ht = NpoHashTable::build(&[], &[]);
        assert!(ht.is_empty());
        assert_eq!(ht.probe_sum(&[1, 2, 3]), (0, 0));
    }

    #[test]
    fn colliding_keys_chain_correctly() {
        // Many keys mapping to few buckets still resolve exactly.
        let build: Vec<u32> = (0..64u32).map(|i| i * 16).collect();
        let pay: Vec<i64> = build.iter().map(|&k| i64::from(k) * 3).collect();
        let ht = NpoHashTable::build(&build, &pay);
        for &k in &build {
            assert_eq!(ht.probe_one(k), Some(i64::from(k) * 3));
        }
    }
}
