//! `astore` — an interactive SQL shell over the A-Store engine.
//!
//! ```text
//! cargo run --release -p astore-cli
//! astore> \load ssb 0.05
//! astore> SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date
//!         WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod session;

use std::io::{BufRead, Write};

use session::{Outcome, Session};

fn main() {
    let mut session = Session::new();
    println!(
        "A-Store SQL shell — virtual denormalization via array index reference.\n\
         \\help for commands, \\load ssb 0.01 to get data, \\q to quit."
    );
    // Non-interactive use: each CLI argument is executed as one command.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for a in args {
            match session.feed(&a) {
                Outcome::Text(s) => {
                    if !s.is_empty() {
                        println!("{s}");
                    }
                }
                Outcome::Quit => return,
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("astore[{}]> ", session.dataset());
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match session.feed(&line) {
            Outcome::Text(s) => {
                if !s.is_empty() {
                    println!("{s}");
                }
            }
            Outcome::Quit => break,
        }
    }
}
