//! The interactive session: command parsing and execution, decoupled from
//! stdin/stdout so it is unit-testable.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use astore_api::{Connection, EmbeddedConnection, Row};
use astore_baseline::engine::execute_hash_pipeline;
use astore_core::prelude::*;
use astore_datagen::{ssb, tpch};
use astore_obs::TraceBuf;
use astore_server::json::Json;
use astore_server::Client;
use astore_sql::{sql_to_query, strip_explain_analyze};
use astore_storage::prelude::*;
use astore_storage::snapshot::SharedDatabase;

/// A REPL session holding the loaded database and settings.
pub struct Session {
    db: SharedDatabase,
    dataset: String,
    opts: ExecOptions,
    /// When set, SQL is sent to a remote astore-server instead of the
    /// local database (`\connect host:port`).
    remote: Option<Remote>,
    /// Print wall time after each query.
    pub timing: bool,
    /// Print plan diagnostics after each query.
    pub show_plan: bool,
    /// Run every SELECT as `EXPLAIN ANALYZE`: rows plus the executed plan
    /// annotated with per-phase times and per-segment prune decisions.
    pub trace: bool,
}

/// An open remote-mode connection.
struct Remote {
    addr: String,
    client: Client,
}

/// Outcome of feeding one line to the session.
pub enum Outcome {
    /// Text to display.
    Text(String),
    /// The session should end.
    Quit,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session with an empty database.
    pub fn new() -> Self {
        Session {
            db: SharedDatabase::default(),
            dataset: "(empty)".into(),
            opts: ExecOptions::default(),
            remote: None,
            timing: true,
            show_plan: false,
            trace: false,
        }
    }

    /// The currently loaded dataset label (or the remote address).
    pub fn dataset(&self) -> &str {
        match &self.remote {
            Some(r) => &r.addr,
            None => &self.dataset,
        }
    }

    /// A snapshot of the loaded database (used by embedding callers).
    #[allow(dead_code)]
    pub fn database(&self) -> Arc<Database> {
        self.db.snapshot()
    }

    /// Processes one input line (a meta command starting with `\` or a SQL
    /// statement).
    pub fn feed(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() {
            return Outcome::Text(String::new());
        }
        if let Some(rest) = line.strip_prefix('\\') {
            return self.meta(rest);
        }
        if self.remote.is_some() {
            return Outcome::Text(self.run_remote_sql(line));
        }
        Outcome::Text(self.run_sql(line))
    }

    fn meta(&mut self, cmd: &str) -> Outcome {
        let mut parts = cmd.split_whitespace();
        let head = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("");
        match head {
            "q" | "quit" | "exit" => Outcome::Quit,
            "help" | "?" => Outcome::Text(HELP.to_owned()),
            "load" => {
                let sf: f64 = parts
                    .next()
                    .or(if arg.parse::<f64>().is_ok() { None } else { Some("0.01") })
                    .unwrap_or("0.01")
                    .parse()
                    .unwrap_or(0.01);
                match arg {
                    "ssb" => {
                        let t = Instant::now();
                        self.db = SharedDatabase::new(ssb::generate(sf, 42));
                        self.dataset = format!("ssb sf={sf}");
                        Outcome::Text(format!(
                            "loaded SSB at SF={sf} ({} lineorder rows) in {:.1?}",
                            self.db.snapshot().table("lineorder").unwrap().num_slots(),
                            t.elapsed()
                        ))
                    }
                    "tpch" => {
                        let t = Instant::now();
                        self.db = SharedDatabase::new(tpch::generate(sf, 42));
                        self.dataset = format!("tpch sf={sf}");
                        Outcome::Text(format!(
                            "loaded TPC-H subset at SF={sf} ({} lineitem rows) in {:.1?}",
                            self.db.snapshot().table("lineitem").unwrap().num_slots(),
                            t.elapsed()
                        ))
                    }
                    other => Outcome::Text(format!(
                        "unknown dataset {other:?}; try \\load ssb 0.01 or \\load tpch 0.01"
                    )),
                }
            }
            "tables" => {
                let db = self.db.snapshot();
                let mut out = String::new();
                for name in db.table_names() {
                    let t = db.table(name).unwrap();
                    let _ = writeln!(
                        out,
                        "{name:<12} {:>10} rows  {:>2} columns",
                        t.num_live(),
                        t.schema().arity()
                    );
                }
                if out.is_empty() {
                    out = "no tables loaded; try \\load ssb 0.01".into();
                }
                Outcome::Text(out)
            }
            "schema" => match self.db.snapshot().table(arg) {
                None => Outcome::Text(format!("no table {arg:?}")),
                Some(t) => {
                    let mut out = String::new();
                    for d in t.schema().defs() {
                        let _ = writeln!(out, "  {:<22} {}", d.name, d.dtype);
                    }
                    Outcome::Text(out)
                }
            },
            "graph" => {
                let db = self.db.snapshot();
                let g = JoinGraph::build(&db);
                let mut out = String::new();
                for root in g.roots() {
                    let _ = writeln!(out, "root: {root}");
                    for leaf in g.leaves_of(root) {
                        let path = g.path(root, leaf).unwrap();
                        let hops: Vec<&str> =
                            path.steps.iter().map(|s| s.key_column.as_str()).collect();
                        let _ = writeln!(out, "  -> {leaf} via {hops:?}");
                    }
                }
                Outcome::Text(out)
            }
            "timing" => {
                self.timing = arg != "off";
                Outcome::Text(format!("timing {}", if self.timing { "on" } else { "off" }))
            }
            "plan" => {
                self.show_plan = arg != "off";
                Outcome::Text(format!("plan {}", if self.show_plan { "on" } else { "off" }))
            }
            "trace" => {
                self.trace = arg != "off";
                Outcome::Text(format!(
                    "trace {} — SELECTs {}",
                    if self.trace { "on" } else { "off" },
                    if self.trace {
                        "run as EXPLAIN ANALYZE (rows + executed-plan report)"
                    } else {
                        "run normally"
                    }
                ))
            }
            "threads" => {
                let n: usize = arg.parse().unwrap_or(1);
                self.opts.threads = n.max(1);
                Outcome::Text(format!(
                    "threads = {} (a fan-out ceiling: small scans stay serial; \
                     \\plan on shows the executor that actually ran)",
                    self.opts.threads
                ))
            }
            "variant" => {
                let v = match arg {
                    "r" => Some(ScanVariant::RowWise),
                    "rp" => Some(ScanVariant::RowWisePredVec),
                    "c" => Some(ScanVariant::ColumnWise),
                    "cp" => Some(ScanVariant::ColumnWisePredVec),
                    "cpg" | "full" => Some(ScanVariant::Full),
                    _ => None,
                };
                match v {
                    Some(v) => {
                        self.opts.variant = v;
                        Outcome::Text(format!("variant = {}", v.paper_name()))
                    }
                    None => Outcome::Text(
                        "usage: \\variant r|rp|c|cp|cpg (the paper's AIRScan variants)".into(),
                    ),
                }
            }
            "save" => Outcome::Text(self.save(arg)),
            "open" => Outcome::Text(self.open(arg)),
            "compare" => Outcome::Text(self.compare(parts.collect::<Vec<_>>().join(" "), arg)),
            "connect" => Outcome::Text(self.connect(arg)),
            "disconnect" => Outcome::Text(match self.remote.take() {
                Some(r) => format!("disconnected from {}", r.addr),
                None => "not connected".into(),
            }),
            "stats" => Outcome::Text(match &mut self.remote {
                None => "not connected; \\connect host:port first".into(),
                Some(r) => match r.client.stats() {
                    Ok(stats) => render_stats(&stats),
                    Err(e) => {
                        self.remote = None;
                        format!("connection lost ({e}); back to local mode")
                    }
                },
            }),
            "metrics" => Outcome::Text(match &mut self.remote {
                None => "not connected; \\connect host:port first".into(),
                Some(r) => match r.client.metrics() {
                    Ok(body) => body,
                    Err(e) => {
                        self.remote = None;
                        format!("connection lost ({e}); back to local mode")
                    }
                },
            }),
            "slowlog" => Outcome::Text(match &mut self.remote {
                None => "not connected; \\connect host:port first".into(),
                Some(r) => match r.client.slowlog() {
                    Ok(log) => render_slowlog(&log),
                    Err(e) => {
                        self.remote = None;
                        format!("connection lost ({e}); back to local mode")
                    }
                },
            }),
            other => Outcome::Text(format!("unknown command \\{other}; \\help lists commands")),
        }
    }

    /// `\save <path>`: snapshot the loaded database to disk.
    fn save(&mut self, path: &str) -> String {
        if path.is_empty() {
            return "usage: \\save <file> (e.g. \\save ssb.snapshot)".into();
        }
        if self.remote.is_some() {
            return "\\save works on the local database; \\disconnect first".into();
        }
        let db = self.db.snapshot();
        if db.is_empty() {
            return "nothing to save; \\load a dataset first".into();
        }
        let t = Instant::now();
        match astore_persist::save_snapshot(&db, path) {
            Ok(bytes) => format!(
                "saved {} table(s), {:.1} MiB to {path} in {:.1?}",
                db.len(),
                bytes as f64 / (1 << 20) as f64,
                t.elapsed()
            ),
            Err(e) => format!("could not save {path}: {e}"),
        }
    }

    /// `\open <path>`: load a snapshot from disk, replacing the session DB.
    fn open(&mut self, path: &str) -> String {
        if path.is_empty() {
            return "usage: \\open <file> (a snapshot written by \\save or astore-serve)".into();
        }
        if self.remote.is_some() {
            return "\\open works on the local database; \\disconnect first".into();
        }
        let t = Instant::now();
        match astore_persist::load_snapshot(path) {
            Ok(db) => {
                let rows: usize =
                    db.table_names().iter().map(|n| db.table(n).unwrap().num_live()).sum();
                let tables = db.len();
                self.db = SharedDatabase::new(db);
                self.dataset = path.to_owned();
                format!("opened {path}: {tables} table(s), {rows} live rows in {:.1?}", t.elapsed())
            }
            Err(e) => format!("could not open {path}: {e}"),
        }
    }

    /// `\connect host:port`: switch to remote mode over the wire protocol.
    fn connect(&mut self, addr: &str) -> String {
        if addr.is_empty() {
            return "usage: \\connect host:port (e.g. \\connect 127.0.0.1:3939)".into();
        }
        match Client::connect(addr) {
            Ok(client) => {
                self.remote = Some(Remote { addr: addr.to_owned(), client });
                format!(
                    "connected to {addr}; SQL now runs remotely (\\disconnect to go local, \
                     \\stats for server counters)"
                )
            }
            Err(e) => format!("could not connect to {addr}: {e}"),
        }
    }

    /// Executes SQL on the connected server and renders the response frame.
    /// With `\trace on`, SELECTs are wrapped as `EXPLAIN ANALYZE` so the
    /// server returns (and we render) the executed-plan report too.
    fn run_remote_sql(&mut self, sql: &str) -> String {
        let wrapped;
        let sql = if self.trace && is_select(sql) && strip_explain_analyze(sql).is_none() {
            wrapped = format!("EXPLAIN ANALYZE {sql}");
            &wrapped
        } else {
            sql
        };
        let remote = self.remote.as_mut().expect("checked by caller");
        match remote.client.sql(sql) {
            Ok(frame) => {
                let mut out = render_frame(&frame, self.timing);
                // With \plan on, say which engine the adaptive router ran
                // this statement on, and (one extra round trip — a bare
                // EXPLAIN previews without executing or perturbing the
                // router) the feature that dominated the choice.
                if self.show_plan {
                    if let Some(engine) = frame.get("engine").and_then(Json::as_str) {
                        let _ = write!(out, "\nengine: {engine}");
                        if let Ok(ex) = remote.client.sql(&format!("EXPLAIN {sql}")) {
                            for line in explain_lines(&ex) {
                                if let Some(tf) = line.strip_prefix("top_feature: ") {
                                    let _ = write!(out, "  ({tf})");
                                }
                            }
                        }
                    }
                }
                out
            }
            Err(e) => {
                self.remote = None;
                format!("connection lost ({e}); back to local mode")
            }
        }
    }

    /// Executes local SQL — reads *and* rowid-addressed writes — through
    /// the unified connection API ([`astore_api::Connection`]): prepare,
    /// bind (no parameters at the REPL), execute.
    fn run_sql(&mut self, sql: &str) -> String {
        if let Some(inner) = strip_explain_analyze(sql) {
            return self.run_analyze(inner);
        }
        if self.trace && is_select(sql) {
            return self.run_analyze(sql);
        }
        let mut conn = EmbeddedConnection::over(self.db.clone()).with_options(self.opts.clone());
        let stmt = match conn.prepare(sql) {
            Ok(s) => s,
            Err(e) => return e.render(),
        };
        let t = Instant::now();
        if stmt.is_select() {
            match conn.query_with_plan(&stmt, &[]) {
                Err(e) => e.render(),
                Ok((rows, plan)) => {
                    let columns = rows.columns().to_vec();
                    let result =
                        QueryResult { columns, rows: rows.map(Row::into_values).collect() };
                    let mut s = result.to_table_string();
                    let _ = writeln!(s, "({} rows)", result.len());
                    if self.timing {
                        let _ = writeln!(s, "time: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
                    }
                    if self.show_plan {
                        let _ = writeln!(
                            s,
                            "plan: root={} variant={} executor={} segments={}/{} \
                             predvec_chains={} agg={:?} selected={} groups={}",
                            plan.root,
                            self.opts.variant.paper_name(),
                            plan.executor,
                            plan.segments_scanned,
                            plan.segments_pruned,
                            plan.predvec_chains,
                            plan.agg_strategy,
                            plan.selected_rows,
                            plan.groups
                        );
                    }
                    s
                }
            }
        } else {
            match conn.execute_prepared(&stmt, &[]) {
                Err(e) => e.render(),
                Ok(n) => {
                    let mut s = format!("{n} rows affected");
                    if self.timing {
                        let _ = write!(s, "\ntime: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
                    }
                    s
                }
            }
        }
    }

    /// `EXPLAIN ANALYZE <select>` in local mode: execute with a span
    /// recorder attached and render the rows followed by the report —
    /// the same report the server puts in its `analyze` frame member.
    fn run_analyze(&mut self, sql: &str) -> String {
        let db = self.db.snapshot();
        let q = match sql_to_query(sql, &db) {
            Ok(q) => q,
            Err(e) => return format!("error: {e}"),
        };
        let trace = Arc::new(TraceBuf::new());
        let opts = self.opts.clone().trace(Arc::clone(&trace));
        let t = Instant::now();
        let out = match execute(&db, &q, &opts) {
            Ok(o) => o,
            Err(e) => return format!("error: {e}"),
        };
        let mut s = out.result.to_table_string();
        let _ = writeln!(s, "({} rows)", out.result.rows.len());
        if self.timing {
            let _ = writeln!(s, "time: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
        }
        for line in render_analyze(&out, &trace) {
            let _ = writeln!(s, "{line}");
        }
        s
    }

    /// `\compare <sql>`: run on A-Store and the hash-join pipeline, check
    /// agreement, report both times.
    fn compare(&mut self, tail: String, first: &str) -> String {
        let sql = format!("{first} {tail}");
        let db = self.db.snapshot();
        let q = match sql_to_query(&sql, &db) {
            Ok(q) => q,
            Err(e) => return format!("error: {e}"),
        };
        let t = Instant::now();
        let air = match execute(&db, &q, &self.opts) {
            Ok(o) => o,
            Err(e) => return format!("error: {e}"),
        };
        let air_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let hash = match execute_hash_pipeline(&db, &q) {
            Ok(o) => o,
            Err(e) => return format!("error: {e}"),
        };
        let hash_ms = t.elapsed().as_secs_f64() * 1e3;
        let agree = air.result.same_contents(&hash.result, 1e-6);
        format!(
            "A-Store: {air_ms:.2} ms, hash-join pipeline: {hash_ms:.2} ms, results {}",
            if agree { "agree ✓" } else { "DISAGREE ✗" }
        )
    }
}

/// Renders a wire-protocol response frame for the terminal.
fn render_frame(frame: &Json, timing: bool) -> String {
    if frame.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = frame.get("code").and_then(Json::as_str).unwrap_or("unknown");
        let msg = frame.get("error").and_then(Json::as_str).unwrap_or("(no message)");
        return format!("error [{code}]: {msg}");
    }
    let mut out = String::new();
    if let Some(n) = frame.get("rows_affected").and_then(Json::as_i64) {
        let _ = write!(out, "{n} rows affected");
    } else {
        // Rebuild a QueryResult so local and remote mode share one table
        // renderer (and render identically).
        let result = QueryResult {
            columns: frame
                .get("columns")
                .and_then(Json::as_array)
                .map(|cs| cs.iter().filter_map(|c| c.as_str().map(str::to_owned)).collect())
                .unwrap_or_default(),
            rows: frame
                .get("rows")
                .and_then(Json::as_array)
                .map(|rs| {
                    rs.iter()
                        .filter_map(Json::as_array)
                        .map(|r| r.iter().map(json_to_value).collect())
                        .collect()
                })
                .unwrap_or_default(),
        };
        out.push_str(&result.to_table_string());
        let _ = write!(out, "({} rows)", result.len());
        if frame.get("cached_plan").and_then(Json::as_bool) == Some(true) {
            let _ = write!(out, " [cached plan]");
        }
    }
    if timing {
        if let Some(us) = frame.get("elapsed_us").and_then(Json::as_i64) {
            let _ = write!(out, "\nserver time: {:.2} ms", us as f64 / 1e3);
        }
    }
    if let Some(lines) = frame.get("analyze").and_then(Json::as_array) {
        for line in lines {
            if let Some(s) = line.as_str() {
                let _ = write!(out, "\n{s}");
            }
        }
    }
    out
}

/// The `explain` lines of an EXPLAIN response frame, if any.
fn explain_lines(frame: &Json) -> Vec<&str> {
    frame
        .get("explain")
        .and_then(Json::as_array)
        .map(|ls| ls.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default()
}

/// Whether the statement is a SELECT (the only kind `\trace` wraps).
fn is_select(sql: &str) -> bool {
    sql.trim_start().get(..6).is_some_and(|head| head.eq_ignore_ascii_case("select"))
}

fn json_to_value(v: &Json) -> Value {
    match v {
        Json::Int(x) => Value::Int(*x),
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Bool(b) => Value::Str(b.to_string()),
        Json::Null => Value::Null,
        other => Value::Str(other.to_string()),
    }
}

fn render_cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Null => "NULL".into(),
        other => other.to_string(),
    }
}

/// Renders the `stats` payload as aligned `key value` lines.
fn render_stats(stats: &Json) -> String {
    let Json::Object(map) = stats else {
        return stats.to_string();
    };
    let w = map.keys().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in map {
        let _ = writeln!(out, "{k:<w$}  {}", render_cell(v));
    }
    out
}

/// Renders the `slowlog` payload: threshold header, one line per entry.
fn render_slowlog(log: &Json) -> String {
    let threshold = log.get("threshold_ms").and_then(Json::as_i64).unwrap_or(0);
    let mut out = if threshold == 0 {
        "slowlog disabled (start the server with --slow-ms <n>)\n".to_owned()
    } else {
        format!("slowlog threshold: {threshold} ms\n")
    };
    let entries = log.get("entries").and_then(Json::as_array).unwrap_or_default();
    if entries.is_empty() {
        out.push_str("(no slow statements captured)");
        return out;
    }
    for e in entries {
        let us = e.get("elapsed_us").and_then(Json::as_i64).unwrap_or(0);
        // The server emits ago_s as a float (fractional seconds).
        let ago = e.get("ago_s").and_then(Json::as_f64).unwrap_or(0.0);
        let tmpl = e.get("template").and_then(Json::as_str).unwrap_or("?");
        let _ = writeln!(out, "{:>9.2} ms  {ago:>7.1}s ago  {tmpl}", us as f64 / 1e3);
    }
    out
}

const HELP: &str = "\
commands:
  \\load ssb <sf>     generate and load the Star Schema Benchmark
  \\load tpch <sf>    generate and load the TPC-H snowflake subset
  \\tables            list tables
  \\schema <table>    show a table's columns
  \\graph             show the join graph (roots, AIR chains)
  \\variant <v>       r | rp | c | cp | cpg   (AIRScan variants)
  \\threads <n>       parallel workers
  \\timing on|off     per-query wall time
  \\plan on|off       plan diagnostics (remote mode: also the engine the
                     adaptive router chose and its top deciding feature)
  \\trace on|off      run SELECTs as EXPLAIN ANALYZE (rows + span report)
  \\save <file>       snapshot the loaded database to disk
  \\open <file>       load a snapshot written by \\save (or astore-serve)
  \\compare <sql>     run on A-Store and the hash-join baseline, verify agreement
  \\connect h:p       remote mode: send SQL to an astore-server
  \\disconnect        leave remote mode
  \\stats             remote server counters (remote mode only)
  \\metrics           remote Prometheus scrape body (remote mode only)
  \\slowlog           remote slow-query ring, newest first (remote mode only)
  \\help              this text
  \\q                 quit
anything else is executed as SQL: SPJGA SELECTs, plus INSERT / UPDATE /
DELETE addressed by rowid (local and remote mode alike); prefix a SELECT
with EXPLAIN ANALYZE for the executed plan annotated with actual times.";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(o: Outcome) -> String {
        match o {
            Outcome::Text(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn load_and_query_ssb() {
        let mut s = Session::new();
        let msg = text(s.feed("\\load ssb 0.001"));
        assert!(msg.contains("loaded SSB"), "{msg}");
        assert_eq!(s.dataset(), "ssb sf=0.001");
        let out = text(s.feed(
            "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
             WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        ));
        assert!(out.contains("d_year"), "{out}");
        assert!(out.contains("(7 rows)"), "{out}");
    }

    #[test]
    fn meta_commands() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let tables = text(s.feed("\\tables"));
        assert!(tables.contains("lineorder"));
        let schema = text(s.feed("\\schema date"));
        assert!(schema.contains("d_year"));
        let graph = text(s.feed("\\graph"));
        assert!(graph.contains("root: lineorder"));
        assert!(text(s.feed("\\variant cp")).contains("AIRScan_C_P"));
        assert!(text(s.feed("\\threads 2")).contains("threads = 2"));
        assert!(text(s.feed("\\timing off")).contains("timing off"));
        assert!(text(s.feed("\\plan on")).contains("plan on"));
        assert!(text(s.feed("\\help")).contains("\\load"));
        assert!(matches!(s.feed("\\q"), Outcome::Quit));
    }

    #[test]
    fn sql_errors_are_reported_not_fatal() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let out = text(s.feed("SELECT nope FROM lineorder"));
        assert!(out.contains("error"), "{out}");
        // The session still works.
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(out.contains("(1 rows)"), "{out}");
    }

    #[test]
    fn save_and_open_roundtrip_query_results() {
        let path = std::env::temp_dir().join(format!("astore-cli-{}.snapshot", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let path_s = path.to_str().unwrap().to_owned();

        let mut s = Session::new();
        assert!(text(s.feed("\\save x")).contains("nothing to save"));
        text(s.feed("\\load ssb 0.001"));
        let q = "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
                 WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year";
        let before = text(s.feed(q));
        let msg = text(s.feed(&format!("\\save {path_s}")));
        assert!(msg.contains("saved"), "{msg}");

        let mut fresh = Session::new();
        let msg = text(fresh.feed(&format!("\\open {path_s}")));
        assert!(msg.contains("opened"), "{msg}");
        assert_eq!(fresh.dataset(), path_s);
        let after = text(fresh.feed(q));
        // Identical rendering implies identical rows (timing lines differ).
        let table = |out: &str| {
            out.lines().take_while(|l| !l.starts_with("time:")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(table(&before), table(&after));

        assert!(text(fresh.feed("\\open /nonexistent/nope.snap")).contains("could not open"));
        assert!(text(fresh.feed("\\save")).contains("usage"));
        assert!(text(fresh.feed("\\open")).contains("usage"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn local_writes_work_through_the_connection_api() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        text(s.feed("\\timing off"));
        let before = text(s.feed("SELECT count(*) FROM lineorder"));
        let out = text(s.feed("UPDATE customer SET c_mktsegment = 'MACHINERY' WHERE rowid = 0"));
        assert!(out.contains("1 rows affected"), "{out}");
        // Parse errors render caret diagnostics instead of dying.
        let out = text(s.feed("DELETE FROM lineorder WHERE other = 1"));
        assert!(out.contains("error[parse_error]"), "{out}");
        let after = text(s.feed("SELECT count(*) FROM lineorder"));
        assert_eq!(before, after, "failed write mutated nothing");
    }

    #[test]
    fn compare_reports_agreement() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let out = text(s.feed(
            "\\compare SELECT c_region, count(*) AS n FROM lineorder, customer \
             WHERE lo_custkey = c_custkey GROUP BY c_region",
        ));
        assert!(out.contains("agree ✓"), "{out}");
    }

    #[test]
    fn plan_output_shows_variant() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        text(s.feed("\\plan on"));
        text(s.feed("\\variant cpg"));
        let out = text(s.feed(
            "SELECT count(*) FROM lineorder, date WHERE lo_orderdate = d_datekey \
             AND d_year = 1994",
        ));
        assert!(out.contains("AIRScan_C_P_G"), "{out}");
        assert!(out.contains("predvec_chains=1"), "{out}");
        assert!(out.contains("executor=serial"), "{out}");
        assert!(out.contains("segments=1/0"), "one segment scanned, none pruned: {out}");
    }

    #[test]
    fn plan_output_reports_clamped_executor() {
        // \threads 4 on a tiny dataset: the planner keeps the scan serial
        // and the plan line says so instead of silently ignoring the knob.
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        text(s.feed("\\plan on"));
        assert!(text(s.feed("\\threads 4")).contains("threads = 4"));
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(out.contains("executor=serial (clamped from 4 requested)"), "{out}");
    }

    #[test]
    fn tpch_dataset_loads() {
        let mut s = Session::new();
        let msg = text(s.feed("\\load tpch 0.001"));
        assert!(msg.contains("TPC-H"), "{msg}");
        let out = text(s.feed(
            "SELECT n_name, count(*) AS n FROM lineitem, orders, customer, nation \
             WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey \
             AND c_nationkey = n_nationkey GROUP BY n_name ORDER BY n DESC LIMIT 3",
        ));
        assert!(out.contains("(3 rows)"), "{out}");
    }

    #[test]
    fn explain_analyze_local_renders_rows_and_spans() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let out = text(s.feed(
            "EXPLAIN ANALYZE SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
             WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        ));
        assert!(out.contains("(7 rows)"), "{out}");
        assert!(out.contains("phases: leaf="), "{out}");
        assert!(out.contains("segments: scanned="), "{out}");
        assert!(out.contains("phase2_scan"), "{out}");
    }

    #[test]
    fn trace_toggle_annotates_local_selects() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        assert!(text(s.feed("\\trace on")).contains("trace on"));
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(out.contains("(1 rows)"), "{out}");
        assert!(out.contains("trace: "), "{out}");
        // Writes are untouched by the toggle.
        let out = text(s.feed("UPDATE customer SET c_mktsegment = 'MACHINERY' WHERE rowid = 0"));
        assert!(out.contains("1 rows affected"), "{out}");
        assert!(text(s.feed("\\trace off")).contains("trace off"));
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(!out.contains("trace: "), "{out}");
    }

    #[test]
    fn remote_mode_roundtrip() {
        use astore_server::{start, Engine, ServerConfig};
        use std::sync::Arc;

        let engine = Arc::new(Engine::new(SharedDatabase::new(ssb::generate(0.001, 42))));
        let h = start(
            engine,
            ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
        )
        .unwrap();

        let mut s = Session::new();
        let msg = text(s.feed(&format!("\\connect {}", h.addr())));
        assert!(msg.contains("connected"), "{msg}");
        assert_eq!(s.dataset(), h.addr().to_string());

        let out = text(s.feed(
            "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
             WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        ));
        assert!(out.contains("d_year"), "{out}");
        assert!(out.contains("(7 rows)"), "{out}");
        assert!(out.contains("server time"), "{out}");

        let out = text(s.feed("SELECT nope FROM lineorder"));
        assert!(out.contains("error [plan_error]"), "{out}");

        let out = text(s.feed("\\stats"));
        assert!(out.contains("queries"), "{out}");
        assert!(out.contains("latency_p99_us"), "{out}");

        // Bare EXPLAIN ANALYZE passes through; the frame's report renders.
        let out = text(s.feed("EXPLAIN ANALYZE SELECT count(*) FROM lineorder"));
        assert!(out.contains("(1 rows)"), "{out}");
        assert!(out.contains("phases: leaf="), "{out}");

        // \plan on names the engine the router ran the SELECT on and the
        // top feature behind the choice (via a bare-EXPLAIN preview).
        text(s.feed("\\plan on"));
        let out = text(s.feed("SELECT count(*) AS n FROM lineorder"));
        assert!(out.contains("engine: air  ("), "{out}");
        assert!(out.contains('='), "{out}");
        text(s.feed("\\plan off"));

        // \trace on wraps plain SELECTs as EXPLAIN ANALYZE server-side.
        text(s.feed("\\trace on"));
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(out.contains("trace: "), "{out}");
        text(s.feed("\\trace off"));

        let metrics = text(s.feed("\\metrics"));
        assert!(metrics.contains("astore_server_queries_total"), "{metrics}");
        let slow = text(s.feed("\\slowlog"));
        assert!(slow.contains("slowlog disabled"), "{slow}");

        let out = text(s.feed("\\disconnect"));
        assert!(out.contains("disconnected"), "{out}");
        assert_eq!(s.dataset(), "(empty)");
        h.shutdown();
    }

    #[test]
    fn connect_failure_stays_local() {
        let mut s = Session::new();
        let msg = text(s.feed("\\connect 127.0.0.1:1")); // nothing listens there
        assert!(msg.contains("could not connect"), "{msg}");
        assert!(text(s.feed("\\connect")).contains("usage"));
        assert!(text(s.feed("\\disconnect")).contains("not connected"));
        assert!(text(s.feed("\\stats")).contains("not connected"));
        assert!(text(s.feed("\\metrics")).contains("not connected"));
        assert!(text(s.feed("\\slowlog")).contains("not connected"));
    }

    #[test]
    fn unknown_commands_and_empty_lines() {
        let mut s = Session::new();
        assert!(text(s.feed("\\wat")).contains("unknown command"));
        assert!(text(s.feed("   ")).is_empty());
        assert!(text(s.feed("\\load nope")).contains("unknown dataset"));
    }
}
