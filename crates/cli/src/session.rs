//! The interactive session: command parsing and execution, decoupled from
//! stdin/stdout so it is unit-testable.

use std::fmt::Write as _;
use std::time::Instant;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::prelude::*;
use astore_datagen::{ssb, tpch};
use astore_sql::sql_to_query;
use astore_storage::prelude::*;

/// A REPL session holding the loaded database and settings.
pub struct Session {
    db: Database,
    dataset: String,
    opts: ExecOptions,
    /// Print wall time after each query.
    pub timing: bool,
    /// Print plan diagnostics after each query.
    pub show_plan: bool,
}

/// Outcome of feeding one line to the session.
pub enum Outcome {
    /// Text to display.
    Text(String),
    /// The session should end.
    Quit,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session with an empty database.
    pub fn new() -> Self {
        Session {
            db: Database::new(),
            dataset: "(empty)".into(),
            opts: ExecOptions::default(),
            timing: true,
            show_plan: false,
        }
    }

    /// The currently loaded dataset label.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Direct access to the loaded database (used by embedding callers).
    #[allow(dead_code)]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Processes one input line (a meta command starting with `\` or a SQL
    /// statement).
    pub fn feed(&mut self, line: &str) -> Outcome {
        let line = line.trim();
        if line.is_empty() {
            return Outcome::Text(String::new());
        }
        if let Some(rest) = line.strip_prefix('\\') {
            return self.meta(rest);
        }
        Outcome::Text(self.run_sql(line))
    }

    fn meta(&mut self, cmd: &str) -> Outcome {
        let mut parts = cmd.split_whitespace();
        let head = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("");
        match head {
            "q" | "quit" | "exit" => Outcome::Quit,
            "help" | "?" => Outcome::Text(HELP.to_owned()),
            "load" => {
                let sf: f64 = parts
                    .next()
                    .or(if arg.parse::<f64>().is_ok() { None } else { Some("0.01") })
                    .unwrap_or("0.01")
                    .parse()
                    .unwrap_or(0.01);
                match arg {
                    "ssb" => {
                        let t = Instant::now();
                        self.db = ssb::generate(sf, 42);
                        self.dataset = format!("ssb sf={sf}");
                        Outcome::Text(format!(
                            "loaded SSB at SF={sf} ({} lineorder rows) in {:.1?}",
                            self.db.table("lineorder").unwrap().num_slots(),
                            t.elapsed()
                        ))
                    }
                    "tpch" => {
                        let t = Instant::now();
                        self.db = tpch::generate(sf, 42);
                        self.dataset = format!("tpch sf={sf}");
                        Outcome::Text(format!(
                            "loaded TPC-H subset at SF={sf} ({} lineitem rows) in {:.1?}",
                            self.db.table("lineitem").unwrap().num_slots(),
                            t.elapsed()
                        ))
                    }
                    other => Outcome::Text(format!(
                        "unknown dataset {other:?}; try \\load ssb 0.01 or \\load tpch 0.01"
                    )),
                }
            }
            "tables" => {
                let mut out = String::new();
                for name in self.db.table_names() {
                    let t = self.db.table(name).unwrap();
                    let _ = writeln!(
                        out,
                        "{name:<12} {:>10} rows  {:>2} columns",
                        t.num_live(),
                        t.schema().arity()
                    );
                }
                if out.is_empty() {
                    out = "no tables loaded; try \\load ssb 0.01".into();
                }
                Outcome::Text(out)
            }
            "schema" => match self.db.table(arg) {
                None => Outcome::Text(format!("no table {arg:?}")),
                Some(t) => {
                    let mut out = String::new();
                    for d in t.schema().defs() {
                        let _ = writeln!(out, "  {:<22} {}", d.name, d.dtype);
                    }
                    Outcome::Text(out)
                }
            },
            "graph" => {
                let g = JoinGraph::build(&self.db);
                let mut out = String::new();
                for root in g.roots() {
                    let _ = writeln!(out, "root: {root}");
                    for leaf in g.leaves_of(root) {
                        let path = g.path(root, leaf).unwrap();
                        let hops: Vec<&str> =
                            path.steps.iter().map(|s| s.key_column.as_str()).collect();
                        let _ = writeln!(out, "  -> {leaf} via {hops:?}");
                    }
                }
                Outcome::Text(out)
            }
            "timing" => {
                self.timing = arg != "off";
                Outcome::Text(format!("timing {}", if self.timing { "on" } else { "off" }))
            }
            "plan" => {
                self.show_plan = arg != "off";
                Outcome::Text(format!("plan {}", if self.show_plan { "on" } else { "off" }))
            }
            "threads" => {
                let n: usize = arg.parse().unwrap_or(1);
                self.opts.threads = n.max(1);
                Outcome::Text(format!("threads = {}", self.opts.threads))
            }
            "variant" => {
                let v = match arg {
                    "r" => Some(ScanVariant::RowWise),
                    "rp" => Some(ScanVariant::RowWisePredVec),
                    "c" => Some(ScanVariant::ColumnWise),
                    "cp" => Some(ScanVariant::ColumnWisePredVec),
                    "cpg" | "full" => Some(ScanVariant::Full),
                    _ => None,
                };
                match v {
                    Some(v) => {
                        self.opts.variant = v;
                        Outcome::Text(format!("variant = {}", v.paper_name()))
                    }
                    None => Outcome::Text(
                        "usage: \\variant r|rp|c|cp|cpg (the paper's AIRScan variants)".into(),
                    ),
                }
            }
            "compare" => Outcome::Text(self.compare(parts.collect::<Vec<_>>().join(" "), arg)),
            other => Outcome::Text(format!("unknown command \\{other}; \\help lists commands")),
        }
    }

    fn run_sql(&mut self, sql: &str) -> String {
        let q = match sql_to_query(sql, &self.db) {
            Ok(q) => q,
            Err(e) => return format!("error: {e}"),
        };
        let t = Instant::now();
        match execute(&self.db, &q, &self.opts) {
            Err(e) => format!("error: {e}"),
            Ok(out) => {
                let mut s = out.result.to_table_string();
                let _ = writeln!(s, "({} rows)", out.result.len());
                if self.timing {
                    let _ = writeln!(s, "time: {:.2} ms", t.elapsed().as_secs_f64() * 1e3);
                }
                if self.show_plan {
                    let _ = writeln!(
                        s,
                        "plan: root={} variant={} predvec_chains={} agg={:?} selected={} groups={}",
                        out.plan.root,
                        self.opts.variant.paper_name(),
                        out.plan.predvec_chains,
                        out.plan.agg_strategy,
                        out.plan.selected_rows,
                        out.plan.groups
                    );
                }
                s
            }
        }
    }

    /// `\compare <sql>`: run on A-Store and the hash-join pipeline, check
    /// agreement, report both times.
    fn compare(&mut self, tail: String, first: &str) -> String {
        let sql = format!("{first} {tail}");
        let q = match sql_to_query(&sql, &self.db) {
            Ok(q) => q,
            Err(e) => return format!("error: {e}"),
        };
        let t = Instant::now();
        let air = match execute(&self.db, &q, &self.opts) {
            Ok(o) => o,
            Err(e) => return format!("error: {e}"),
        };
        let air_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let hash = match execute_hash_pipeline(&self.db, &q) {
            Ok(o) => o,
            Err(e) => return format!("error: {e}"),
        };
        let hash_ms = t.elapsed().as_secs_f64() * 1e3;
        let agree = air.result.same_contents(&hash.result, 1e-6);
        format!(
            "A-Store: {air_ms:.2} ms, hash-join pipeline: {hash_ms:.2} ms, results {}",
            if agree { "agree ✓" } else { "DISAGREE ✗" }
        )
    }
}

const HELP: &str = "\
commands:
  \\load ssb <sf>     generate and load the Star Schema Benchmark
  \\load tpch <sf>    generate and load the TPC-H snowflake subset
  \\tables            list tables
  \\schema <table>    show a table's columns
  \\graph             show the join graph (roots, AIR chains)
  \\variant <v>       r | rp | c | cp | cpg   (AIRScan variants)
  \\threads <n>       parallel workers
  \\timing on|off     per-query wall time
  \\plan on|off       plan diagnostics
  \\compare <sql>     run on A-Store and the hash-join baseline, verify agreement
  \\help              this text
  \\q                 quit
anything else is executed as SQL (SPJGA subset).";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(o: Outcome) -> String {
        match o {
            Outcome::Text(s) => s,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn load_and_query_ssb() {
        let mut s = Session::new();
        let msg = text(s.feed("\\load ssb 0.001"));
        assert!(msg.contains("loaded SSB"), "{msg}");
        assert_eq!(s.dataset(), "ssb sf=0.001");
        let out = text(s.feed(
            "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
             WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
        ));
        assert!(out.contains("d_year"), "{out}");
        assert!(out.contains("(7 rows)"), "{out}");
    }

    #[test]
    fn meta_commands() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let tables = text(s.feed("\\tables"));
        assert!(tables.contains("lineorder"));
        let schema = text(s.feed("\\schema date"));
        assert!(schema.contains("d_year"));
        let graph = text(s.feed("\\graph"));
        assert!(graph.contains("root: lineorder"));
        assert!(text(s.feed("\\variant cp")).contains("AIRScan_C_P"));
        assert!(text(s.feed("\\threads 2")).contains("threads = 2"));
        assert!(text(s.feed("\\timing off")).contains("timing off"));
        assert!(text(s.feed("\\plan on")).contains("plan on"));
        assert!(text(s.feed("\\help")).contains("\\load"));
        assert!(matches!(s.feed("\\q"), Outcome::Quit));
    }

    #[test]
    fn sql_errors_are_reported_not_fatal() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let out = text(s.feed("SELECT nope FROM lineorder"));
        assert!(out.contains("error"), "{out}");
        // The session still works.
        let out = text(s.feed("SELECT count(*) FROM lineorder"));
        assert!(out.contains("(1 rows)"), "{out}");
    }

    #[test]
    fn compare_reports_agreement() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        let out = text(s.feed(
            "\\compare SELECT c_region, count(*) AS n FROM lineorder, customer \
             WHERE lo_custkey = c_custkey GROUP BY c_region",
        ));
        assert!(out.contains("agree ✓"), "{out}");
    }

    #[test]
    fn plan_output_shows_variant() {
        let mut s = Session::new();
        text(s.feed("\\load ssb 0.001"));
        text(s.feed("\\plan on"));
        text(s.feed("\\variant cpg"));
        let out = text(s.feed(
            "SELECT count(*) FROM lineorder, date WHERE lo_orderdate = d_datekey \
             AND d_year = 1994",
        ));
        assert!(out.contains("AIRScan_C_P_G"), "{out}");
        assert!(out.contains("predvec_chains=1"), "{out}");
    }

    #[test]
    fn tpch_dataset_loads() {
        let mut s = Session::new();
        let msg = text(s.feed("\\load tpch 0.001"));
        assert!(msg.contains("TPC-H"), "{msg}");
        let out = text(s.feed(
            "SELECT n_name, count(*) AS n FROM lineitem, orders, customer, nation \
             WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey \
             AND c_nationkey = n_nationkey GROUP BY n_name ORDER BY n DESC LIMIT 3",
        ));
        assert!(out.contains("(3 rows)"), "{out}");
    }

    #[test]
    fn unknown_commands_and_empty_lines() {
        let mut s = Session::new();
        assert!(text(s.feed("\\wat")).contains("unknown command"));
        assert!(text(s.feed("   ")).is_empty());
        assert!(text(s.feed("\\load nope")).contains("unknown dataset"));
    }
}
