//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements only what `astore-storage` uses: an immutable, cheaply
//! clonable byte buffer ([`Bytes`]) and a growable builder ([`BytesMut`])
//! that can be frozen into one. Both deref to `[u8]`.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

/// A growable byte buffer that can be frozen into an immutable [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Appends the slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_freeze() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello ");
        m.extend_from_slice(b"world");
        assert_eq!(m.len(), 11);
        assert!(!m.is_empty());
        let frozen = m.freeze();
        assert_eq!(&frozen[0..5], b"hello");
        let clone = frozen.clone();
        assert_eq!(&*clone, b"hello world");
    }

    #[test]
    fn take_leaves_empty() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abc");
        let taken = std::mem::take(&mut m);
        assert_eq!(taken.len(), 3);
        assert!(m.is_empty());
    }
}
