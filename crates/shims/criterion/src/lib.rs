//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench targets compiling and *useful* without the
//! real crate: each benchmark runs `sample_size` timed samples (after a
//! short warm-up) and prints median / min wall time per iteration, plus
//! derived throughput when one was declared. No statistics engine, no
//! HTML reports — a plain-text table on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~50ms has elapsed or 3 iterations, whichever
        // comes first, and size the per-sample batch so one sample takes a
        // measurable amount of time.
        let warm = Instant::now();
        let mut warm_iters = 0u64;
        while warm.elapsed() < Duration::from_millis(50) && warm_iters < 1_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Target ~5ms per sample, 1..=10_000 iterations.
        let batch = (5_000_000 / per_iter.max(1)).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut b = Bencher { samples: &mut samples, sample_size: self.criterion.sample_size };
        f(&mut b);
        report(&self.name, &id.id, &samples, self.throughput);
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut samples = Vec::new();
        let mut b = Bencher { samples: &mut samples, sample_size: self.criterion.sample_size };
        f(&mut b, input);
        report(&self.name, &id.id, &samples, self.throughput);
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
    });
    println!("{group}/{id}: median {:?}, min {:?}{}", median, min, rate.unwrap_or_default());
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored (API compatibility).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut b = Bencher { samples: &mut samples, sample_size: self.sample_size };
        f(&mut b);
        report("bench", id, &samples, None);
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = spin
    }

    #[test]
    fn group_macro_expands_and_runs() {
        benches();
    }
}
