//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the API the `astore-datagen` crate uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods `gen` / `gen_range` (half-open and inclusive
//! integer and float ranges), and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for synthetic data, deterministic for a given seed. Streams do NOT
//! match the real `rand` crate, so regenerated datasets differ in content
//! (but not in distribution) from ones produced with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable with a standard uniform distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws a `u64` below `span` without modulo bias (rejection sampling on
/// the widened multiply, Lemire's method).
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (span.wrapping_neg() % span) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, u32, i64, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's counterpart of `rand`'s `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i32);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(1..=5i64);
            assert!((1..=5).contains(&v));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0..10usize);
            assert!(u < 10);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
