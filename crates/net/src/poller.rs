//! Safe wrapper over the platform readiness facility (epoll / kqueue):
//! register fds with a token + interest, block for events, and wake the
//! blocked thread from outside.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

/// Opaque per-registration cookie echoed back in events.
pub type Token = usize;

/// Which readiness directions a registration listens for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup — the owner should read to EOF / tear down.
    pub closed: bool,
}

const EVENT_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Linux implementation
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: RawFd,
    events: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = sys::epoll_create()?;
        Ok(Poller { epfd, events: vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_CAPACITY] })
    }

    fn bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_ADD, fd, Self::bits(interest), token as u64)
    }

    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_MOD, fd, Self::bits(interest), token as u64)
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (None = forever) and appends readiness
    /// events to `out`. EINTR is treated as an empty wakeup.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        let n = match sys::epoll_poll(self.epfd, &mut self.events, timeout_ms.unwrap_or(-1)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.events[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data as Token,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

/// Wakes a `Poller` blocked in `wait` from another thread. Cloneable and
/// cheap: one eventfd registered under a caller-chosen token.
#[cfg(target_os = "linux")]
pub struct Waker {
    efd: RawFd,
}

#[cfg(target_os = "linux")]
impl Waker {
    /// Creates the waker and registers it with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Arc<Waker>> {
        let efd = sys::eventfd_create()?;
        poller.register(efd, token, Interest::READABLE)?;
        Ok(Arc::new(Waker { efd }))
    }

    /// Forces the poller's current/next `wait` to return.
    pub fn wake(&self) {
        sys::eventfd_signal(self.efd);
    }

    /// Called by the poll loop when the waker token fires, so the next
    /// `wake` is visible again.
    pub fn drain(&self) {
        sys::eventfd_drain(self.efd);
    }
}

#[cfg(target_os = "linux")]
impl Drop for Waker {
    fn drop(&mut self) {
        sys::close(self.efd);
    }
}

// ---------------------------------------------------------------------------
// macOS / BSD implementation
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
pub struct Poller {
    kq: RawFd,
    events: Vec<sys::KEvent>,
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        let kq = sys::kqueue_create()?;
        Ok(Poller {
            kq,
            events: vec![
                sys::KEvent {
                    ident: 0,
                    filter: 0,
                    flags: 0,
                    fflags: 0,
                    data: 0,
                    udata: std::ptr::null_mut(),
                };
                EVENT_CAPACITY
            ],
        })
    }

    /// kqueue has no single add-with-mask op: drive each filter to the
    /// desired state and ignore ENOENT from deleting an absent filter.
    fn apply(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let pairs = [(sys::EVFILT_READ, interest.readable), (sys::EVFILT_WRITE, interest.writable)];
        for (filter, on) in pairs {
            let flags = if on { sys::EV_ADD } else { sys::EV_DELETE };
            match sys::kqueue_control(self.kq, fd, filter, flags, token as u64) {
                Ok(()) => {}
                Err(e) if !on && e.raw_os_error() == Some(2) => {} // ENOENT
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.apply(fd, token, interest)
    }

    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.apply(fd, token, interest)
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.apply(fd, 0, Interest::NONE)
    }

    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        let n = match sys::kqueue_poll(self.kq, &mut self.events, timeout_ms.unwrap_or(-1)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.events[..n] {
            out.push(Event {
                token: ev.udata as Token,
                readable: ev.filter == sys::EVFILT_READ,
                writable: ev.filter == sys::EVFILT_WRITE,
                closed: ev.flags & sys::EV_EOF != 0,
            });
        }
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.kq);
    }
}

#[cfg(not(target_os = "linux"))]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

#[cfg(not(target_os = "linux"))]
impl Waker {
    pub fn new(poller: &Poller, token: Token) -> io::Result<Arc<Waker>> {
        let (read_fd, write_fd) = sys::wake_pipe()?;
        poller.register(read_fd, token, Interest::READABLE)?;
        Ok(Arc::new(Waker { read_fd, write_fd }))
    }

    pub fn wake(&self) {
        sys::pipe_signal(self.write_fd);
    }

    pub fn drain(&self) {
        sys::pipe_drain(self.read_fd);
    }
}

#[cfg(not(target_os = "linux"))]
impl Drop for Waker {
    fn drop(&mut self) {
        sys::close(self.read_fd);
        sys::close(self.write_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn readiness_roundtrip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        use std::os::unix::io::AsRawFd;
        poller.register(server.as_raw_fd(), 7, Interest::READABLE).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Level-triggered with nothing buffered: a short wait times out.
        events.clear();
        poller.wait(&mut events, Some(50)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable), "{events:?}");

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_interrupts_wait_across_threads() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 99).unwrap();
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(5000)).unwrap();
        assert!(events.iter().any(|e| e.token == 99), "{events:?}");
        waker.drain();
        t.join().unwrap();

        // Drained: next short wait must time out, then a second wake works.
        events.clear();
        poller.wait(&mut events, Some(50)).unwrap();
        assert!(events.is_empty(), "{events:?}");
        waker.wake();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(events.iter().any(|e| e.token == 99), "{events:?}");
    }

    #[test]
    fn write_interest_fires_when_connected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (_server, _) = listener.accept().unwrap();

        use std::os::unix::io::AsRawFd;
        poller.register(client.as_raw_fd(), 3, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable), "{events:?}");
        poller.deregister(client.as_raw_fd()).unwrap();
    }
}
