//! The event loop: one thread owns every socket, a slab of per-connection
//! state machines turns readiness into complete frames, and a [`Service`]
//! decides what each frame means.
//!
//! Design points, in the order they matter:
//!
//! - **Pipelining, in order.** A client may send many frames without
//!   waiting. The reactor queues parsed frames per connection and keeps
//!   *at most one* dispatched at a time, so responses come back in request
//!   order without any reorder buffer — and per-session state is never
//!   contended between two in-flight jobs of the same connection.
//! - **Backpressure.** When a connection's write backlog crosses the high
//!   watermark the reactor stops reading from it; reading resumes at the
//!   low watermark. A slow reader therefore bounds its own memory, not the
//!   server's.
//! - **Graceful overload.** Accept errors like EMFILE pause the accept
//!   interest briefly instead of busy-spinning; over the connection limit
//!   the service's reject frame is written best-effort and the socket
//!   dropped. Nothing stalls the accept queue silently.
//! - **Slow-loris defence without idle reaping.** The idle deadline
//!   applies only to connections holding an *incomplete* frame. Thousands
//!   of fully-idle keep-alive connections cost nothing and are never
//!   reaped.

use crate::buffer::{Frame, ReadBuffer, WriteBuffer};
use crate::poller::{Event, Interest, Poller, Token, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What the reactor asks of the protocol layer. Implementations must not
/// block inside `dispatch` — hand the frame to an executor (or complete
/// inline) and return; the reactor thread is the server's I/O heart.
pub trait Service {
    /// Per-connection protocol state (e.g. a prepared-statement registry).
    type Session: Send + 'static;

    /// A connection was accepted and admitted.
    fn open(&self) -> Self::Session;

    /// A connection ended (EOF, error, deadline, shutdown). Called exactly
    /// once per admitted connection; the session Arc is dropped after.
    fn closed(&self, _session: &Arc<Mutex<Self::Session>>) {}

    /// Handle one complete frame. Respond via `done.send(bytes)` — bytes
    /// must include the trailing newline; send empty bytes for "no
    /// response". Dropping `done` unanswered counts as an empty response.
    fn dispatch(&self, session: &Arc<Mutex<Self::Session>>, frame: Vec<u8>, done: Done);

    /// Frame written before dropping a connection over the limit.
    fn reject_frame(&self) -> Vec<u8>;

    /// Frame written before closing a connection whose unterminated input
    /// exceeded the frame limit.
    fn oversize_frame(&self) -> Vec<u8>;

    /// A socket was accepted (admitted or not).
    fn on_accept(&self) {}

    /// Reading from a connection was paused by the write-side watermark.
    fn on_backpressure(&self) {}

    /// Depth of a connection's pipeline (queued + in-flight) observed as a
    /// completed frame arrived.
    fn on_pipeline_depth(&self, _depth: usize) {}
}

/// Tuning knobs for a reactor instance.
#[derive(Clone, Copy)]
pub struct ReactorConfig {
    /// Admitted connections beyond this are sent `reject_frame` + dropped.
    pub max_connections: usize,
    /// Longest accepted frame, in bytes (newline excluded).
    pub max_frame_bytes: usize,
    /// Write backlog (bytes) at which reading from a connection pauses.
    pub high_watermark: usize,
    /// Write backlog at which a paused connection resumes reading.
    pub low_watermark: usize,
    /// Close a connection whose *partial* frame has made no progress to a
    /// newline for this long. `None` disables the deadline. Connections
    /// with no buffered bytes are never touched.
    pub idle_timeout: Option<Duration>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 16 * 1024,
            max_frame_bytes: 1 << 20,
            high_watermark: 256 * 1024,
            low_watermark: 64 * 1024,
            idle_timeout: None,
        }
    }
}

const LISTENER_TOKEN: Token = usize::MAX;
const WAKER_TOKEN: Token = usize::MAX - 1;
const READ_CHUNK: usize = 16 * 1024;
const SWEEP_INTERVAL: Duration = Duration::from_millis(500);
const ACCEPT_PAUSE: Duration = Duration::from_millis(100);

struct Completion {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
}

struct Shared {
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
    stop: AtomicBool,
}

/// One-shot response channel handed to [`Service::dispatch`]. Send from
/// any thread; the reactor wakes and flushes to the right connection (or
/// discards if the connection died in the meantime — the generation tag
/// prevents delivery to a recycled slot).
pub struct Done {
    shared: Arc<Shared>,
    slot: usize,
    generation: u64,
    sent: bool,
}

impl Done {
    /// Completes the frame with `bytes` (trailing newline included; empty
    /// means "no response").
    pub fn send(mut self, bytes: Vec<u8>) {
        self.deliver(bytes);
    }

    fn deliver(&mut self, bytes: Vec<u8>) {
        if self.sent {
            return;
        }
        self.sent = true;
        let mut q = self.shared.completions.lock().unwrap();
        q.push(Completion { slot: self.slot, generation: self.generation, bytes });
        drop(q);
        self.shared.waker.wake();
    }
}

impl Drop for Done {
    fn drop(&mut self) {
        // A job that panicked or forgot to answer must not wedge the
        // connection's pipeline: treat it as an empty response.
        self.deliver(Vec::new());
    }
}

/// Stops a running reactor from another thread.
#[derive(Clone)]
pub struct ReactorStop {
    shared: Arc<Shared>,
}

impl ReactorStop {
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.waker.wake();
    }
}

struct Conn<S> {
    stream: TcpStream,
    session: Arc<Mutex<S>>,
    rbuf: ReadBuffer,
    wbuf: WriteBuffer,
    /// Parsed frames waiting their turn behind the in-flight one.
    queued: VecDeque<Vec<u8>>,
    in_flight: bool,
    interest: Interest,
    /// Reading paused by the write-side high watermark.
    read_blocked: bool,
    /// Flush pending output, then close (oversize / fatal protocol state).
    closing: bool,
    /// When the currently buffered partial frame started waiting.
    partial_since: Option<Instant>,
}

struct Slot<S> {
    generation: u64,
    conn: Option<Conn<S>>,
}

/// The event loop. Create with [`Reactor::new`], grab a [`ReactorStop`]
/// via [`Reactor::stop_handle`], then hand the reactor to its own thread
/// and call [`Reactor::run`].
pub struct Reactor<S: Service> {
    poller: Poller,
    listener: TcpListener,
    service: S,
    config: ReactorConfig,
    shared: Arc<Shared>,
    slots: Vec<Slot<S::Session>>,
    free: Vec<usize>,
    open: usize,
    accept_paused_until: Option<Instant>,
    last_sweep: Instant,
}

impl<S: Service> Reactor<S> {
    pub fn new(listener: TcpListener, service: S, config: ReactorConfig) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let waker = Waker::new(&poller, WAKER_TOKEN)?;
        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            waker,
            stop: AtomicBool::new(false),
        });
        Ok(Reactor {
            poller,
            listener,
            service,
            config,
            shared,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            accept_paused_until: None,
            last_sweep: Instant::now(),
        })
    }

    pub fn stop_handle(&self) -> ReactorStop {
        ReactorStop { shared: Arc::clone(&self.shared) }
    }

    /// Runs the event loop until [`ReactorStop::stop`] is called. Consumes
    /// the reactor; every live connection gets its `closed` hook on exit.
    pub fn run(mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; READ_CHUNK];
        loop {
            events.clear();
            self.poller.wait(&mut events, Some(SWEEP_INTERVAL.as_millis() as i32))?;
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let mut accept_ready = false;
            let batch = std::mem::take(&mut events);
            for &ev in &batch {
                match ev.token {
                    LISTENER_TOKEN => accept_ready = true,
                    WAKER_TOKEN => self.shared.waker.drain(),
                    slot => self.handle_conn_event(slot, ev, &mut scratch),
                }
            }
            events = batch;
            self.drain_completions();
            // Accept last so a slot freed in this batch can't be recycled
            // while stale events for it are still in `events`.
            if accept_ready {
                self.accept_burst();
            }
            self.sweep();
        }
        // Graceful shutdown: every admitted connection is closed exactly once.
        for slot in 0..self.slots.len() {
            if self.slots[slot].conn.is_some() {
                self.close_conn(slot);
            }
        }
        Ok(())
    }

    // -- accept path --------------------------------------------------------

    fn accept_burst(&mut self) {
        if let Some(until) = self.accept_paused_until {
            if Instant::now() < until {
                return;
            }
            self.accept_paused_until = None;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.service.on_accept();
                    if self.open >= self.config.max_connections {
                        // Best-effort typed rejection; never block the loop.
                        let _ = stream.set_nonblocking(true);
                        let _ = (&stream).write(&self.service.reject_frame());
                        continue; // stream drops -> RST/FIN, slot never allocated
                    }
                    if let Err(e) = self.admit(stream) {
                        // Registration failure (fd pressure): back off.
                        let _ = e;
                        self.pause_accept();
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE/ENFILE/ECONNABORTED storms: pause briefly so a
                    // level-triggered listener doesn't busy-spin, then let
                    // the sweep re-arm accepting.
                    self.pause_accept();
                    return;
                }
            }
        }
    }

    fn pause_accept(&mut self) {
        self.accept_paused_until = Some(Instant::now() + ACCEPT_PAUSE);
    }

    fn admit(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { generation: 0, conn: None });
                self.slots.len() - 1
            }
        };
        self.poller.register(stream.as_raw_fd(), slot, Interest::READABLE)?;
        let session = Arc::new(Mutex::new(self.service.open()));
        self.slots[slot].conn = Some(Conn {
            stream,
            session,
            rbuf: ReadBuffer::new(self.config.max_frame_bytes),
            wbuf: WriteBuffer::new(self.config.high_watermark, self.config.low_watermark),
            queued: VecDeque::new(),
            in_flight: false,
            interest: Interest::READABLE,
            read_blocked: false,
            closing: false,
            partial_since: None,
        });
        self.open += 1;
        Ok(())
    }

    // -- connection events --------------------------------------------------

    fn handle_conn_event(&mut self, slot: usize, ev: Event, scratch: &mut [u8]) {
        if slot >= self.slots.len() || self.slots[slot].conn.is_none() {
            return; // stale event for an already-closed connection
        }
        if (ev.readable || ev.closed) && !self.read_ready(slot, scratch) {
            return; // connection closed
        }
        if ev.writable && !self.write_ready(slot) {
            return;
        }
        self.update_interest(slot);
    }

    /// Drains the socket until WouldBlock. Returns false if the connection
    /// was closed.
    fn read_ready(&mut self, slot: usize, scratch: &mut [u8]) -> bool {
        loop {
            let conn = self.slots[slot].conn.as_mut().unwrap();
            if conn.closing || conn.read_blocked {
                return true;
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    self.close_conn(slot);
                    return false;
                }
                Ok(n) => {
                    conn.rbuf.extend(&scratch[..n]);
                    if !self.drain_frames(slot) {
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        }
    }

    /// Parses every complete frame out of the read buffer, enqueueing or
    /// dispatching each. Returns false if the connection was closed.
    fn drain_frames(&mut self, slot: usize) -> bool {
        loop {
            let conn = self.slots[slot].conn.as_mut().unwrap();
            match conn.rbuf.next_frame() {
                Frame::Complete(frame) => {
                    conn.partial_since = None;
                    let depth = conn.queued.len() + conn.in_flight as usize + 1;
                    self.service.on_pipeline_depth(depth);
                    let conn = self.slots[slot].conn.as_mut().unwrap();
                    if conn.in_flight {
                        conn.queued.push_back(frame);
                    } else {
                        conn.in_flight = true;
                        let session = Arc::clone(&conn.session);
                        let done = self.done_for(slot);
                        self.service.dispatch(&session, frame, done);
                    }
                }
                Frame::Partial => {
                    if conn.rbuf.has_partial() && conn.partial_since.is_none() {
                        conn.partial_since = Some(Instant::now());
                    } else if !conn.rbuf.has_partial() {
                        conn.partial_since = None;
                    }
                    // A deep enough response backlog pauses further reads.
                    if conn.wbuf.above_high_watermark() && !conn.read_blocked {
                        conn.read_blocked = true;
                        self.service.on_backpressure();
                    }
                    return true;
                }
                Frame::Oversized => {
                    let oversize = self.service.oversize_frame();
                    let conn = self.slots[slot].conn.as_mut().unwrap();
                    conn.wbuf.push(&oversize);
                    conn.closing = true;
                    conn.queued.clear();
                    return self.flush_or_close(slot);
                }
            }
        }
    }

    /// Writes as much pending output as the socket accepts. Returns false
    /// if the connection was closed.
    fn write_ready(&mut self, slot: usize) -> bool {
        loop {
            let conn = self.slots[slot].conn.as_mut().unwrap();
            if conn.wbuf.is_empty() {
                break;
            }
            match conn.stream.write(conn.wbuf.pending()) {
                Ok(0) => {
                    self.close_conn(slot);
                    return false;
                }
                Ok(n) => conn.wbuf.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        let conn = self.slots[slot].conn.as_mut().unwrap();
        if conn.read_blocked && conn.wbuf.below_low_watermark() && !conn.closing {
            conn.read_blocked = false;
        }
        self.flush_or_close(slot)
    }

    /// If the connection is closing and fully drained, close it now.
    /// Returns false when it closed.
    fn flush_or_close(&mut self, slot: usize) -> bool {
        let conn = self.slots[slot].conn.as_ref().unwrap();
        if conn.closing && conn.wbuf.is_empty() && !conn.in_flight {
            self.close_conn(slot);
            return false;
        }
        true
    }

    // -- completions --------------------------------------------------------

    fn done_for(&self, slot: usize) -> Done {
        Done {
            shared: Arc::clone(&self.shared),
            slot,
            generation: self.slots[slot].generation,
            sent: false,
        }
    }

    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for done in batch {
            let slot = done.slot;
            if slot >= self.slots.len() || self.slots[slot].generation != done.generation {
                continue; // connection died while the job ran
            }
            let Some(conn) = self.slots[slot].conn.as_mut() else { continue };
            conn.wbuf.push(&done.bytes);
            conn.in_flight = false;
            // Keep the pipeline moving: next queued frame goes in-flight.
            if let Some(next) = conn.queued.pop_front() {
                conn.in_flight = true;
                let session = Arc::clone(&conn.session);
                let done = self.done_for(slot);
                self.service.dispatch(&session, next, done);
            }
            // Opportunistic flush — don't wait for the next writable event.
            if self.write_ready(slot) {
                // The backlog grows on this path too: a slow reader must
                // stop being read from even between its own read events.
                if let Some(conn) = self.slots[slot].conn.as_mut() {
                    if conn.wbuf.above_high_watermark() && !conn.read_blocked {
                        conn.read_blocked = true;
                        self.service.on_backpressure();
                    }
                }
                self.update_interest(slot);
            }
        }
    }

    // -- bookkeeping --------------------------------------------------------

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.slots[slot].conn.as_mut() else { return };
        let want = Interest {
            readable: !conn.closing && !conn.read_blocked,
            writable: !conn.wbuf.is_empty(),
        };
        if want != conn.interest && self.poller.modify(conn.stream.as_raw_fd(), slot, want).is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let mut conn = self.slots[slot].conn.take().unwrap();
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.closing {
            // Graceful close (e.g. an oversize error was just flushed):
            // discard any input the peer already sent but we never read, so
            // the kernel sends a clean FIN instead of an RST — an RST could
            // destroy the final frame before the peer reads it.
            let mut junk = [0u8; 4096];
            while matches!(conn.stream.read(&mut junk), Ok(n) if n > 0) {}
        }
        self.service.closed(&conn.session);
        self.slots[slot].generation += 1;
        self.free.push(slot);
        self.open -= 1;
        // stream drops here, closing the fd
    }

    fn sweep(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < SWEEP_INTERVAL {
            return;
        }
        self.last_sweep = now;
        if let Some(until) = self.accept_paused_until {
            if now >= until {
                self.accept_paused_until = None;
                self.accept_burst();
            }
        }
        let Some(deadline) = self.config.idle_timeout else { return };
        for slot in 0..self.slots.len() {
            let stale = match &self.slots[slot].conn {
                Some(c) => c.partial_since.is_some_and(|t| now.duration_since(t) > deadline),
                None => false,
            };
            if stale {
                self.close_conn(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::sync::atomic::AtomicUsize;

    /// Echoes each frame back uppercased, optionally via a worker thread.
    struct EchoService {
        threaded: bool,
        opens: Arc<AtomicUsize>,
        closes: Arc<AtomicUsize>,
        backpressure: Arc<AtomicUsize>,
        max_depth: Arc<AtomicUsize>,
    }

    impl EchoService {
        fn new(threaded: bool) -> EchoService {
            EchoService {
                threaded,
                opens: Arc::new(AtomicUsize::new(0)),
                closes: Arc::new(AtomicUsize::new(0)),
                backpressure: Arc::new(AtomicUsize::new(0)),
                max_depth: Arc::new(AtomicUsize::new(0)),
            }
        }
    }

    impl Service for EchoService {
        type Session = u64;

        fn open(&self) -> u64 {
            self.opens.fetch_add(1, Ordering::SeqCst);
            0
        }

        fn closed(&self, _session: &Arc<Mutex<u64>>) {
            self.closes.fetch_add(1, Ordering::SeqCst);
        }

        fn dispatch(&self, session: &Arc<Mutex<u64>>, frame: Vec<u8>, done: Done) {
            *session.lock().unwrap() += 1;
            // "amp:<tag>" asks for a fat response — lets tests overwhelm
            // kernel socket buffers with tiny requests.
            let mut out = if let Some(tag) = frame.strip_prefix(b"amp:") {
                let mut big = tag.to_vec();
                big.push(b':');
                big.resize(big.len() + 8192, b'Z');
                big
            } else {
                frame.to_ascii_uppercase()
            };
            out.push(b'\n');
            if self.threaded {
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    done.send(out);
                });
            } else {
                done.send(out);
            }
        }

        fn reject_frame(&self) -> Vec<u8> {
            b"REJECT\n".to_vec()
        }

        fn oversize_frame(&self) -> Vec<u8> {
            b"OVERSIZE\n".to_vec()
        }

        fn on_backpressure(&self) {
            self.backpressure.fetch_add(1, Ordering::SeqCst);
        }

        fn on_pipeline_depth(&self, depth: usize) {
            self.max_depth.fetch_max(depth, Ordering::SeqCst);
        }
    }

    fn spawn_reactor(
        service: EchoService,
        config: ReactorConfig,
    ) -> (std::net::SocketAddr, ReactorStop, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::new(listener, service, config).unwrap();
        let stop = reactor.stop_handle();
        let join = std::thread::spawn(move || reactor.run().unwrap());
        (addr, stop, join)
    }

    #[test]
    fn echo_roundtrip_and_pipelining_order() {
        let service = EchoService::new(true);
        let max_depth = Arc::clone(&service.max_depth);
        let (addr, stop, join) = spawn_reactor(service, ReactorConfig::default());

        let mut stream = TcpStream::connect(addr).unwrap();
        // Pipeline: three frames in one write, no interleaved reads.
        stream.write_all(b"alpha\nbeta\ngamma\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        for expect in ["ALPHA", "BETA", "GAMMA"] {
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), expect);
        }
        assert!(max_depth.load(Ordering::SeqCst) >= 2, "pipeline depth never exceeded 1");
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn sessions_open_and_close_exactly_once() {
        let service = EchoService::new(false);
        let opens = Arc::clone(&service.opens);
        let closes = Arc::clone(&service.closes);
        let (addr, stop, join) = spawn_reactor(service, ReactorConfig::default());

        for _ in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"hi\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "HI");
            drop(reader);
            drop(stream);
        }
        // Wait for the reactor to observe all the EOFs.
        let deadline = Instant::now() + Duration::from_secs(5);
        while closes.load(Ordering::SeqCst) < 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(opens.load(Ordering::SeqCst), 20);
        assert_eq!(closes.load(Ordering::SeqCst), 20);
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn oversized_frame_gets_error_then_close() {
        let service = EchoService::new(false);
        let config = ReactorConfig { max_frame_bytes: 64, ..ReactorConfig::default() };
        let (addr, stop, join) = spawn_reactor(service, config);

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[b'x'; 200]).unwrap(); // no newline, over the limit
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OVERSIZE");
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "connection should be closed after the oversize frame");
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn connection_limit_sends_reject_frame() {
        let service = EchoService::new(false);
        let config = ReactorConfig { max_connections: 2, ..ReactorConfig::default() };
        let (addr, stop, join) = spawn_reactor(service, config);

        let keep1 = TcpStream::connect(addr).unwrap();
        let keep2 = TcpStream::connect(addr).unwrap();
        // Make sure both were admitted before the third connects.
        for s in [&keep1, &keep2] {
            let mut s2 = s.try_clone().unwrap();
            s2.write_all(b"ok\n").unwrap();
            let mut reader = BufReader::new(s2);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "OK");
        }
        let third = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(third);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "REJECT");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "rejected conn must be dropped");
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn backpressure_pauses_and_resumes_reading() {
        let service = EchoService::new(false);
        let backpressure = Arc::clone(&service.backpressure);
        // Tiny watermarks so a single unread response trips the pause.
        let config =
            ReactorConfig { high_watermark: 64, low_watermark: 16, ..ReactorConfig::default() };
        let (addr, stop, join) = spawn_reactor(service, config);

        let stream = TcpStream::connect(addr).unwrap();
        // Tiny amplifying requests from a writer thread while the main
        // thread refuses to read: 8 KB responses pile up far past every
        // kernel buffer and the reactor must stop reading us. (A thread,
        // because once the server pauses reads our own writes may block —
        // exactly the flow control under test.)
        const N: usize = 2000;
        let mut writer = stream.try_clone().unwrap();
        let writer_thread = std::thread::spawn(move || {
            for i in 0..N {
                writer.write_all(format!("amp:{i}\n").as_bytes()).unwrap();
            }
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while backpressure.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(backpressure.load(Ordering::SeqCst) > 0, "backpressure never engaged");

        // Now drain: every single response must still arrive, in order.
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for i in 0..N {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let (tag, fat) = line.trim_end().split_once(':').unwrap();
            assert_eq!(tag, i.to_string(), "response order");
            assert_eq!(fat.len(), 8192);
        }
        writer_thread.join().unwrap();
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn slow_loris_partial_frame_reaped_but_idle_conn_survives() {
        let service = EchoService::new(false);
        let config = ReactorConfig {
            idle_timeout: Some(Duration::from_millis(300)),
            ..ReactorConfig::default()
        };
        let (addr, stop, join) = spawn_reactor(service, config);

        // A fully idle connection (no bytes at all) must survive.
        let idle = TcpStream::connect(addr).unwrap();
        // A half-open frame must be reaped after the deadline.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"{\"never\":\"finish").unwrap();

        std::thread::sleep(Duration::from_millis(1500));

        loris.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        match loris.read(&mut buf) {
            Ok(0) => {} // clean close observed
            Ok(n) => panic!("unexpected {n} bytes from reaped connection"),
            Err(e) => panic!("expected EOF from reaped connection, got {e}"),
        }

        // The idle connection still works end to end.
        let mut idle2 = idle.try_clone().unwrap();
        idle2.write_all(b"alive\n").unwrap();
        let mut reader = BufReader::new(idle);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ALIVE");
        stop.stop();
        join.join().unwrap();
    }

    #[test]
    fn frames_split_at_byte_boundaries_over_tcp() {
        let service = EchoService::new(false);
        let (addr, stop, join) = spawn_reactor(service, ReactorConfig::default());

        let input = b"first\nsecond\n";
        for split in 1..input.len() {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&input[..split]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
            stream.write_all(&input[split..]).unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "FIRST", "split {split}");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "SECOND", "split {split}");
        }
        stop.stop();
        join.join().unwrap();
    }
}
