//! astore-net — a std-only event-driven connection front-end.
//!
//! The offline build environment precludes tokio/mio, so this crate is a
//! small, self-contained reactor in the mio mold: a thin FFI layer over
//! epoll (Linux) / kqueue (macOS) in [`sys`], a safe [`poller::Poller`] +
//! [`poller::Waker`] on top, newline-framing byte buffers in [`buffer`],
//! and the [`reactor::Reactor`] event loop that turns 10K+ sockets into a
//! stream of complete frames handed to a [`reactor::Service`].
//!
//! ```text
//!   sockets ──► Poller (epoll/kqueue) ──► Reactor ──► Service::dispatch
//!                        ▲                  │   per-conn state machine:
//!                        │ Waker            │   incremental framing,
//!   executor threads ────┴── Done::send ◄───┘   pipelining, watermarks
//! ```
//!
//! Everything `unsafe` lives in [`sys`]; the rest of the crate forbids it.

#![deny(unsafe_code)] // `sys` opts back in explicitly
pub mod buffer;
pub mod poller;
#[allow(unsafe_code)]
mod sys;

pub mod reactor;

pub use buffer::{Frame, ReadBuffer, WriteBuffer};
pub use poller::{Event, Interest, Poller, Token, Waker};
pub use reactor::{Done, Reactor, ReactorConfig, ReactorStop, Service};
