//! Connection byte buffers: incremental newline framing on the read side,
//! a cursor + watermark pair on the write side.

/// What `ReadBuffer::next_frame` produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete newline-terminated frame (newline stripped).
    Complete(Vec<u8>),
    /// No newline yet — need more bytes from the socket.
    Partial,
    /// The unterminated prefix already exceeds the frame limit. The
    /// connection should answer with an error and close: there is no way
    /// to resynchronise mid-frame.
    Oversized,
}

/// Accumulates socket reads and carves newline-delimited frames out of
/// them incrementally. The scan position is remembered across calls so a
/// frame arriving one byte at a time is still O(len) total, not O(len²).
pub struct ReadBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset have already been scanned for `\n`.
    scanned: usize,
    max_frame: usize,
}

impl ReadBuffer {
    pub fn new(max_frame: usize) -> Self {
        ReadBuffer { buf: Vec::new(), scanned: 0, max_frame }
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True if any unconsumed bytes are buffered (a partial frame).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Carves the next frame off the front of the buffer, if complete.
    pub fn next_frame(&mut self) -> Frame {
        match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = self.scanned + rel;
                let mut frame: Vec<u8> = self.buf.drain(..=end).collect();
                frame.pop(); // the newline
                self.scanned = 0;
                Frame::Complete(frame)
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max_frame {
                    Frame::Oversized
                } else {
                    Frame::Partial
                }
            }
        }
    }
}

/// Pending response bytes with a write cursor, plus high/low watermarks
/// driving read-side backpressure.
pub struct WriteBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset were already written to the socket.
    sent: usize,
    high_watermark: usize,
    low_watermark: usize,
}

impl WriteBuffer {
    pub fn new(high_watermark: usize, low_watermark: usize) -> Self {
        debug_assert!(low_watermark <= high_watermark);
        WriteBuffer { buf: Vec::new(), sent: 0, high_watermark, low_watermark }
    }

    /// Queues response bytes (caller includes the trailing newline).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The bytes still waiting to go out.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.sent..]
    }

    /// Marks `n` bytes as written; compacts once everything drained.
    pub fn advance(&mut self, n: usize) {
        self.sent += n;
        debug_assert!(self.sent <= self.buf.len());
        if self.sent == self.buf.len() {
            self.buf.clear();
            self.sent = 0;
        } else if self.sent > 64 * 1024 {
            // Keep the backlog from holding dead prefix bytes forever.
            self.buf.drain(..self.sent);
            self.sent = 0;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.sent == self.buf.len()
    }

    /// Backlog at or above the high watermark: stop reading this connection.
    pub fn above_high_watermark(&self) -> bool {
        self.buf.len() - self.sent >= self.high_watermark
    }

    /// Backlog back at or below the low watermark: resume reading.
    pub fn below_low_watermark(&self) -> bool {
        self.buf.len() - self.sent <= self.low_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_at_every_byte_boundary() {
        let input = b"{\"a\":1}\n{\"b\":2}\n";
        for split in 0..=input.len() {
            let mut rb = ReadBuffer::new(1024);
            rb.extend(&input[..split]);
            let mut frames = Vec::new();
            loop {
                match rb.next_frame() {
                    Frame::Complete(f) => frames.push(f),
                    Frame::Partial => break,
                    Frame::Oversized => panic!("oversized at split {split}"),
                }
            }
            rb.extend(&input[split..]);
            loop {
                match rb.next_frame() {
                    Frame::Complete(f) => frames.push(f),
                    Frame::Partial => break,
                    Frame::Oversized => panic!("oversized at split {split}"),
                }
            }
            assert_eq!(frames, vec![b"{\"a\":1}".to_vec(), b"{\"b\":2}".to_vec()], "split {split}");
            assert!(!rb.has_partial());
        }
    }

    #[test]
    fn many_pipelined_frames_in_one_extend() {
        let mut rb = ReadBuffer::new(1024);
        let mut input = Vec::new();
        for i in 0..100 {
            input.extend_from_slice(format!("frame{i}\n").as_bytes());
        }
        rb.extend(&input);
        let mut n = 0;
        while let Frame::Complete(f) = rb.next_frame() {
            assert_eq!(f, format!("frame{n}").as_bytes());
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn oversized_unterminated_prefix_detected() {
        let mut rb = ReadBuffer::new(16);
        rb.extend(&[b'x'; 17]);
        assert_eq!(rb.next_frame(), Frame::Oversized);
        // A frame under the limit is still fine.
        let mut rb = ReadBuffer::new(16);
        rb.extend(b"0123456789abcdef\n");
        assert!(matches!(rb.next_frame(), Frame::Complete(_)));
    }

    #[test]
    fn incremental_scan_is_single_pass() {
        // Feed one byte at a time; `scanned` must track the frontier so we
        // never rescan (asserted indirectly by the position bookkeeping).
        let mut rb = ReadBuffer::new(1 << 20);
        for _ in 0..1000 {
            rb.extend(b"y");
            assert_eq!(rb.next_frame(), Frame::Partial);
            assert_eq!(rb.scanned, rb.buf.len());
        }
        rb.extend(b"\n");
        match rb.next_frame() {
            Frame::Complete(f) => assert_eq!(f.len(), 1000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_buffer_watermarks_and_cursor() {
        let mut wb = WriteBuffer::new(10, 4);
        assert!(wb.is_empty() && wb.below_low_watermark());
        wb.push(b"0123456789ab");
        assert!(wb.above_high_watermark());
        wb.advance(5);
        assert_eq!(wb.pending(), b"56789ab");
        assert!(!wb.above_high_watermark() && !wb.below_low_watermark());
        wb.advance(3);
        assert!(wb.below_low_watermark());
        wb.advance(4);
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), b"");
    }
}
