//! Thin raw-syscall FFI for the poller — the only `unsafe` in the crate.
//!
//! The build environment is offline, so instead of the `libc` crate these
//! are hand-written `extern "C"` declarations against the C library the
//! Rust standard library already links (glibc/musl on Linux, libSystem on
//! macOS). Every wrapper converts the C return convention (-1 + `errno`)
//! into `std::io::Result` and hands ownership of file descriptors to the
//! caller as plain `RawFd`s — the safe modules above wrap them in types
//! whose `Drop` closes them exactly once.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::RawFd;

/// Converts a `-1`-on-error C return into `io::Result`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Closes a file descriptor (idempotence is the caller's job).
pub fn close(fd: RawFd) {
    extern "C" {
        fn close(fd: c_int) -> c_int;
    }
    // Ignore the result: double-close is excluded by ownership, and EINTR
    // on close must not retry (the fd is gone either way on Linux).
    unsafe {
        close(fd);
    }
}

// ---------------------------------------------------------------------------
// Linux: epoll + eventfd
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use super::{c_int, cvt, io, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// One readiness record. x86-64 glibc declares the struct packed, so
    /// mirror that exactly — a padded layout would shear every second
    /// event in the `epoll_wait` output array.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// `EPOLLIN | EPOLLOUT | …` readiness bits.
        pub events: u32,
        /// Caller-owned cookie (the poller stores its token here).
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }

    /// A fresh close-on-exec epoll instance.
    pub fn epoll_create() -> io::Result<RawFd> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// Adds/modifies/removes `fd` with the given interest + token.
    pub fn epoll_control(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        events: u32,
        token: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // DEL ignores the event argument but old kernels want it non-null.
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(drop)
    }

    /// Blocks for readiness; fills `events` and returns how many fired.
    /// `timeout_ms` of -1 blocks indefinitely.
    pub fn epoll_poll(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> io::Result<usize> {
        let n = cvt(unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
        })?;
        Ok(n as usize)
    }

    /// A nonblocking close-on-exec eventfd (the reactor wake channel).
    pub fn eventfd_create() -> io::Result<RawFd> {
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    /// Posts one wake to an eventfd. Saturation (EAGAIN on an already-
    /// signalled counter) is success: the reader will wake regardless.
    pub fn eventfd_signal(fd: RawFd) {
        let one: u64 = 1;
        unsafe {
            write(fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Drains an eventfd so it can signal again.
    pub fn eventfd_drain(fd: RawFd) {
        let mut buf = [0u8; 8];
        unsafe {
            read(fd, buf.as_mut_ptr(), 8);
        }
    }
}

// ---------------------------------------------------------------------------
// macOS (and the BSDs): kqueue + self-pipe
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
pub use bsd::*;

#[cfg(not(target_os = "linux"))]
mod bsd {
    use super::{c_int, cvt, io, RawFd};
    use std::os::raw::c_void;

    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x0001;
    pub const EV_DELETE: u16 = 0x0002;
    pub const EV_EOF: u16 = 0x8000;

    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0x0004;

    /// `struct kevent` as declared by xnu / the BSDs.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct KEvent {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }

    /// A fresh kqueue instance.
    pub fn kqueue_create() -> io::Result<RawFd> {
        cvt(unsafe { kqueue() })
    }

    /// Applies one filter change (EV_ADD / EV_DELETE) for `fd`.
    pub fn kqueue_control(
        kq: RawFd,
        fd: RawFd,
        filter: i16,
        flags: u16,
        token: u64,
    ) -> io::Result<()> {
        let change = KEvent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token as *mut c_void,
        };
        cvt(unsafe { kevent(kq, &change, 1, std::ptr::null_mut(), 0, std::ptr::null()) }).map(drop)
    }

    /// Blocks for readiness; fills `events` and returns how many fired.
    pub fn kqueue_poll(kq: RawFd, events: &mut [KEvent], timeout_ms: c_int) -> io::Result<usize> {
        let ts;
        let ts_ptr = if timeout_ms < 0 {
            std::ptr::null()
        } else {
            ts = Timespec {
                tv_sec: (timeout_ms / 1000) as isize,
                tv_nsec: (timeout_ms % 1000) as isize * 1_000_000,
            };
            &ts as *const Timespec
        };
        let n = cvt(unsafe {
            kevent(kq, std::ptr::null(), 0, events.as_mut_ptr(), events.len() as c_int, ts_ptr)
        })?;
        Ok(n as usize)
    }

    /// A nonblocking self-pipe (the reactor wake channel): `(read, write)`.
    pub fn wake_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            cvt(unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) })?;
        }
        Ok((fds[0], fds[1]))
    }

    /// Posts one wake byte; a full pipe is success (the reader will wake).
    pub fn pipe_signal(fd: RawFd) {
        let one = [1u8];
        unsafe {
            write(fd, one.as_ptr(), 1);
        }
    }

    /// Drains the wake pipe so it can signal again.
    pub fn pipe_drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        while unsafe { read(fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}
