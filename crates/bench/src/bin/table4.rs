//! **Table 4**: predicate processing and grouping+aggregation on the
//! *fully denormalized* SSB table (paper §6.2.1).
//!
//! The SSB schema is materialized into one wide table; each query is then
//! split into its two phases, timed separately:
//!
//! - *predicate processing*: the query's selections with a bare `count(*)`
//!   (no grouping);
//! - *grouping & aggregation*: the query's grouping/aggregates with the
//!   selections removed.
//!
//! Engines: A-Store's columnar scan on the wide table vs the row-wise
//! pipelined engine (the MonetDB/Vectorwise/Hyper stand-in).

use astore_baseline::denorm::denormalize;
use astore_baseline::engine::execute_hash_pipeline;
use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.02);
    banner(
        "Table 4",
        "predicate / grouping+aggregation phases on the denormalized table (paper §6.2.1)",
        sf,
        env_threads(),
    );
    let db = ssb::generate(sf, 42);
    println!("materializing the wide table …");
    let wide = denormalize(&db, Some("lineorder")).expect("denormalization succeeds");
    println!(
        "wide table: {} rows, {:.1} MB (normalized: {:.1} MB → {:.1}x)\n",
        wide.table().num_slots(),
        wide.approx_bytes() as f64 / 1e6,
        db.approx_bytes() as f64 / 1e6,
        wide.approx_bytes() as f64 / db.approx_bytes() as f64,
    );

    let mut t = TablePrinter::new(&[
        "query",
        "pred A-Store",
        "pred pipeline",
        "grp+agg A-Store",
        "grp+agg pipeline",
    ]);
    let opts = ExecOptions::default();
    for sq in ssb::queries() {
        let wq = wide.rewrite(&sq.query, "lineorder");

        // Phase split: predicates-only and grouping-only variants.
        let mut pred_only = wq.clone();
        pred_only.group_by.clear();
        pred_only.aggregates = vec![Aggregate::count("n")];
        pred_only.order_by.clear();

        let mut group_only = wq.clone();
        group_only.selections.clear();

        let (d_pa, ra) = time_best_of(3, || execute(&wide.db, &pred_only, &opts).unwrap());
        let (d_pp, rp) = time_best_of(3, || execute_hash_pipeline(&wide.db, &pred_only).unwrap());
        assert!(ra.result.same_contents(&rp.result, 1e-9));

        let (d_ga, ga) = time_best_of(3, || execute(&wide.db, &group_only, &opts).unwrap());
        let (d_gp, gp) = time_best_of(3, || execute_hash_pipeline(&wide.db, &group_only).unwrap());
        assert!(ga.result.same_contents(&gp.result, 1e-6), "{} grouping mismatch", sq.id);

        t.row(vec![
            sq.id.into(),
            format!("{:.2}ms", ms(d_pa)),
            format!("{:.2}ms", ms(d_pp)),
            format!("{:.2}ms", ms(d_ga)),
            format!("{:.2}ms", ms(d_gp)),
        ]);
    }
    t.print();
    println!(
        "\npaper (denormalized, SF=100): Hyper 2–3x faster than Vectorwise on\n\
         predicates, MonetDB far behind on both phases; grouping dominates for\n\
         the Q3/Q4 families. Here the columnar scan (A-Store) should beat the\n\
         row-wise pipeline on predicates, and array aggregation should win\n\
         whenever the group space is dense."
    );
}
