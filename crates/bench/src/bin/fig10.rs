//! **Fig. 10**: breakdown of query processing time over the three
//! execution stages, for the column-wise AIRScan variants (paper §6.4):
//!
//! 1. leaf-table processing (predicate vectors + group vectors);
//! 2. foreign-key scan + Measure Index generation;
//! 3. measure-column scan + aggregation.
//!
//! Paper finding: leaf processing is nearly free (dimensions are small),
//! and array aggregation (stage 3 of C_P_G) runs almost an order of
//! magnitude faster than the hash aggregation of C / C_P.

use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.02);
    banner("Fig 10", "phase breakdown of the column-wise variants (paper §6.4)", sf, env_threads());
    let db = ssb::generate(sf, 42);

    let variants = [ScanVariant::ColumnWise, ScanVariant::ColumnWisePredVec, ScanVariant::Full];

    for v in variants {
        println!("--- {} ---", v.paper_name());
        let opts = ExecOptions::with_variant(v);
        let mut t = TablePrinter::new(&["query", "leaf", "fk scan + MI", "aggregation", "total"]);
        let mut sums = [0.0f64; 4];
        for sq in ssb::queries() {
            let (_, out) = time_best_of(3, || execute(&db, &sq.query, &opts).unwrap());
            let parts = [
                ms(out.timings.leaf),
                ms(out.timings.scan),
                ms(out.timings.agg),
                ms(out.timings.total),
            ];
            for (s, p) in sums.iter_mut().zip(parts) {
                *s += p;
            }
            t.row(vec![
                sq.id.into(),
                format!("{:.2}ms", parts[0]),
                format!("{:.2}ms", parts[1]),
                format!("{:.2}ms", parts[2]),
                format!("{:.2}ms", parts[3]),
            ]);
        }
        t.row(vec![
            "AVG".into(),
            format!("{:.2}ms", sums[0] / 13.0),
            format!("{:.2}ms", sums[1] / 13.0),
            format!("{:.2}ms", sums[2] / 13.0),
            format!("{:.2}ms", sums[3] / 13.0),
        ]);
        t.print();
        println!();
    }

    println!(
        "paper: stage 1 (leaf processing) is negligible; AIRScan_C spends the\n\
         bulk in stage 2 (it re-evaluates dimension predicates per fact row);\n\
         C_P shifts cost to aggregation; C_P_G's array aggregation cuts stage 3\n\
         by ~an order of magnitude versus hash aggregation."
    );
}
