//! **Fig. 8**: FK-PK column joins on SSB and TPC-H — `select count(*) from
//! A, B where A.fk = B.pk` — comparing AIR against NPO, PRO and sort-merge.
//!
//! The paper additionally ran MonetDB/Vectorwise/Hyper on these queries;
//! here the hand-coded kernels stand in for the systems (the paper itself
//! found "Hyper has similar performance as the hand-code join algorithms").
//! Target shape: sort-merge slowest, NPO competitive on small dimensions,
//! AIR fastest everywhere and widening its lead on large dimensions.

use astore_baseline::npo::npo_join_sum;
use astore_baseline::pro::{pro_join_sum, RadixConfig};
use astore_baseline::sortmerge::sortmerge_join_sum;
use astore_bench::{banner, black_box, ms, time_best_of, TablePrinter};
use astore_core::air_join::air_join_sum;
use astore_datagen::{env_scale_factor, env_threads, ssb, tpch};
use astore_storage::catalog::Database;
use astore_storage::types::Key;

fn key_col<'a>(db: &'a Database, table: &str, col: &str) -> &'a [Key] {
    db.table(table).unwrap().column(col).unwrap().as_key().expect("key column").1
}

fn main() {
    let sf = env_scale_factor(0.05);
    banner(
        "Fig 8",
        "foreign key-primary key column joins, SSB & TPC-H (paper §6.1.2)",
        sf,
        env_threads(),
    );

    let db = ssb::generate(sf, 42);
    let db_h = tpch::generate(sf, 43);

    let cases: Vec<(String, &Database, &str, &str, &str)> = vec![
        ("SSB lineorder \u{22C8} date".into(), &db, "lineorder", "lo_orderdate", "date"),
        ("SSB lineorder \u{22C8} supplier".into(), &db, "lineorder", "lo_suppkey", "supplier"),
        ("SSB lineorder \u{22C8} part".into(), &db, "lineorder", "lo_partkey", "part"),
        ("SSB lineorder \u{22C8} customer".into(), &db, "lineorder", "lo_custkey", "customer"),
        ("TPCH lineitem \u{22C8} supplier".into(), &db_h, "lineitem", "l_suppkey", "supplier"),
        ("TPCH lineitem \u{22C8} part".into(), &db_h, "lineitem", "l_partkey", "part"),
        ("TPCH orders \u{22C8} customer".into(), &db_h, "orders", "o_custkey", "customer"),
        ("TPCH lineitem \u{22C8} orders".into(), &db_h, "lineitem", "l_orderkey", "orders"),
    ];

    let mut t =
        TablePrinter::new(&["join (count query)", "rows", "sort-merge", "NPO", "PRO", "AIR"]);
    for (label, dbx, fact, col, dim) in cases {
        let probe = key_col(dbx, fact, col);
        let dim_rows = dbx.table(dim).unwrap().num_slots();
        let payload: Vec<i64> = (0..dim_rows as i64).collect();
        let build_keys: Vec<u32> = (0..dim_rows as u32).collect();

        let (d_sm, r_sm) = time_best_of(3, || {
            sortmerge_join_sum(black_box(&build_keys), black_box(&payload), black_box(probe))
        });
        let (d_npo, r_npo) = time_best_of(3, || {
            npo_join_sum(black_box(&build_keys), black_box(&payload), black_box(probe))
        });
        let (d_pro, r_pro) = time_best_of(3, || {
            pro_join_sum(
                black_box(&build_keys),
                black_box(&payload),
                black_box(probe),
                RadixConfig::default(),
            )
        });
        let (d_air, r_air) =
            time_best_of(3, || air_join_sum(black_box(probe), black_box(&payload)));
        assert_eq!(r_sm, r_air);
        assert_eq!(r_npo, r_air);
        assert_eq!(r_pro, r_air);

        t.row(vec![
            label,
            probe.len().to_string(),
            format!("{:.1}ms", ms(d_sm)),
            format!("{:.1}ms", ms(d_npo)),
            format!("{:.1}ms", ms(d_pro)),
            format!("{:.1}ms", ms(d_air)),
        ]);
    }
    t.print();
    println!(
        "\npaper: AIR matched NPO on small dimensions (date, supplier) and was\n\
         'much more efficient than the others' on large ones (customer, orders)."
    );
}
