//! `obs_overhead` — measures what the observability instrumentation costs.
//!
//! Three interleaved passes over a representative SSB query mix:
//!
//! - **baseline**: tracing toggle off, no span buffer attached — the
//!   production default after the instrumentation landed;
//! - **disabled**: identical configuration, run again after arming and
//!   disarming the toggle — an A/A pass whose delta from baseline bounds
//!   the cost of the dormant instrumentation (plus run-to-run noise);
//! - **enabled**: toggle on and a fresh [`TraceBuf`] attached per query —
//!   the full `EXPLAIN ANALYZE` recording path.
//!
//! Per-query times are best-of-`rounds` to de-noise; the JSON summary on
//! stdout carries the totals and ratios the CI observability job gates on
//! (`disabled_over_baseline` within noise of 1.0, `enabled_over_baseline`
//! a sanity bound).

use std::sync::Arc;
use std::time::{Duration, Instant};

use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, ssb};
use astore_obs::TraceBuf;
use astore_sql::sql_to_query;
use astore_storage::catalog::Database;

/// A representative slice of the SSB suite: one query per flight plus the
/// unfiltered scan (same shapes the loadgen mix rotates).
const QUERIES: &[(&str, &str)] = &[
    (
        "Q1.1",
        "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
         WHERE lo_orderdate = d_datekey AND d_year = 1993 \
           AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25",
    ),
    (
        "Q2.1",
        "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
         FROM lineorder, date, part, supplier \
         WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
           AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA' \
         GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
    ),
    (
        "Q3.1",
        "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
         FROM customer, lineorder, supplier, date \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_orderdate = d_datekey AND c_region = 'ASIA' AND s_region = 'ASIA' \
           AND d_year BETWEEN 1992 AND 1997 \
         GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC",
    ),
    (
        "Q4.1",
        "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
         FROM date, customer, supplier, part, lineorder \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
           AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
           AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') \
         GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
    ),
    (
        "full-scan",
        "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
         WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
    ),
];

/// Runs the whole mix once, returning per-query durations. With `traced`,
/// each query gets a fresh span buffer (and its span count is sanity
/// checked so the recording path cannot silently no-op).
fn run_suite(db: &Database, plans: &[Query], opts: &ExecOptions, traced: bool) -> Vec<Duration> {
    plans
        .iter()
        .map(|q| {
            let (opts, trace) = if traced {
                let t = Arc::new(TraceBuf::new());
                (opts.clone().trace(Arc::clone(&t)), Some(t))
            } else {
                (opts.clone(), None)
            };
            let t0 = Instant::now();
            let out = execute(db, q, &opts).expect("ssb query executes");
            let elapsed = t0.elapsed();
            assert!(!out.result.rows.is_empty(), "empty result");
            if let Some(t) = trace {
                assert!(t.len() >= 5, "traced run recorded only {} spans", t.len());
            }
            elapsed
        })
        .collect()
}

fn main() {
    let sf = env_scale_factor(0.01);
    let rounds: usize = std::env::var("OBS_ROUNDS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    eprintln!("obs_overhead: SSB sf={sf}, {rounds} rounds, {} queries", QUERIES.len());
    let db = ssb::generate(sf, 42);
    let plans: Vec<Query> =
        QUERIES.iter().map(|(_, sql)| sql_to_query(sql, &db).expect("ssb query plans")).collect();
    let opts = ExecOptions::default();

    // Warm up caches and the allocator before timing anything.
    run_suite(&db, &plans, &opts, false);

    let mut best = [
        vec![Duration::MAX; plans.len()],
        vec![Duration::MAX; plans.len()],
        vec![Duration::MAX; plans.len()],
    ];
    for _ in 0..rounds {
        // Interleave the modes so drift (thermal, cache) hits all three.
        astore_obs::set_enabled(false);
        let baseline = run_suite(&db, &plans, &opts, false);
        astore_obs::set_enabled(true);
        astore_obs::set_enabled(false);
        let disabled = run_suite(&db, &plans, &opts, false);
        astore_obs::set_enabled(true);
        let enabled = run_suite(&db, &plans, &opts, true);
        astore_obs::set_enabled(false);
        for (slot, pass) in best.iter_mut().zip([baseline, disabled, enabled]) {
            for (b, d) in slot.iter_mut().zip(pass) {
                *b = (*b).min(d);
            }
        }
    }

    let total_ms = |pass: &[Duration]| pass.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>();
    let (t_base, t_off, t_on) = (total_ms(&best[0]), total_ms(&best[1]), total_ms(&best[2]));

    let mut queries = String::new();
    for (i, (name, _)) in QUERIES.iter().enumerate() {
        if i > 0 {
            queries.push(',');
        }
        queries.push_str(&format!(
            "{{\"query\":\"{name}\",\"baseline_ms\":{:.3},\"disabled_ms\":{:.3},\"enabled_ms\":{:.3}}}",
            best[0][i].as_secs_f64() * 1e3,
            best[1][i].as_secs_f64() * 1e3,
            best[2][i].as_secs_f64() * 1e3,
        ));
    }
    println!(
        "{{\"bench\":\"obs_overhead\",\"sf\":{sf},\"rounds\":{rounds},\
         \"total_baseline_ms\":{t_base:.3},\"total_disabled_ms\":{t_off:.3},\
         \"total_enabled_ms\":{t_on:.3},\
         \"disabled_over_baseline\":{:.4},\"enabled_over_baseline\":{:.4},\
         \"queries\":[{queries}]}}",
        t_off / t_base.max(1e-9),
        t_on / t_base.max(1e-9),
    );
}
