//! **Table 1**: update mechanism comparison (paper §4.4).
//!
//! The paper's Table 1 is qualitative — append insertion, deletion-vector
//! deletes with slot reuse, in-place updates, reference-rewriting
//! consolidation. This harness demonstrates each mechanism and measures
//! its cost on a live SSB database, including the §4.4 claim that
//! consolidation is the only expensive operation.

use std::time::Instant;

use astore_bench::{banner, ms, TablePrinter};
use astore_datagen::{env_scale_factor, env_threads, ssb};
use astore_storage::prelude::*;

fn main() {
    let sf = env_scale_factor(0.02);
    banner("Table 1", "update mechanism comparison (paper §4.4)", sf, env_threads());
    let db = ssb::generate(sf, 42);
    let shared = SharedDatabase::new(db);

    let n_ops = 10_000usize;

    // --- Insertion: append path ---
    let snap = shared.snapshot();
    let supplier = snap.table("supplier").unwrap();
    let template: Vec<Value> = supplier.row(0);
    drop(snap);
    let t = Instant::now();
    for _ in 0..n_ops {
        shared.insert("supplier", &template);
    }
    let d_insert = t.elapsed();

    // --- Deletion: lazy, one bit per op ---
    let t = Instant::now();
    for i in 0..n_ops as u32 {
        shared.delete("supplier", i);
    }
    let d_delete = t.elapsed();

    // --- Insertion again: slot reuse, no array growth ---
    let before_slots = shared.snapshot().table("supplier").unwrap().num_slots();
    let t = Instant::now();
    for _ in 0..n_ops {
        shared.insert("supplier", &template);
    }
    let d_reuse = t.elapsed();
    let after_slots = shared.snapshot().table("supplier").unwrap().num_slots();
    assert_eq!(before_slots, after_slots, "slot reuse must not grow the arrays");

    // --- In-place update (fixed width and varchar) ---
    let t = Instant::now();
    for i in 0..n_ops as u32 {
        shared.update("supplier", i % 1_000, "s_name", &Value::Str(format!("Supplier#{i}")));
    }
    let d_update = t.elapsed();

    // --- Snapshot isolation cost ---
    let t = Instant::now();
    for _ in 0..n_ops {
        let _snap = shared.snapshot();
    }
    let d_snapshot = t.elapsed();

    // --- Consolidation: delete 10% of customers, compact, rewrite AIR ---
    let n_cust = shared.snapshot().table("customer").unwrap().num_slots();
    for i in 0..(n_cust / 10) as u32 {
        shared.delete("customer", i * 10);
    }
    // Fact rows referencing the deleted customers are dangling until the
    // fact table is cleaned; consolidation rewrites them to NULL.
    let dangling = shared.snapshot().validate_references().len();
    let t = Instant::now();
    shared.consolidate("customer");
    let d_consolidate = t.elapsed();
    assert!(shared.snapshot().validate_references().is_empty());

    let mut t =
        TablePrinter::new(&["operation", "mechanism (paper Table 1)", "ops", "total", "per-op"]);
    let per =
        |d: std::time::Duration, n: usize| format!("{:.0}ns", d.as_secs_f64() * 1e9 / n as f64);
    t.row(vec![
        "insert (append)".into(),
        "append to array family".into(),
        n_ops.to_string(),
        format!("{:.2}ms", ms(d_insert)),
        per(d_insert, n_ops),
    ]);
    t.row(vec![
        "delete".into(),
        "deletion vector (lazy)".into(),
        n_ops.to_string(),
        format!("{:.2}ms", ms(d_delete)),
        per(d_delete, n_ops),
    ]);
    t.row(vec![
        "insert (reuse)".into(),
        "dead-slot reuse".into(),
        n_ops.to_string(),
        format!("{:.2}ms", ms(d_reuse)),
        per(d_reuse, n_ops),
    ]);
    t.row(vec![
        "update".into(),
        "in-place (varchar via heap)".into(),
        n_ops.to_string(),
        format!("{:.2}ms", ms(d_update)),
        per(d_update, n_ops),
    ]);
    t.row(vec![
        "snapshot".into(),
        "copy-on-write (Arc clone)".into(),
        n_ops.to_string(),
        format!("{:.2}ms", ms(d_snapshot)),
        per(d_snapshot, n_ops),
    ]);
    t.row(vec![
        "consolidate".into(),
        "compact + rewrite inbound AIR".into(),
        "1".into(),
        format!("{:.2}ms", ms(d_consolidate)),
        format!("({dangling} refs fixed)"),
    ]);
    t.print();

    println!(
        "\npaper Table 1: A-Store = append insertion + deletion vector with slot\n\
         reuse + in-place updates; MonetDB/Vectorwise/Hyper use out-of-place or\n\
         copy-on-write updates and no slot reuse. Consolidation is the one\n\
         expensive operation (it rewrites every inbound reference) and is\n\
         reserved for idle periods — note its per-call cost above against the\n\
         nanosecond-scale per-op costs of everything else."
    );
}
