//! **Table 2**: AIR vs NPO vs PRO on 19 FK-PK joins (SSB, TPC-H, TPC-DS,
//! and the Workload A/B microbenchmarks of \[7\]).
//!
//! The paper reports cycles/tuple at SF = 100; this harness reports
//! ns/tuple at `ASTORE_SF` (default 0.05). The target shape: AIR wins every
//! row; NPO beats PRO while the build side is cache-resident and degrades
//! as it grows; PRO stays flat.

use astore_baseline::npo::npo_join_sum;
use astore_baseline::pro::{pro_join_sum, RadixConfig};
use astore_bench::{banner, black_box, ns_per_tuple, time_best_of, TablePrinter};
use astore_core::air_join::air_join_sum;
use astore_datagen::workload::JoinWorkload;
use astore_datagen::{env_scale_factor, env_threads, ssb, tpcds, tpch};
use astore_storage::catalog::Database;
use astore_storage::types::Key;

/// One join case: the fact FK column and the dimension payload to gather.
struct JoinCase<'a> {
    label: String,
    probe: &'a [Key],
    dim_rows: usize,
}

fn key_col<'a>(db: &'a Database, table: &str, col: &str) -> &'a [Key] {
    db.table(table)
        .unwrap_or_else(|| panic!("no table {table}"))
        .column(col)
        .unwrap_or_else(|| panic!("no column {table}.{col}"))
        .as_key()
        .expect("key column")
        .1
}

fn run_case(t: &mut TablePrinter, label: &str, probe: &[Key], dim_rows: usize) {
    // Dimension payload: position-valued, the microbenchmark convention.
    let payload: Vec<i64> = (0..dim_rows as i64).collect();
    // NPO/PRO see explicit (pk, payload) pairs; with array indexes as
    // primary keys, the build keys are 0..n.
    let build_keys: Vec<u32> = (0..dim_rows as u32).collect();

    let n = probe.len();
    let (d_npo, r_npo) = time_best_of(3, || {
        npo_join_sum(black_box(&build_keys), black_box(&payload), black_box(probe))
    });
    let (d_pro, r_pro) = time_best_of(3, || {
        pro_join_sum(
            black_box(&build_keys),
            black_box(&payload),
            black_box(probe),
            RadixConfig::default(),
        )
    });
    let (d_air, r_air) = time_best_of(3, || air_join_sum(black_box(probe), black_box(&payload)));
    assert_eq!(r_npo, r_air, "NPO and AIR disagree on {label}");
    assert_eq!(r_pro, r_air, "PRO and AIR disagree on {label}");

    t.row(vec![
        label.into(),
        format!("{}:{}", n, dim_rows),
        format!("{:.2}", ns_per_tuple(d_npo, n)),
        format!("{:.2}", ns_per_tuple(d_pro, n)),
        format!("{:.2}", ns_per_tuple(d_air, n)),
    ]);
}

fn main() {
    let sf = env_scale_factor(0.05);
    banner("Table 2", "AIR vs NPO vs PRO hash joins (paper §6.1.1)", sf, env_threads());

    let mut t = TablePrinter::new(&["join", "probe:build", "NPO", "PRO", "AIR"]);

    // --- SSB ---
    let db = ssb::generate(sf, 42);
    let cases = [
        ("lineorder \u{22C8} date", "lineorder", "lo_orderdate", "date"),
        ("lineorder \u{22C8} part", "lineorder", "lo_partkey", "part"),
        ("lineorder \u{22C8} supplier", "lineorder", "lo_suppkey", "supplier"),
        ("lineorder \u{22C8} customer", "lineorder", "lo_custkey", "customer"),
    ];
    println!("SSB (SF={sf})");
    for (label, fact, col, dim) in cases {
        let case = JoinCase {
            label: label.into(),
            probe: key_col(&db, fact, col),
            dim_rows: db.table(dim).unwrap().num_slots(),
        };
        run_case(&mut t, &case.label, case.probe, case.dim_rows);
    }

    // --- TPC-H ---
    let db_h = tpch::generate(sf, 43);
    let cases_h = [
        ("lineitem \u{22C8} part", "lineitem", "l_partkey", "part"),
        ("lineitem \u{22C8} supplier", "lineitem", "l_suppkey", "supplier"),
        ("orders \u{22C8} customer", "orders", "o_custkey", "customer"),
        ("lineitem \u{22C8} orders", "lineitem", "l_orderkey", "orders"),
    ];
    println!("TPC-H (SF={sf})");
    for (label, fact, col, dim) in cases_h {
        let case = JoinCase {
            label: label.into(),
            probe: key_col(&db_h, fact, col),
            dim_rows: db_h.table(dim).unwrap().num_slots(),
        };
        run_case(&mut t, &case.label, case.probe, case.dim_rows);
    }

    // --- TPC-DS ---
    let db_ds = tpcds::generate(sf, 44);
    let ds_dims = [
        "store",
        "date_dim",
        "time_dim",
        "household_demographics",
        "customer_demographics",
        "customer",
        "item",
        "promotion",
        "store_returns",
    ];
    println!("TPC-DS (SF={sf})");
    for dim in ds_dims {
        let label = format!("store_sales \u{22C8} {dim}");
        let probe = key_col(&db_ds, "store_sales", &format!("ss_{dim}_sk"));
        let dim_rows = db_ds.table(dim).unwrap().num_slots();
        run_case(&mut t, &label, probe, dim_rows);
    }

    // --- Workloads of [7] ---
    println!("Workloads of [7] (scaled by SF)");
    for (label, w) in [
        ("Workload A (16:1)", JoinWorkload::workload_a(sf / 10.0, 45)),
        ("Workload B (1:1)", JoinWorkload::workload_b(sf / 100.0, 46)),
    ] {
        // For the synthetic workloads the build keys are a permutation, so
        // AIR uses the position-translated probe column (how an A-Store
        // schema would store these FKs in the first place).
        let air_probe = w.air_probe_keys();
        let n = w.probe_keys.len();
        let (d_npo, r_npo) = time_best_of(3, || {
            npo_join_sum(
                black_box(&w.build_keys),
                black_box(&w.build_payloads),
                black_box(&w.probe_keys),
            )
        });
        let (d_pro, r_pro) = time_best_of(3, || {
            pro_join_sum(
                black_box(&w.build_keys),
                black_box(&w.build_payloads),
                black_box(&w.probe_keys),
                RadixConfig::default(),
            )
        });
        let (d_air, r_air) =
            time_best_of(3, || air_join_sum(black_box(&air_probe), black_box(&w.build_payloads)));
        assert_eq!(r_npo, w.expected());
        assert_eq!(r_pro, w.expected());
        assert_eq!(r_air, w.expected());
        t.row(vec![
            label.into(),
            format!("{}:{}", n, w.build_keys.len()),
            format!("{:.2}", ns_per_tuple(d_npo, n)),
            format!("{:.2}", ns_per_tuple(d_pro, n)),
            format!("{:.2}", ns_per_tuple(d_air, n)),
        ]);
    }

    println!();
    t.print();
    println!(
        "\npaper (cycles/tuple, SF=100): NPO 0.8–38.4 growing with dimension size;\n\
         PRO ≈ 5–12 flat; AIR 0.6–4.0, winning every row."
    );
}
