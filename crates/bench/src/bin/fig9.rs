//! **Fig. 9 / Table 6**: the optimization ablation — all 13 SSB queries on
//! the five AIRScan variants (paper §6.3).
//!
//! | variant | scan | predicate vectors | array aggregation |
//! |---|---|---|---|
//! | AIRScan_R | row-wise | – | – |
//! | AIRScan_R_P | row-wise | ✓ | – |
//! | AIRScan_C | column-wise | – | – |
//! | AIRScan_C_P | column-wise | ✓ | – |
//! | AIRScan_C_P_G | column-wise | ✓ | ✓ |
//!
//! Paper result (SF=100, 32 threads): averages 752.68 → 675.49 → … →
//! 513.40 → 322.61 ms; every optimization layer helps.

use astore_baseline::engine::execute_hash_pipeline;
use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.02);
    let threads = env_threads();
    banner("Fig 9", "AIRScan variant ablation on SSB (paper §6.3)", sf, threads);
    let db = ssb::generate(sf, 42);

    let mut headers: Vec<&str> = vec!["query"];
    headers.extend(ScanVariant::ALL.iter().map(|v| v.paper_name()));
    headers.push("hash pipeline");
    let mut t = TablePrinter::new(&headers);

    let mut sums = vec![0.0f64; ScanVariant::ALL.len() + 1];
    for sq in ssb::queries() {
        let mut cells = vec![sq.id.to_string()];
        let mut reference: Option<QueryResult> = None;
        for (vi, v) in ScanVariant::ALL.iter().enumerate() {
            let opts = ExecOptions::with_variant(*v).threads(threads);
            let (d, out) = time_best_of(3, || execute(&db, &sq.query, &opts).unwrap());
            match &reference {
                None => reference = Some(out.result.clone()),
                Some(r) => assert!(
                    out.result.same_contents(r, 1e-6),
                    "{}: {} diverged",
                    sq.id,
                    v.paper_name()
                ),
            }
            sums[vi] += ms(d);
            cells.push(format!("{:.2}ms", ms(d)));
        }
        let (d, hout) = time_best_of(3, || execute_hash_pipeline(&db, &sq.query).unwrap());
        assert!(hout.result.same_contents(reference.as_ref().unwrap(), 1e-6));
        sums[ScanVariant::ALL.len()] += ms(d);
        cells.push(format!("{:.2}ms", ms(d)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string()];
    avg.extend(sums.iter().map(|s| format!("{:.2}ms", s / 13.0)));
    t.row(avg);
    t.print();

    println!(
        "\npaper averages (SF=100): R 752.68ms, R_P 675.49ms, C_P 513.40ms,\n\
         C_P_G 322.61ms — each optimization (predicate vectors, vectorized\n\
         column scan, array aggregation) reduces the average further, with the\n\
         largest step from array aggregation."
    );
}
