//! **SF 1 proof point** for the compressed segment encodings: streams the
//! 6M-row SSB database into sealed (encoded) form without materializing the
//! uncompressed table, then answers all 13 flight queries over the encoded
//! segments. Records boot time, resident bytes (encoded vs the flat
//! columnar footprint the same segments would occupy raw), and per-query
//! times in `BENCH_sf1.json`.
//!
//! `ASTORE_SF` overrides the scale factor (CI smoke runs at 0.2); the
//! first CLI argument overrides the output path.

use std::fmt::Write as _;
use std::time::Instant;

use astore_bench::{ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, ssb};

fn main() {
    let sf = env_scale_factor(1.0);
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sf1.json".to_owned());

    println!("=== sf1 — compressed segments at scale (paper §4.2/§6) ===");
    println!("scale factor (ASTORE_SF) = {sf}");

    let t0 = Instant::now();
    let db = ssb::generate_streaming(sf, 42);
    let boot = t0.elapsed();

    let fact_rows = db.table("lineorder").expect("lineorder").num_slots();
    let (mut encoded_bytes, mut raw_bytes) = (0u64, 0u64);
    for name in db.table_names() {
        let (e, r) = db.table(name).expect("table").encoded_footprint();
        encoded_bytes += e;
        raw_bytes += r;
    }
    let ratio = encoded_bytes as f64 / raw_bytes.max(1) as f64;
    println!(
        "boot {:.1}ms, {fact_rows} fact rows, encoded {encoded_bytes} B vs raw {raw_bytes} B \
         ({:.1}% of flat)\n",
        ms(boot),
        ratio * 100.0
    );

    let queries = ssb::queries();
    let opts = ExecOptions::default();
    let mut table = TablePrinter::new(&["query", "ms", "rows"]);
    let mut per_query_ms = vec![0.0f64; queries.len()];
    for (qi, sq) in queries.iter().enumerate() {
        let (d, out) = time_best_of(3, || execute(&db, &sq.query, &opts).unwrap());
        per_query_ms[qi] = ms(d);
        table.row(vec![
            sq.id.to_string(),
            format!("{:.2}", ms(d)),
            out.result.rows.len().to_string(),
        ]);
    }
    let total: f64 = per_query_ms.iter().sum();
    table.row(vec!["TOTAL".into(), format!("{total:.2}"), String::new()]);
    table.print();

    // Hand-rolled JSON (the bench crate is std-only by design).
    let mut per = String::new();
    for (qi, sq) in queries.iter().enumerate() {
        let _ = write!(per, "\"{}\": {:.3}", sq.id, per_query_ms[qi]);
        if qi + 1 < queries.len() {
            per.push_str(", ");
        }
    }
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"sf1\",");
    let _ = writeln!(j, "  \"paper_ref\": \"compressed AIR scan at SF 1 (§4.2/§6)\",");
    let _ = writeln!(j, "  \"dataset\": \"ssb\",");
    let _ = writeln!(j, "  \"sf\": {sf},");
    let _ = writeln!(j, "  \"fact_rows\": {fact_rows},");
    let _ = writeln!(j, "  \"boot_ms\": {:.3},", ms(boot));
    let _ = writeln!(j, "  \"encoded_bytes\": {encoded_bytes},");
    let _ = writeln!(j, "  \"raw_bytes\": {raw_bytes},");
    let _ = writeln!(j, "  \"encoded_over_raw\": {ratio:.4},");
    let _ = writeln!(j, "  \"total_ms\": {total:.3},");
    let _ = writeln!(j, "  \"per_query_ms\": {{{per}}}");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");

    assert!(
        encoded_bytes * 2 <= raw_bytes,
        "encoded footprint regressed past 50% of flat: {encoded_bytes} vs {raw_bytes}"
    );
}
