//! **Zone-map data skipping** over the segmented fact table: the 13 SSB
//! queries with segment pruning on vs. the pre-segmentation flat scan
//! (`ExecOptions::pruning(false)` — the seed behaviour), verifying results
//! bit-identically and recording per-query pruned-segment counts and the
//! wall-clock delta in `BENCH_scan.json`.
//!
//! `lineorder` is generated in date-arrival order, so the tight date
//! predicates of flight 1 skip most segments; flights 2–4 filter only
//! through region/brand chains whose rows are scattered, so they scan
//! everything — the bench records both, because an honest pruning number
//! includes the queries it cannot help. `ASTORE_SF` overrides the scale
//! factor; the first CLI argument overrides the output path.

use std::fmt::Write as _;

use astore_bench::{ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, ssb};

fn main() {
    let sf = env_scale_factor(0.1);
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_scan.json".to_owned());

    println!("=== scan pruning — zone-map data skipping over 64K-row segments ===");
    println!("scale factor (ASTORE_SF) = {sf}");
    let db = ssb::generate(sf, 42);
    let fact = db.table("lineorder").unwrap();
    let (n_rows, n_segs, seg_rows) = (fact.num_slots(), fact.segment_count(), fact.segment_rows());
    println!("lineorder: {n_rows} rows in {n_segs} segments x {seg_rows}\n");

    let queries = ssb::queries();
    let mut table =
        TablePrinter::new(&["query", "flat", "pruned-scan", "speedup", "segments", "pruned"]);

    struct Run {
        id: &'static str,
        flat_ms: f64,
        pruned_ms: f64,
        scanned: usize,
        pruned: usize,
    }
    let mut runs: Vec<Run> = Vec::with_capacity(queries.len());

    for sq in &queries {
        let flat_opts = ExecOptions::default().pruning(false);
        let (d_flat, flat) = time_best_of(3, || execute(&db, &sq.query, &flat_opts).unwrap());
        let (d_pruned, pruned) =
            time_best_of(3, || execute(&db, &sq.query, &ExecOptions::default()).unwrap());
        assert!(
            pruned.result.same_contents(&flat.result, 0.0),
            "{}: pruned scan diverged from the flat scan",
            sq.id
        );
        assert_eq!(
            pruned.plan.segments_scanned + pruned.plan.segments_pruned,
            n_segs,
            "{}: segment accounting does not cover the table",
            sq.id
        );
        table.row(vec![
            sq.id.to_string(),
            format!("{:.2}ms", ms(d_flat)),
            format!("{:.2}ms", ms(d_pruned)),
            format!("{:.2}x", ms(d_flat) / ms(d_pruned).max(1e-9)),
            format!("{}/{n_segs}", pruned.plan.segments_scanned),
            format!("{}", pruned.plan.segments_pruned),
        ]);
        runs.push(Run {
            id: sq.id,
            flat_ms: ms(d_flat),
            pruned_ms: ms(d_pruned),
            scanned: pruned.plan.segments_scanned,
            pruned: pruned.plan.segments_pruned,
        });
    }
    table.print();

    let flat_total: f64 = runs.iter().map(|r| r.flat_ms).sum();
    let pruned_total: f64 = runs.iter().map(|r| r.pruned_ms).sum();
    let q1_pruned: usize = runs.iter().filter(|r| r.id.starts_with("Q1")).map(|r| r.pruned).sum();
    let selective: Vec<&Run> = runs.iter().filter(|r| r.pruned > 0).collect();
    let selective_speedup = if selective.is_empty() {
        1.0
    } else {
        selective.iter().map(|r| r.flat_ms).sum::<f64>()
            / selective.iter().map(|r| r.pruned_ms).sum::<f64>().max(1e-9)
    };
    println!(
        "\ntotals: flat {flat_total:.2}ms, pruned {pruned_total:.2}ms \
         ({:.2}x overall, {selective_speedup:.2}x on the {} queries with pruning)",
        flat_total / pruned_total.max(1e-9),
        selective.len()
    );

    // Hand-rolled JSON (the bench crate is std-only by design).
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"scan_pruning\",");
    let _ = writeln!(j, "  \"paper_ref\": \"zone-map data skipping under the 3-phase AIRScan\",");
    let _ = writeln!(j, "  \"dataset\": \"ssb\",");
    let _ = writeln!(j, "  \"sf\": {sf},");
    let _ = writeln!(j, "  \"seed\": 42,");
    let _ = writeln!(j, "  \"fact_rows\": {n_rows},");
    let _ = writeln!(j, "  \"segments\": {n_segs},");
    let _ = writeln!(j, "  \"segment_rows\": {seg_rows},");
    let _ = writeln!(j, "  \"flat_total_ms\": {flat_total:.3},");
    let _ = writeln!(j, "  \"pruned_total_ms\": {pruned_total:.3},");
    let _ = writeln!(j, "  \"speedup_vs_flat\": {:.3},", flat_total / pruned_total.max(1e-9));
    let _ = writeln!(j, "  \"selective_speedup\": {selective_speedup:.3},");
    let _ = writeln!(j, "  \"q1_segments_pruned\": {q1_pruned},");
    let _ = writeln!(j, "  \"per_query\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"query\": \"{}\", \"flat_ms\": {:.3}, \"pruned_ms\": {:.3}, \
             \"speedup\": {:.3}, \"segments_scanned\": {}, \"segments_pruned\": {}}}{}",
            r.id,
            r.flat_ms,
            r.pruned_ms,
            r.flat_ms / r.pruned_ms.max(1e-9),
            r.scanned,
            r.pruned,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
