//! **Fig. 9-style multicore scalability** (paper §5 / §6.4): the 13 SSB
//! flight queries through the morsel-driven parallel executor at 1, 2, 4
//! and 8 worker threads, verifying that every thread count returns the
//! serial answer, and recording totals + speedups in `BENCH_parallel.json`.
//!
//! The dataset is the *sealed* SF 0.1 SSB database (600K fact rows,
//! zone-map pruning and encoded segments active) — large enough that the
//! planner's one-full-segment-per-thread floor grants real fan-out, and
//! representative of the serving configuration rather than a flat
//! unsealed table. The executor that *actually* ran is taken from
//! `PlanInfo::executor` — the planner may clamp the request (e.g. 8
//! threads on a scan with only 7 segments' worth of rows, or all the way
//! to serial on a tiny `ASTORE_SF`), and the JSON records the clamped
//! truth, not the request. `ASTORE_SF` overrides the scale factor; the
//! first CLI argument overrides the output path.

use std::fmt::Write as _;

use astore_bench::{ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, ssb};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let sf = env_scale_factor(0.1);
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("=== parallel scaling — morsel-driven execution (paper §5) ===");
    println!(
        "scale factor (ASTORE_SF) = {sf}, host cores = {host_cores}, \
         thread counts = {THREAD_COUNTS:?}"
    );
    println!(
        "note: speedup is bounded by physical cores; on a {host_cores}-core host the\n\
         curve above {host_cores} threads measures dispatcher overhead, not scaling.\n"
    );

    let db = ssb::generate_streaming(sf, 42);
    let queries = ssb::queries();

    let mut headers: Vec<String> = vec!["query".into()];
    headers.extend(THREAD_COUNTS.iter().map(|t| format!("{t}t")));
    let mut table = TablePrinter::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    // per_query_ms[ti][qi], executor summaries per thread count.
    let mut per_query_ms = vec![vec![0.0f64; queries.len()]; THREAD_COUNTS.len()];
    let mut executor_threads = vec![1usize; THREAD_COUNTS.len()];
    let mut executor_morsels = vec![0usize; THREAD_COUNTS.len()];

    for (qi, sq) in queries.iter().enumerate() {
        let mut cells = vec![sq.id.to_string()];
        let mut reference: Option<QueryResult> = None;
        for (ti, &threads) in THREAD_COUNTS.iter().enumerate() {
            let opts = ExecOptions::default().threads(threads);
            let (d, out) = time_best_of(3, || execute(&db, &sq.query, &opts).unwrap());
            match &reference {
                None => reference = Some(out.result.clone()),
                Some(r) => assert!(
                    out.result.same_contents(r, 1e-9),
                    "{} diverged at {threads} threads",
                    sq.id
                ),
            }
            // A serial clamp is the planner doing its job (one full segment
            // per thread minimum) — record it, never panic on it.
            match out.plan.executor {
                ExecutorInfo::Serial { .. } => {}
                ExecutorInfo::Parallel { threads: t, morsels, .. } => {
                    executor_threads[ti] = executor_threads[ti].max(t);
                    executor_morsels[ti] = executor_morsels[ti].max(morsels);
                }
            }
            per_query_ms[ti][qi] = ms(d);
            cells.push(format!("{:.2}ms", ms(d)));
        }
        table.row(cells);
    }

    let totals: Vec<f64> = per_query_ms.iter().map(|col| col.iter().sum()).collect();
    let mut avg_row = vec!["TOTAL".to_string()];
    avg_row.extend(totals.iter().map(|t| format!("{t:.2}ms")));
    table.row(avg_row);
    table.print();

    println!("\nspeedup vs serial (wall-clock, best-of-3 per query):");
    for (ti, &t) in THREAD_COUNTS.iter().enumerate().skip(1) {
        println!(
            "  {t} threads (executor ran {}): {:.2}x over {} morsels max",
            executor_threads[ti],
            totals[0] / totals[ti],
            executor_morsels[ti]
        );
    }

    // Hand-rolled JSON (the bench crate is std-only by design).
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"parallel_scaling\",");
    let _ = writeln!(j, "  \"paper_ref\": \"fig9-style multicore scalability (§5/§6.4)\",");
    let _ = writeln!(j, "  \"dataset\": \"ssb\",");
    let _ = writeln!(j, "  \"sf\": {sf},");
    let _ = writeln!(j, "  \"host_cores\": {host_cores},");
    let _ = writeln!(j, "  \"queries\": {},", queries.len());
    let _ = writeln!(j, "  \"runs\": [");
    for (ti, &t) in THREAD_COUNTS.iter().enumerate() {
        let mut per = String::new();
        for (qi, sq) in queries.iter().enumerate() {
            let _ = write!(per, "\"{}\": {:.3}", sq.id, per_query_ms[ti][qi]);
            if qi + 1 < queries.len() {
                per.push_str(", ");
            }
        }
        let _ = writeln!(
            j,
            "    {{\"requested_threads\": {t}, \"executor_threads\": {}, \
             \"max_morsels\": {}, \"total_ms\": {:.3}, \
             \"speedup_vs_serial\": {:.3}, \"per_query_ms\": {{{per}}}}}{}",
            executor_threads[ti],
            executor_morsels[ti],
            totals[ti],
            totals[0] / totals[ti],
            if ti + 1 < THREAD_COUNTS.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}
