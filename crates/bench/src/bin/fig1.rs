//! **Fig. 1**: "Denormalization versus normal MMDBs on SSB" — the paper's
//! motivating chart. Average SSB execution time for each engine family,
//! normalized and denormalized.
//!
//! This is the summary view of Table 5 (run `table5` for the per-query
//! breakdown). Engine mapping is described in `table5.rs` and DESIGN.md.

use astore_baseline::denorm::denormalize;
use astore_baseline::engine::execute_hash_pipeline;
use astore_bench::{banner, ms, time_best_of};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.02);
    let threads = env_threads();
    banner("Fig 1", "denormalization versus normal engines on SSB (paper §1)", sf, threads);

    let db = ssb::generate(sf, 42);
    let wide = denormalize(&db, Some("lineorder")).expect("denormalization succeeds");

    let serial = ExecOptions::default();
    let parallel = ExecOptions::default().threads(threads);
    let queries = ssb::queries();

    let mut totals: Vec<(&str, f64)> = Vec::new();
    type EngineFn<'a> = Box<dyn Fn(&ssb::SsbQuery) -> f64 + 'a>;
    let engines: Vec<(&str, EngineFn<'_>)> = vec![
        (
            "hash-join engine (normalized)",
            Box::new(|sq: &ssb::SsbQuery| {
                ms(time_best_of(3, || execute_hash_pipeline(&db, &sq.query).unwrap()).0)
            }),
        ),
        (
            "hash-join engine (denormalized)",
            Box::new(|sq: &ssb::SsbQuery| {
                let wq = wide.rewrite(&sq.query, "lineorder");
                ms(time_best_of(3, || execute_hash_pipeline(&wide.db, &wq).unwrap()).0)
            }),
        ),
        (
            "hand-coded denormalization",
            Box::new(|sq: &ssb::SsbQuery| {
                let wq = wide.rewrite(&sq.query, "lineorder");
                ms(time_best_of(3, || execute(&wide.db, &wq, &serial).unwrap()).0)
            }),
        ),
        (
            "A-Store (virtual denormalization)",
            Box::new(|sq: &ssb::SsbQuery| {
                ms(time_best_of(3, || execute(&db, &sq.query, &serial).unwrap()).0)
            }),
        ),
        (
            "A-Store (parallel)",
            Box::new(|sq: &ssb::SsbQuery| {
                ms(time_best_of(3, || execute(&db, &sq.query, &parallel).unwrap()).0)
            }),
        ),
    ];

    for (name, run) in &engines {
        let total: f64 = queries.iter().map(run).sum();
        totals.push((name, total / queries.len() as f64));
    }

    println!("average SSB query time (13 queries):\n");
    let max = totals.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    for (name, avg) in &totals {
        let bar = "#".repeat(((avg / max) * 50.0).round() as usize);
        println!("{name:>34}: {avg:>8.2}ms {bar}");
    }
    println!(
        "\npaper's Fig. 1 shape: every engine speeds up when denormalized\n\
         (except MonetDB); the hand-coded denormalized scan is fastest;\n\
         A-Store (virtual denormalization) lands next to it without the\n\
         {:.1}x space cost.",
        wide.approx_bytes() as f64 / db.approx_bytes() as f64
    );
}
