//! **Ablation suite** for the design choices DESIGN.md calls out (beyond
//! the paper's own Fig. 9 variant ablation):
//!
//! 1. selection-vector refinement vs the full-column bitmap-AND scan the
//!    paper argues against (§4.1);
//! 2. predicate-vector cache budget: filters on ↔ direct chain probing
//!    (§4.2's optimizer decision), swept across dimension sizes;
//! 3. dense aggregation array vs hash fallback as the group space grows
//!    (§4.3's optimizer decision);
//! 4. parallel scaling of the partitioned executor (§5).

use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::optimizer::{AggStrategy, OptimizerConfig};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb, tpch};

fn main() {
    let sf = env_scale_factor(0.05);
    let threads = env_threads();
    banner("Ablation", "design-choice ablations (DESIGN.md)", sf, threads);
    let db = ssb::generate(sf, 42);

    // --- 1. Selection strategy ---
    println!("1. selection-vector refinement vs full-column bitmap AND (§4.1)");
    let mut t = TablePrinter::new(&["query", "selectivity", "selection vector", "bitmap AND"]);
    for sq in ssb::queries() {
        let vec_opts = ExecOptions::default();
        let bm_opts = ExecOptions { selection: SelectionStrategy::BitmapAnd, ..Default::default() };
        let (d_vec, out) = time_best_of(3, || execute(&db, &sq.query, &vec_opts).unwrap());
        let (d_bm, bout) = time_best_of(3, || execute(&db, &sq.query, &bm_opts).unwrap());
        assert!(out.result.same_contents(&bout.result, 1e-6));
        let n = db.table("lineorder").unwrap().num_slots();
        t.row(vec![
            sq.id.into(),
            format!("{:.2}%", 100.0 * out.plan.selected_rows as f64 / n as f64),
            format!("{:.2}ms", ms(d_vec)),
            format!("{:.2}ms", ms(d_bm)),
        ]);
    }
    t.print();
    println!("expected: the selection vector wins, most on selective queries.\n");

    // --- 2. Predicate-vector budget (snowflake, large first-level dim) ---
    println!("2. predicate vectors vs direct probing across the cache budget (§4.2)");
    let db_h = tpch::generate(sf, 43);
    let q3 = tpch::paper_q3();
    let mut t = TablePrinter::new(&["cache budget", "vectorized chains", "time"]);
    for budget in [0usize, 1 << 10, 1 << 14, 1 << 24] {
        let opts = ExecOptions {
            optimizer: OptimizerConfig { cache_budget_bytes: budget, ..Default::default() },
            ..Default::default()
        };
        let (d, out) = time_best_of(3, || execute(&db_h, &q3, &opts).unwrap());
        t.row(vec![
            format!("{budget} B"),
            out.plan.predvec_chains.to_string(),
            format!("{:.2}ms", ms(d)),
        ]);
    }
    t.print();
    println!("expected: once the budget admits the orders-sized filter, the scan speeds up.\n");

    // --- 3. Aggregation strategy as the group space grows ---
    println!("3. dense array vs hash aggregation across group-space sizes (§4.3)");
    let mut t = TablePrinter::new(&["group space", "groups", "dense array", "hash table"]);
    let group_sets: Vec<(&str, Vec<(&str, &str)>)> = vec![
        ("7 (years)", vec![("date", "d_year")]),
        ("~175 (nation x year)", vec![("customer", "c_nation"), ("date", "d_year")]),
        ("~1750 (city x year)", vec![("customer", "c_city"), ("date", "d_year")]),
        ("~62k (city x city)", vec![("customer", "c_city"), ("supplier", "s_city")]),
        (
            "~438k (city x city x year)",
            vec![("customer", "c_city"), ("supplier", "s_city"), ("date", "d_year")],
        ),
    ];
    for (label, groups) in group_sets {
        let mut q = Query::new()
            .root("lineorder")
            .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "rev"));
        for (tbl, col) in &groups {
            q = q.group(*tbl, *col);
        }
        let dense = ExecOptions { force_agg: Some(AggStrategy::DenseArray), ..Default::default() };
        let hash = ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() };
        let (d_dense, out_d) = time_best_of(3, || execute(&db, &q, &dense).unwrap());
        let (d_hash, out_h) = time_best_of(3, || execute(&db, &q, &hash).unwrap());
        assert!(out_d.result.same_contents(&out_h.result, 1e-6));
        t.row(vec![
            label.into(),
            out_d.plan.groups.to_string(),
            format!("{:.2}ms", ms(d_dense)),
            format!("{:.2}ms", ms(d_hash)),
        ]);
    }
    t.print();
    println!(
        "expected: the dense array wins while occupancy is high; as the space\n\
         outgrows the real group count (sparse), hashing catches up — the\n\
         optimizer's cell cap exists for exactly this crossover.\n"
    );

    // --- 4. Parallel scaling ---
    println!("4. parallel scaling of the partitioned executor (§5)");
    let q31 = &ssb::queries()[6].query;
    let mut t = TablePrinter::new(&["threads", "Q3.1", "speedup"]);
    let (base, _) = time_best_of(3, || execute(&db, q31, &ExecOptions::default()).unwrap());
    for n in [1usize, 2, 4, 8] {
        let opts = ExecOptions::default().threads(n);
        let (d, _) = time_best_of(3, || execute(&db, q31, &opts).unwrap());
        t.row(vec![n.to_string(), format!("{:.2}ms", ms(d)), format!("{:.2}x", ms(base) / ms(d))]);
    }
    t.print();
    println!(
        "expected: near-linear until the machine's core count, then flat\n\
         (over-subscription keeps partitions balanced; on a 1-core host all\n\
         rows are ≈1x)."
    );
}
