//! **Table 5** (and the data behind **Fig. 1**): full Star Schema
//! Benchmark across engines (paper §6.2.2).
//!
//! Columns reproduce the paper's engine families:
//!
//! | paper | here |
//! |---|---|
//! | MonetDB / Vectorwise / Hyper | pipelined hash-join engine on the normalized schema |
//! | *_D (denormalized) variants | pipelined engine on the materialized wide table |
//! | Denormalization (hand-coded) | A-Store's columnar engine on the wide table |
//! | A-Store | virtual denormalization (AIR scan, predicate vectors, array aggregation) |
//!
//! Also reports the wide table's space overhead (paper: 262 GB vs 46 GB).

use astore_baseline::denorm::denormalize;
use astore_baseline::engine::execute_hash_pipeline;
use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};

fn main() {
    let sf = env_scale_factor(0.02);
    let threads = env_threads();
    banner("Table 5", "Star Schema Benchmark, all engines (paper §6.2.2)", sf, threads);

    let db = ssb::generate(sf, 42);
    println!("materializing the wide table for the denormalized engines …");
    let wide = denormalize(&db, Some("lineorder")).expect("denormalization succeeds");
    println!(
        "space: normalized {:.1} MB, denormalized {:.1} MB ({:.2}x — paper: 45.8 GB vs 262.1 GB = 5.7x)\n",
        db.approx_bytes() as f64 / 1e6,
        wide.approx_bytes() as f64 / 1e6,
        wide.approx_bytes() as f64 / db.approx_bytes() as f64,
    );

    let serial = ExecOptions::default();
    let parallel = ExecOptions::default().threads(threads);

    let mut t = TablePrinter::new(&[
        "query",
        "hash-join",
        "hash-join_D",
        "denorm (hand)",
        "A-Store",
        &format!("A-Store x{threads}"),
    ]);
    let mut sums = [0.0f64; 5];
    for sq in ssb::queries() {
        let wq = wide.rewrite(&sq.query, "lineorder");

        let (d_hash, r_hash) = time_best_of(3, || execute_hash_pipeline(&db, &sq.query).unwrap());
        let (d_hash_d, r_hash_d) =
            time_best_of(3, || execute_hash_pipeline(&wide.db, &wq).unwrap());
        let (d_den, r_den) = time_best_of(3, || execute(&wide.db, &wq, &serial).unwrap());
        let (d_air, r_air) = time_best_of(3, || execute(&db, &sq.query, &serial).unwrap());
        let (d_par, r_par) = time_best_of(3, || execute(&db, &sq.query, &parallel).unwrap());

        for (r, name) in [
            (&r_hash.result, "hash"),
            (&r_hash_d.result, "hash_D"),
            (&r_den.result, "denorm"),
            (&r_par.result, "parallel"),
        ] {
            assert!(
                r_air.result.same_contents(r, 1e-6),
                "{}: {name} engine disagrees with A-Store",
                sq.id
            );
        }

        let times = [ms(d_hash), ms(d_hash_d), ms(d_den), ms(d_air), ms(d_par)];
        for (s, v) in sums.iter_mut().zip(times) {
            *s += v;
        }
        t.row(vec![
            sq.id.into(),
            format!("{:.2}ms", times[0]),
            format!("{:.2}ms", times[1]),
            format!("{:.2}ms", times[2]),
            format!("{:.2}ms", times[3]),
            format!("{:.2}ms", times[4]),
        ]);
    }
    t.row(vec![
        "AVG".into(),
        format!("{:.2}ms", sums[0] / 13.0),
        format!("{:.2}ms", sums[1] / 13.0),
        format!("{:.2}ms", sums[2] / 13.0),
        format!("{:.2}ms", sums[3] / 13.0),
        format!("{:.2}ms", sums[4] / 13.0),
    ]);
    t.print();

    println!("\n--- Fig. 1 summary (average SSB time per engine) ---");
    let labels =
        ["hash-join engine", "hash-join on wide", "hand denorm", "A-Store", "A-Store parallel"];
    let max = sums.iter().cloned().fold(0.0f64, f64::max);
    for (label, s) in labels.iter().zip(sums) {
        let avg = s / 13.0;
        let bar = "#".repeat(((s / max) * 40.0) as usize);
        println!("{label:>20}: {avg:>8.2}ms {bar}");
    }
    println!(
        "\npaper (SF=100 averages): Vectorwise 1.62s > Vectorwise_D 1.20s > Hyper 0.48s\n\
         > Hyper_D 0.41s > A-Store 0.32s > hand denormalization 0.21s; A-Store beats\n\
         every system while using 5.7x less RAM than materialized denormalization."
    );
}
