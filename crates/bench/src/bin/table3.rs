//! **Table 3**: key OLAP operator micro-benchmarks on SSB (paper §6.1.3):
//!
//! 1. *Predicate processing* — four fact-column predicates with combined
//!    selectivity swept from (1/2)⁴ to (1/16)⁴;
//! 2. *Grouping & aggregation* — `select count(*), lo_discount, lo_tax
//!    from lineorder group by lo_discount, lo_tax` (99 groups), array vs
//!    hash aggregation;
//! 3. *Star-join* — the 13 SSB queries reduced to `count(*)` with no
//!    GROUP BY.
//!
//! A-Store's column-wise scan plays against its own row-wise variant and
//! the pipelined hash-join engine (the Hyper/Vectorwise stand-in).

use astore_baseline::engine::execute_hash_pipeline;
use astore_baseline::hashagg::{array_group_pair_i32, hash_group_pair_i32};
use astore_bench::{banner, ms, time_best_of, TablePrinter};
use astore_core::optimizer::AggStrategy;
use astore_core::prelude::*;
use astore_datagen::{env_scale_factor, env_threads, ssb};
use astore_storage::catalog::Database;

fn predicate_query(db: &Database, level: u32) -> (Query, f64) {
    // Per-predicate target selectivity 1/2^level on four fact columns.
    let lo = db.table("lineorder").unwrap();
    let max_order =
        lo.column("lo_orderkey").unwrap().as_i64().unwrap().iter().max().copied().unwrap_or(1);
    let (q_thr, d_thr, t_thr, o_thr, approx) = match level {
        1 => (25, 4, 3, max_order / 2, 0.5 * 0.4545 * 0.4444 * 0.5),
        2 => (12, 2, 1, max_order / 4, 0.24 * 0.2727 * 0.2222 * 0.25),
        3 => (6, 1, 0, max_order / 8, 0.12 * 0.1818 * 0.1111 * 0.125),
        _ => (3, 0, 0, max_order / 16, 0.06 * 0.0909 * 0.1111 * 0.0625),
    };
    let q = Query::new()
        .root("lineorder")
        .filter("lineorder", Pred::cmp("lo_quantity", CmpOp::Le, q_thr))
        .filter("lineorder", Pred::cmp("lo_discount", CmpOp::Le, d_thr))
        .filter("lineorder", Pred::cmp("lo_tax", CmpOp::Le, t_thr))
        .filter("lineorder", Pred::cmp("lo_orderkey", CmpOp::Le, o_thr))
        .agg(Aggregate::count("n"));
    (q, approx)
}

fn main() {
    let sf = env_scale_factor(0.05);
    banner("Table 3", "key OLAP operators in SSB (paper §6.1.3)", sf, env_threads());
    let db = ssb::generate(sf, 42);
    let n_fact = db.table("lineorder").unwrap().num_slots();

    // --- 1. Predicate processing ---
    println!("1. predicate processing (four fact predicates)");
    let mut t = TablePrinter::new(&[
        "target sel",
        "measured",
        "A-Store col-wise",
        "A-Store row-wise",
        "hash pipeline",
    ]);
    for level in 1..=4u32 {
        let (q, approx) = predicate_query(&db, level);
        let col_opts = ExecOptions::default();
        let row_opts = ExecOptions::with_variant(ScanVariant::RowWise);
        let (d_col, out) = time_best_of(3, || execute(&db, &q, &col_opts).unwrap());
        let (d_row, _) = time_best_of(3, || execute(&db, &q, &row_opts).unwrap());
        let (d_hash, hout) = time_best_of(3, || execute_hash_pipeline(&db, &q).unwrap());
        assert!(out.result.same_contents(&hout.result, 1e-9));
        t.row(vec![
            format!("(1/{})^4", 1 << level),
            format!(
                "{:.4}% (~{:.4}%)",
                100.0 * out.plan.selected_rows as f64 / n_fact as f64,
                100.0 * approx
            ),
            format!("{:.2}ms", ms(d_col)),
            format!("{:.2}ms", ms(d_row)),
            format!("{:.2}ms", ms(d_hash)),
        ]);
    }
    t.print();

    // --- 2. Grouping & aggregation ---
    println!("\n2. grouping & aggregation: group by (lo_discount, lo_tax), 99 groups");
    let gq = Query::new()
        .root("lineorder")
        .group("lineorder", "lo_discount")
        .group("lineorder", "lo_tax")
        .agg(Aggregate::count("n"))
        .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "rev"));
    let dense = ExecOptions { force_agg: Some(AggStrategy::DenseArray), ..Default::default() };
    let hashed = ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() };
    let (d_dense, out_d) = time_best_of(3, || execute(&db, &gq, &dense).unwrap());
    let (d_hash, out_h) = time_best_of(3, || execute(&db, &gq, &hashed).unwrap());
    assert!(out_d.result.same_contents(&out_h.result, 1e-9));
    println!(
        "  A-Store array aggregation : {:>8.2}ms  ({} groups)",
        ms(d_dense),
        out_d.plan.groups
    );
    println!("  A-Store hash aggregation  : {:>8.2}ms", ms(d_hash));

    // Raw-kernel comparison on the same columns.
    let lo = db.table("lineorder").unwrap();
    let disc = lo.column("lo_discount").unwrap().as_i32().unwrap();
    let tax = lo.column("lo_tax").unwrap().as_i32().unwrap();
    let rev = lo.column("lo_revenue").unwrap().as_i64().unwrap();
    let (d_ka, ra) = time_best_of(3, || array_group_pair_i32(disc, tax, rev));
    let (d_kh, rh) = time_best_of(3, || hash_group_pair_i32(disc, tax, rev));
    assert_eq!(ra.len(), rh.len());
    println!("  raw array kernel          : {:>8.2}ms", ms(d_ka));
    println!("  raw hash kernel           : {:>8.2}ms", ms(d_kh));

    // --- 3. Star-join ---
    println!("\n3. star-join (SSB queries as count(*), no GROUP BY)");
    let mut t = TablePrinter::new(&["query", "selectivity", "A-Store AIR scan", "hash pipeline"]);
    let opts = ExecOptions::default();
    for sq in ssb::starjoin_queries() {
        let (d_air, out) = time_best_of(3, || execute(&db, &sq.query, &opts).unwrap());
        let (d_hash, hout) = time_best_of(3, || execute_hash_pipeline(&db, &sq.query).unwrap());
        assert!(out.result.same_contents(&hout.result, 1e-9), "{} mismatch", sq.id);
        t.row(vec![
            sq.id.into(),
            format!("{:.2}%", 100.0 * out.plan.selected_rows as f64 / n_fact as f64),
            format!("{:.2}ms", ms(d_air)),
            format!("{:.2}ms", ms(d_hash)),
        ]);
    }
    t.print();
    println!(
        "\npaper: A-Store ≈ Hyper on predicate processing (both beat Vectorwise 2–3×\n\
         and MonetDB by 10×+); array aggregation beats hash; pipelining star-join\n\
         wins only on the most selective queries (Q1.1/Q2.1/Q3.1/Q4.1)."
    );
}
