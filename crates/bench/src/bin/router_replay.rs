//! `router_replay` — replay the SSB flight under each fixed engine and the
//! adaptive router, gate on the router's regret, and emit
//! `BENCH_router.json`.
//!
//! ```text
//! ASTORE_SF=0.1 cargo run --release -p astore-bench --bin router_replay
//! ```
//!
//! Environment:
//! - `ASTORE_SF` — SSB scale factor (default 0.1)
//! - `ASTORE_ROUNDS` — measured rounds per strategy (default 3)
//! - `ASTORE_OUT` — output path (default `BENCH_router.json`)
//!
//! Exit status is nonzero when a gate fails: any result mismatch, regret
//! above 15% of the best-of oracle, or a router total at or above the worst
//! fixed strategy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use astore_bench::replay::{run_replay, SSB_SQL};
use astore_datagen::ssb;
use astore_server::{Engine, RouterConfig};
use astore_storage::snapshot::SharedDatabase;

/// Regret gate: the adaptive pass may cost at most 15% more than the
/// clairvoyant per-query best of the fixed strategies.
const MAX_REGRET: f64 = 0.15;

fn main() {
    let sf: f64 = std::env::var("ASTORE_SF").ok().and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let rounds: usize =
        std::env::var("ASTORE_ROUNDS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = std::env::var("ASTORE_OUT").unwrap_or_else(|_| "BENCH_router.json".into());
    // Warmup rounds for the adaptive pass: enough that every template
    // clears the router's warmup window and has explored each arm once.
    let warmup_rounds = 3usize;

    let t = Instant::now();
    let db = ssb::generate(sf, 42);
    let rows: usize = db.table_names().iter().map(|n| db.table(n).unwrap().num_live()).sum();
    eprintln!("generated ssb sf={sf} ({rows} rows) in {:.1?}", t.elapsed());

    let engine = Engine::new(SharedDatabase::new(db))
        .router_config(RouterConfig { warmup: 2, ..RouterConfig::default() });

    let t = Instant::now();
    let outcome = run_replay(&engine, rounds, warmup_rounds);
    eprintln!(
        "replayed {} queries x {} strategies in {:.1?}",
        SSB_SQL.len(),
        outcome.fixed.len() + 1,
        t.elapsed()
    );

    for run in &outcome.fixed {
        eprintln!(
            "  fixed {:>6}: {:>9} us  ({} mismatches)",
            run.name,
            run.total_us(),
            run.mismatches
        );
    }
    eprintln!(
        "  oracle      : {:>9} us\n  router      : {:>9} us  regret {:+.1}%  \
         decisions air/join/denorm = {}/{}/{}",
        outcome.oracle_us,
        outcome.router.total_us(),
        outcome.regret * 100.0,
        outcome.decisions[0],
        outcome.decisions[1],
        outcome.decisions[2],
    );

    let json = outcome.to_json(sf, rounds, warmup_rounds);
    std::fs::write(&out_path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");

    if !outcome.passes(MAX_REGRET) {
        eprintln!(
            "GATE FAILED: mismatches={} regret={:.3} (max {MAX_REGRET}) \
             router={}us worst_fixed={}us",
            outcome.total_mismatches,
            outcome.regret,
            outcome.router.total_us(),
            outcome.worst_fixed_us,
        );
        std::process::exit(1);
    }
    eprintln!("gates passed: zero mismatches, regret <= {MAX_REGRET}, beats worst fixed strategy");
}
