//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every table/figure of the paper's §6 has a binary in `src/bin/` that
//! regenerates it (`fig1`, `table2`, `fig8`, `table3`, `table4`, `table5`,
//! `fig9`, `fig10`, `table1_updates`). All binaries honour `ASTORE_SF`
//! (scale factor) and `ASTORE_THREADS`. Following the paper's methodology,
//! "we execute each query 3 times and use the shortest execution time".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod replay;

pub use std::hint::black_box;

/// Runs `f` `runs` times and returns the *shortest* wall time plus the last
/// result (the paper's timing methodology, §6).
pub fn time_best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(runs > 0);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = black_box(f());
        let d = t.elapsed();
        if d < best {
            best = d;
        }
        out = Some(r);
    }
    (best, out.expect("runs > 0"))
}

/// Milliseconds, as f64.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Nanoseconds per tuple — the scale-free unit of Table 2 (the paper
/// reports cycles/tuple; on a fixed machine the two are proportional).
pub fn ns_per_tuple(d: Duration, tuples: usize) -> f64 {
    if tuples == 0 {
        return 0.0;
    }
    d.as_secs_f64() * 1e9 / tuples as f64
}

/// A minimal fixed-width table printer for harness output.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (cells pre-rendered).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    out.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints the standard harness banner (experiment id, scale, threads).
pub fn banner(experiment: &str, paper_ref: &str, sf: f64, threads: usize) {
    println!("=== {experiment} — {paper_ref} ===");
    println!("scale factor (ASTORE_SF) = {sf}, threads (ASTORE_THREADS) = {threads}");
    println!(
        "note: absolute times differ from the paper's HP Z820 testbed; the\n\
         comparison *shape* (who wins, by what factor) is the reproduction target.\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_best_of_returns_min_and_result() {
        let mut calls = 0;
        let (d, r) = time_best_of(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(r, 3);
        assert!(d < Duration::from_secs(60));
    }

    #[test]
    fn ns_per_tuple_math() {
        let d = Duration::from_nanos(1_000);
        assert!((ns_per_tuple(d, 100) - 10.0).abs() < 1e-9);
        assert_eq!(ns_per_tuple(d, 0), 0.0);
    }

    #[test]
    fn table_printer_renders_aligned() {
        let mut t = TablePrinter::new(&["name", "value"]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("a-long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn table_printer_rejects_bad_rows() {
        let mut t = TablePrinter::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
