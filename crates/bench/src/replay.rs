//! Router replay harness: the SSB flight replayed under each fixed engine
//! (air, join, denorm) and then under the adaptive router, against one
//! server [`Engine`].
//!
//! The fixed passes do double duty: they are the measurement baseline
//! *and* — because every pinned execution still reports its latency to the
//! router — the training data the adaptive pass exploits. After them the
//! harness runs the workload on an `auto` session (a few warmup rounds,
//! then measured rounds) and scores it against two oracles:
//!
//! - **best-of-oracle**: per query, the fastest fixed strategy — the
//!   latency a clairvoyant per-template picker would achieve. The router's
//!   *regret* is how far above that its own total lands.
//! - **worst fixed**: the slowest single strategy applied to everything —
//!   the cost of picking one engine globally and being wrong.
//!
//! Every execution of every pass is checked bit-for-bit (rows sorted to
//! canonicalize group order) against the forced-AIR answer; a replay with
//! any mismatch is a correctness failure, whatever the timings say.

use astore_server::json::Json;
use astore_server::{Engine, StatementRegistry};

/// The 13 SSB queries as literal SQL, in flight order — the wire-level
/// twin of [`astore_datagen::ssb::queries`].
pub const SSB_SQL: [(&str, &str); 13] = [
    (
        "Q1.1",
        "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
         WHERE lo_orderdate = d_datekey AND d_year = 1993 \
           AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25",
    ),
    (
        "Q1.2",
        "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
         WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401 \
           AND lo_discount BETWEEN 4 AND 6 AND lo_quantity BETWEEN 26 AND 35",
    ),
    (
        "Q1.3",
        "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
         WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6 AND d_year = 1994 \
           AND lo_discount BETWEEN 5 AND 7 AND lo_quantity BETWEEN 26 AND 35",
    ),
    (
        "Q2.1",
        "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
         FROM lineorder, date, part, supplier \
         WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
           AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' AND s_region = 'AMERICA' \
         GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
    ),
    (
        "Q2.2",
        "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
         FROM lineorder, date, part, supplier \
         WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
           AND lo_suppkey = s_suppkey AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228' \
           AND s_region = 'ASIA' \
         GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
    ),
    (
        "Q2.3",
        "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
         FROM lineorder, date, part, supplier \
         WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
           AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2239' AND s_region = 'EUROPE' \
         GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
    ),
    (
        "Q3.1",
        "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
         FROM customer, lineorder, supplier, date \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_orderdate = d_datekey AND c_region = 'ASIA' AND s_region = 'ASIA' \
           AND d_year BETWEEN 1992 AND 1997 \
         GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC",
    ),
    (
        "Q3.2",
        "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
         FROM customer, lineorder, supplier, date \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_orderdate = d_datekey AND c_nation = 'UNITED STATES' \
           AND s_nation = 'UNITED STATES' AND d_year BETWEEN 1992 AND 1997 \
         GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
    ),
    (
        "Q3.3",
        "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
         FROM customer, lineorder, supplier, date \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_orderdate = d_datekey AND c_city IN ('UNITED KI1', 'UNITED KI5') \
           AND s_city IN ('UNITED KI1', 'UNITED KI5') AND d_year BETWEEN 1992 AND 1997 \
         GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
    ),
    (
        "Q3.4",
        "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
         FROM customer, lineorder, supplier, date \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_orderdate = d_datekey AND c_city IN ('UNITED KI1', 'UNITED KI5') \
           AND s_city IN ('UNITED KI1', 'UNITED KI5') AND d_yearmonth = 'Dec1997' \
         GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
    ),
    (
        "Q4.1",
        "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
         FROM date, customer, supplier, part, lineorder \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
           AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
           AND p_mfgr IN ('MFGR#1', 'MFGR#2') \
         GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
    ),
    (
        "Q4.2",
        "SELECT d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) AS profit \
         FROM date, customer, supplier, part, lineorder \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
           AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
           AND d_year IN (1997, 1998) AND p_mfgr IN ('MFGR#1', 'MFGR#2') \
         GROUP BY d_year, s_nation, p_category ORDER BY d_year, s_nation, p_category",
    ),
    (
        "Q4.3",
        "SELECT d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) AS profit \
         FROM date, customer, supplier, part, lineorder \
         WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
           AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
           AND c_region = 'AMERICA' AND s_nation = 'UNITED STATES' \
           AND d_year IN (1997, 1998) AND p_category = 'MFGR#14' \
         GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1",
    ),
];

/// One strategy's replay result.
#[derive(Debug)]
pub struct StrategyRun {
    /// `air` | `join` | `denorm` | `auto`.
    pub name: &'static str,
    /// Per query (flight order): the best measured server-side latency.
    pub per_query_us: Vec<u64>,
    /// Executions whose canonicalized rows differed from forced AIR.
    pub mismatches: usize,
}

impl StrategyRun {
    /// Sum of the per-query best latencies — one steady-state workload pass.
    pub fn total_us(&self) -> u64 {
        self.per_query_us.iter().sum()
    }
}

/// The full replay outcome: three fixed passes, the adaptive pass, and the
/// derived oracles.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Fixed passes, in `air`, `join`, `denorm` order.
    pub fixed: Vec<StrategyRun>,
    /// The adaptive (`auto`) pass, measured after its warmup rounds.
    pub router: StrategyRun,
    /// Per query, min across the fixed strategies, summed: the clairvoyant
    /// per-template picker.
    pub oracle_us: u64,
    /// The slowest fixed strategy's total.
    pub worst_fixed_us: u64,
    /// `router_total / oracle − 1` (0.0 = matched the oracle exactly).
    pub regret: f64,
    /// Mismatches across every pass and round; must be zero.
    pub total_mismatches: usize,
    /// Adaptive-pass decisions per arm (air, join, denorm), from the
    /// engine's counters.
    pub decisions: [u64; 3],
}

impl ReplayOutcome {
    /// Whether the replay met the router's acceptance gates: zero
    /// mismatches, regret within `max_regret`, and strictly cheaper than
    /// the worst fixed strategy.
    pub fn passes(&self, max_regret: f64) -> bool {
        self.total_mismatches == 0
            && self.regret <= max_regret
            && self.router.total_us() < self.worst_fixed_us
    }

    /// Renders the outcome as the `BENCH_router.json` document.
    pub fn to_json(&self, sf: f64, rounds: usize, warmup_rounds: usize) -> Json {
        let strategy = |run: &StrategyRun| {
            Json::obj([
                ("total_us", Json::Int(run.total_us() as i64)),
                (
                    "per_query_us",
                    Json::Array(run.per_query_us.iter().map(|&us| Json::Int(us as i64)).collect()),
                ),
                ("mismatches", Json::Int(run.mismatches as i64)),
            ])
        };
        let mut fixed: Vec<(&str, Json)> = Vec::new();
        for run in &self.fixed {
            fixed.push((run.name, strategy(run)));
        }
        Json::obj([
            ("bench", Json::Str("router_replay".into())),
            ("dataset", Json::Str("ssb".into())),
            ("sf", Json::Float(sf)),
            (
                "queries",
                Json::Array(SSB_SQL.iter().map(|(id, _)| Json::Str((*id).into())).collect()),
            ),
            ("rounds", Json::Int(rounds as i64)),
            ("router_warmup_rounds", Json::Int(warmup_rounds as i64)),
            ("fixed", Json::obj(fixed)),
            ("router", strategy(&self.router)),
            ("oracle_us", Json::Int(self.oracle_us as i64)),
            ("worst_fixed_us", Json::Int(self.worst_fixed_us as i64)),
            ("regret", Json::Float(self.regret)),
            (
                "router_decisions",
                Json::obj([
                    ("air", Json::Int(self.decisions[0] as i64)),
                    ("join", Json::Int(self.decisions[1] as i64)),
                    ("denorm", Json::Int(self.decisions[2] as i64)),
                ]),
            ),
            ("total_mismatches", Json::Int(self.total_mismatches as i64)),
        ])
    }
}

fn sql(e: &Engine, reg: &mut StatementRegistry, s: &str) -> Json {
    e.handle_line_session(&Json::obj([("sql", Json::Str(s.into()))]).to_string(), reg)
}

fn pinned_session(e: &Engine, engine: &str) -> StatementRegistry {
    let mut reg = StatementRegistry::default();
    let r = sql(e, &mut reg, &format!("SET engine = {engine}"));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "SET engine failed: {r}");
    reg
}

/// Canonicalized rows of a successful result frame (sorted serialized
/// rows), plus the server-side latency.
fn run_one(e: &Engine, reg: &mut StatementRegistry, stmt: &str, ctx: &str) -> (Vec<String>, u64) {
    let frame = sql(e, reg, stmt);
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{ctx}: {frame}");
    let mut rows: Vec<String> = frame
        .get("rows")
        .and_then(Json::as_array)
        .map(|rs| rs.iter().map(Json::to_string).collect())
        .unwrap_or_default();
    rows.sort_unstable();
    let us = frame.get("elapsed_us").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
    (rows, us)
}

/// Replays the SSB flight on `engine`: `rounds` measured rounds per fixed
/// strategy, then `warmup_rounds + rounds` adaptive rounds (only the last
/// `rounds` are measured). The engine should carry a low-warmup
/// [`astore_server::RouterConfig`] so the adaptive pass converges within
/// the warmup rounds.
pub fn run_replay(engine: &Engine, rounds: usize, warmup_rounds: usize) -> ReplayOutcome {
    assert!(rounds > 0);
    let n = SSB_SQL.len();

    // Forced-AIR reference answers (data is static during the replay).
    let mut reference: Vec<Vec<String>> = Vec::with_capacity(n);
    {
        let mut reg = pinned_session(engine, "air");
        for (id, stmt) in SSB_SQL {
            reference.push(run_one(engine, &mut reg, stmt, id).0);
        }
    }

    let mut total_mismatches = 0usize;
    let mut pass = |engine_name: &'static str, skip_rounds: usize| -> StrategyRun {
        let mut reg = pinned_session(engine, engine_name);
        let mut best = vec![u64::MAX; n];
        let mut mismatches = 0usize;
        for round in 0..skip_rounds + rounds {
            for (q, (id, stmt)) in SSB_SQL.iter().enumerate() {
                let (rows, us) = run_one(engine, &mut reg, stmt, id);
                if rows != reference[q] {
                    mismatches += 1;
                    eprintln!("MISMATCH: {engine_name} round {round} {id}");
                }
                if round >= skip_rounds {
                    best[q] = best[q].min(us);
                }
            }
        }
        total_mismatches += mismatches;
        StrategyRun { name: engine_name, per_query_us: best, mismatches }
    };

    let fixed: Vec<StrategyRun> =
        ["air", "join", "denorm"].into_iter().map(|name| pass(name, 0)).collect();

    use std::sync::atomic::Ordering::Relaxed;
    let before: [u64; 3] =
        std::array::from_fn(|i| engine.stats().router_decisions[i].load(Relaxed));
    let router = pass("auto", warmup_rounds);
    let decisions: [u64; 3] = std::array::from_fn(|i| {
        engine.stats().router_decisions[i].load(Relaxed).saturating_sub(before[i])
    });

    let oracle_us: u64 =
        (0..n).map(|q| fixed.iter().map(|s| s.per_query_us[q]).min().unwrap_or(0)).sum();
    let worst_fixed_us = fixed.iter().map(StrategyRun::total_us).max().unwrap_or(0);
    let router_total = router.total_us();
    let regret = if oracle_us > 0 { router_total as f64 / oracle_us as f64 - 1.0 } else { 0.0 };

    ReplayOutcome { fixed, router, oracle_us, worst_fixed_us, regret, total_mismatches, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_datagen::ssb;
    use astore_server::RouterConfig;
    use astore_storage::snapshot::SharedDatabase;

    #[test]
    fn replay_is_mismatch_free_on_a_tiny_set() {
        let shared = SharedDatabase::new(ssb::generate(0.001, 42));
        let engine = Engine::new(shared)
            .router_config(RouterConfig { warmup: 2, ..RouterConfig::default() });
        let out = run_replay(&engine, 2, 1);
        assert_eq!(out.total_mismatches, 0);
        assert_eq!(out.fixed.len(), 3);
        assert_eq!(out.router.per_query_us.len(), SSB_SQL.len());
        assert!(out.oracle_us > 0, "latencies were recorded");
        assert_eq!(out.decisions.iter().sum::<u64>(), ((1 + 2) * SSB_SQL.len()) as u64);
        let json = out.to_json(0.001, 2, 1).to_string();
        assert!(json.contains("\"regret\""), "{json}");
    }
}
