//! Criterion benches for the Table 2 / Fig. 8 join kernels:
//! AIR positional join vs NPO / PRO hash joins vs sort-merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use astore_baseline::npo::npo_join_sum;
use astore_baseline::pro::{pro_join_sum, RadixConfig};
use astore_baseline::sortmerge::sortmerge_join_sum;
use astore_core::air_join::{air_join_count, air_join_sum};
use astore_datagen::workload::JoinWorkload;

fn bench_join_kernels(c: &mut Criterion) {
    // Dimension sizes sweeping cache residency, fixed probe side.
    let n_probe = 1 << 20;
    let mut g = c.benchmark_group("pk_fk_join");
    g.throughput(Throughput::Elements(n_probe as u64));
    for dim_size in [1 << 10, 1 << 14, 1 << 18] {
        let w = JoinWorkload::new(dim_size, n_probe, 7);
        let air_probe = w.air_probe_keys();

        g.bench_with_input(BenchmarkId::new("air", dim_size), &dim_size, |b, _| {
            b.iter(|| air_join_sum(black_box(&air_probe), black_box(&w.build_payloads)))
        });
        g.bench_with_input(BenchmarkId::new("npo", dim_size), &dim_size, |b, _| {
            b.iter(|| {
                npo_join_sum(
                    black_box(&w.build_keys),
                    black_box(&w.build_payloads),
                    black_box(&w.probe_keys),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("pro", dim_size), &dim_size, |b, _| {
            b.iter(|| {
                pro_join_sum(
                    black_box(&w.build_keys),
                    black_box(&w.build_payloads),
                    black_box(&w.probe_keys),
                    RadixConfig::default(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("sortmerge", dim_size), &dim_size, |b, _| {
            b.iter(|| {
                sortmerge_join_sum(
                    black_box(&w.build_keys),
                    black_box(&w.build_payloads),
                    black_box(&w.probe_keys),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("air_count_only", dim_size), &dim_size, |b, _| {
            b.iter(|| air_join_count(black_box(&air_probe), dim_size))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_join_kernels
}
criterion_main!(benches);
