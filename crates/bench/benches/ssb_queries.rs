//! Criterion benches for the full SSB flight (Table 5): A-Store vs the
//! hash-join pipeline engine, one representative query per SSB family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::prelude::*;
use astore_datagen::ssb;

fn bench_ssb(c: &mut Criterion) {
    let db = ssb::generate(0.01, 42);
    let n = db.table("lineorder").unwrap().num_slots();
    let queries = ssb::queries();
    let representative = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"];

    let mut g = c.benchmark_group("ssb");
    g.throughput(Throughput::Elements(n as u64));
    for sq in queries.iter().filter(|q| representative.contains(&q.id)) {
        g.bench_with_input(BenchmarkId::new("a_store", sq.id), &sq.query, |b, q| {
            let opts = ExecOptions::default();
            b.iter(|| execute(&db, q, &opts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("hash_pipeline", sq.id), &sq.query, |b, q| {
            b.iter(|| execute_hash_pipeline(&db, q).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ssb
}
criterion_main!(benches);
