//! Criterion benches for the Table 3 scan operators: vectorized column scan
//! vs row-wise scan, with and without predicate vectors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use astore_core::prelude::*;
use astore_datagen::ssb;

fn bench_scans(c: &mut Criterion) {
    let db = ssb::generate(0.01, 42);
    let n = db.table("lineorder").unwrap().num_slots();

    // The Table 3 predicate sweep at selectivity (1/4)^4.
    let q = Query::new()
        .root("lineorder")
        .filter("lineorder", Pred::cmp("lo_quantity", CmpOp::Le, 12))
        .filter("lineorder", Pred::cmp("lo_discount", CmpOp::Le, 2))
        .filter("lineorder", Pred::cmp("lo_tax", CmpOp::Le, 1))
        .agg(Aggregate::count("n"));

    let mut g = c.benchmark_group("predicate_scan");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("column_wise", |b| {
        let opts = ExecOptions::with_variant(ScanVariant::ColumnWisePredVec);
        b.iter(|| execute(&db, &q, &opts).unwrap())
    });
    g.bench_function("row_wise", |b| {
        let opts = ExecOptions::with_variant(ScanVariant::RowWise);
        b.iter(|| execute(&db, &q, &opts).unwrap())
    });
    g.finish();

    // Star-join scan: dimension predicates through predicate vectors vs
    // direct AIR chasing (the §4.2 comparison).
    let sq = &ssb::starjoin_queries()[6].query; // Q3.1 count-only
    let mut g = c.benchmark_group("star_join_scan");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("predicate_vectors", |b| {
        let opts = ExecOptions::with_variant(ScanVariant::ColumnWisePredVec);
        b.iter(|| execute(&db, sq, &opts).unwrap())
    });
    g.bench_function("direct_probing", |b| {
        let opts = ExecOptions::with_variant(ScanVariant::ColumnWise);
        b.iter(|| execute(&db, sq, &opts).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scans
}
criterion_main!(benches);
