//! Criterion benches for §4.3: array-based column-wise aggregation vs hash
//! aggregation, on the engine and on raw kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use astore_baseline::hashagg::{array_group_pair_i32, hash_group_pair_i32};
use astore_core::optimizer::AggStrategy;
use astore_core::prelude::*;
use astore_datagen::ssb;

fn bench_aggregation(c: &mut Criterion) {
    let db = ssb::generate(0.01, 42);
    let lo = db.table("lineorder").unwrap();
    let n = lo.num_slots();

    // The paper's §6.1.3 grouping query: 99 groups.
    let q = Query::new()
        .root("lineorder")
        .group("lineorder", "lo_discount")
        .group("lineorder", "lo_tax")
        .agg(Aggregate::count("n"))
        .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "rev"));

    let mut g = c.benchmark_group("engine_groupby_99_groups");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("array", |b| {
        let opts = ExecOptions { force_agg: Some(AggStrategy::DenseArray), ..Default::default() };
        b.iter(|| execute(&db, &q, &opts).unwrap())
    });
    g.bench_function("hash", |b| {
        let opts = ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() };
        b.iter(|| execute(&db, &q, &opts).unwrap())
    });
    g.finish();

    let disc = lo.column("lo_discount").unwrap().as_i32().unwrap();
    let tax = lo.column("lo_tax").unwrap().as_i32().unwrap();
    let rev = lo.column("lo_revenue").unwrap().as_i64().unwrap();
    let mut g = c.benchmark_group("raw_groupby_kernels");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("array", |b| {
        b.iter(|| array_group_pair_i32(black_box(disc), black_box(tax), black_box(rev)))
    });
    g.bench_function("hash", |b| {
        b.iter(|| hash_group_pair_i32(black_box(disc), black_box(tax), black_box(rev)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aggregation
}
criterion_main!(benches);
