//! Distributional invariants of the data generators — the properties the
//! SSB queries' published selectivities depend on.

use astore_datagen::{ssb, tpcds, tpch, workload::JoinWorkload};

#[test]
fn ssb_part_hierarchy_is_consistent() {
    let db = ssb::generate(0.01, 42);
    let part = db.table("part").unwrap();
    let mfgr = part.column("p_mfgr").unwrap().as_dict().unwrap();
    let cat = part.column("p_category").unwrap().as_dict().unwrap();
    let brand = part.column("p_brand1").unwrap().as_dict().unwrap();
    for r in 0..part.num_slots() {
        let m = mfgr.get(r);
        let c = cat.get(r);
        let b = brand.get(r);
        assert!(c.starts_with(m), "category {c} not under mfgr {m}");
        assert!(b.starts_with(c), "brand {b} not under category {c}");
    }
    // Cardinalities: 5 manufacturers, 25 categories, ≤1000 brands.
    assert_eq!(mfgr.dict().len(), 5);
    assert_eq!(cat.dict().len(), 25);
    assert!(brand.dict().len() <= 1000);
}

#[test]
fn ssb_geography_is_consistent() {
    let db = ssb::generate(0.01, 42);
    for (table, city_col, nation_col, region_col) in [
        ("customer", "c_city", "c_nation", "c_region"),
        ("supplier", "s_city", "s_nation", "s_region"),
    ] {
        let t = db.table(table).unwrap();
        let city = t.column(city_col).unwrap().as_dict().unwrap();
        let nation = t.column(nation_col).unwrap().as_dict().unwrap();
        let region = t.column(region_col).unwrap().as_dict().unwrap();
        assert!(region.dict().len() <= 5, "{table} regions");
        assert!(nation.dict().len() <= 25, "{table} nations");
        if t.num_slots() >= 300 {
            // With enough rows all 25 nations appear w.h.p.
            assert_eq!(nation.dict().len(), 25, "{table} nations at n={}", t.num_slots());
            assert_eq!(region.dict().len(), 5, "{table} regions");
        }
        for r in 0..t.num_slots() {
            let n = nation.get(r);
            let c = city.get(r);
            // City = nation truncated/padded to 9 chars + digit.
            let expected_prefix: String = {
                let mut p: String = n.chars().take(9).collect();
                while p.len() < 9 {
                    p.push(' ');
                }
                p
            };
            assert!(c.starts_with(&expected_prefix), "{table}: city {c:?} vs nation {n:?}");
            // Nation's region matches the fixed geography.
            let expected_region =
                ssb::NATIONS.iter().find(|(nat, _)| *nat == n).map(|(_, r)| *r).unwrap();
            assert_eq!(region.get(r), expected_region);
        }
    }
}

#[test]
fn ssb_uniform_columns_cover_their_ranges() {
    let db = ssb::generate(0.02, 42);
    let lo = db.table("lineorder").unwrap();
    let n = lo.num_slots() as f64;

    let disc = lo.column("lo_discount").unwrap().as_i32().unwrap();
    for d in 0..=10 {
        let freq = disc.iter().filter(|&&x| x == d).count() as f64 / n;
        assert!((freq - 1.0 / 11.0).abs() < 0.02, "discount {d} frequency {freq} far from uniform");
    }

    let qty = lo.column("lo_quantity").unwrap().as_i32().unwrap();
    assert_eq!(*qty.iter().min().unwrap(), 1);
    assert_eq!(*qty.iter().max().unwrap(), 50);
    let under_25 = qty.iter().filter(|&&q| q < 25).count() as f64 / n;
    assert!((under_25 - 24.0 / 50.0).abs() < 0.02, "quantity < 25 rate {under_25}");

    let tax = lo.column("lo_tax").unwrap().as_i32().unwrap();
    assert_eq!(*tax.iter().min().unwrap(), 0);
    assert_eq!(*tax.iter().max().unwrap(), 8);
}

#[test]
fn ssb_fk_distributions_are_roughly_uniform() {
    let db = ssb::generate(0.02, 42);
    let lo = db.table("lineorder").unwrap();
    let (_, dates) = lo.column("lo_orderdate").unwrap().as_key().unwrap();
    let n_dates = db.table("date").unwrap().num_slots();
    // Year 1993 should get ~1/7 of the fact rows.
    let years = db.table("date").unwrap().column("d_year").unwrap().as_i32().unwrap();
    let in_1993 =
        dates.iter().filter(|&&d| years[d as usize] == 1993).count() as f64 / dates.len() as f64;
    assert!((in_1993 - 365.0 / n_dates as f64).abs() < 0.01, "1993 share {in_1993}");
}

#[test]
fn ssb_orders_group_lines_with_shared_attributes() {
    let db = ssb::generate(0.005, 42);
    let lo = db.table("lineorder").unwrap();
    let orderkeys = lo.column("lo_orderkey").unwrap().as_i64().unwrap();
    let (_, custs) = lo.column("lo_custkey").unwrap().as_key().unwrap();
    let (_, dates) = lo.column("lo_orderdate").unwrap().as_key().unwrap();
    let totals = lo.column("lo_ordtotalprice").unwrap().as_i64().unwrap();
    let lines = lo.column("lo_linenumber").unwrap().as_i32().unwrap();
    for i in 1..lo.num_slots() {
        if orderkeys[i] == orderkeys[i - 1] {
            assert_eq!(custs[i], custs[i - 1], "order lines share the customer");
            assert_eq!(dates[i], dates[i - 1], "order lines share the order date");
            assert_eq!(totals[i], totals[i - 1], "order lines share the total");
            assert_eq!(lines[i], lines[i - 1] + 1, "line numbers increment");
        } else {
            assert_eq!(lines[i], 1, "new order starts at line 1");
        }
    }
    // 1..=7 lines per order means orders ≈ fact / 4.
    let n_orders = orderkeys.iter().collect::<std::collections::HashSet<_>>().len();
    let ratio = lo.num_slots() as f64 / n_orders as f64;
    assert!((3.0..5.0).contains(&ratio), "avg lines per order {ratio}");
}

#[test]
fn tpch_fanouts_match_spec_ratios() {
    let db = tpch::generate(0.02, 5);
    let li = db.table("lineitem").unwrap().num_slots() as f64;
    let ord = db.table("orders").unwrap().num_slots() as f64;
    let cust = db.table("customer").unwrap().num_slots() as f64;
    assert!((li / ord - 4.0).abs() < 0.1, "lineitem:orders = {}", li / ord);
    assert!((ord / cust - 10.0).abs() < 0.1, "orders:customer = {}", ord / cust);
}

#[test]
fn tpcds_fact_to_returns_ratio() {
    let s = tpcds::TpcdsSizes::at(10.0);
    let ratio = s.store_sales as f64 / s.store_returns as f64;
    assert!((9.0..11.0).contains(&ratio), "sales:returns = {ratio}");
}

#[test]
fn workload_probe_hits_are_uniform_over_build() {
    let w = JoinWorkload::new(256, 100_000, 3);
    let mut hits = vec![0usize; 256];
    for &k in &w.probe_keys {
        hits[k as usize] += 1;
    }
    let expected = 100_000.0 / 256.0;
    for (k, &h) in hits.iter().enumerate() {
        assert!(
            (h as f64 - expected).abs() < expected * 0.5,
            "key {k} hit {h} times, expected ~{expected}"
        );
    }
}
