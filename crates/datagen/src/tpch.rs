//! A TPC-H subset: the snowflake chain the paper uses for its Q3 example
//! (Fig. 3) and the §6.1 join micro-benchmarks.
//!
//! Tables: `region(5) <- nation(25) <- customer <- orders <- lineitem`,
//! plus `part` and `supplier` referenced by `lineitem`. Cardinalities
//! follow TPC-H: `lineitem ≈ 6M × SF`, `orders = 1.5M × SF`,
//! `customer = 150k × SF`, `supplier = 10k × SF`, `part = 200k × SF`.
//! The snowflake makes `orders` a *large first-level dimension* — the case
//! where the paper's optimizer declines to build a predicate vector and
//! probes directly (§4.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use astore_core::expr::{CmpOp, MeasureExpr, Pred};
use astore_core::query::{Aggregate, OrderKey, Query};
use astore_storage::column::Column;
use astore_storage::dictionary::DictColumn;
use astore_storage::prelude::*;

use crate::ssb::NATIONS;

/// Row counts at a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchSizes {
    /// `lineitem` rows (≈ 6M × SF; exact count depends on order fan-out).
    pub lineitem: usize,
    /// `orders` rows.
    pub orders: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `supplier` rows.
    pub supplier: usize,
    /// `part` rows.
    pub part: usize,
}

impl TpchSizes {
    /// Sizes at scale factor `sf`.
    pub fn at(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        TpchSizes {
            lineitem: ((6_000_000.0 * sf) as usize).max(1),
            orders: ((1_500_000.0 * sf) as usize).max(100),
            customer: ((150_000.0 * sf) as usize).max(50),
            supplier: ((10_000.0 * sf) as usize).max(25),
            part: ((200_000.0 * sf) as usize).max(50),
        }
    }
}

/// Generates the TPC-H subset at scale factor `sf`.
pub fn generate(sf: f64, seed: u64) -> Database {
    let sizes = TpchSizes::at(sf);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();

    // region
    let regions: Vec<&str> = {
        let mut r: Vec<&str> = NATIONS.iter().map(|(_, r)| *r).collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    let region = Table::from_columns(
        "region",
        Schema::new(vec![ColumnDef::new("r_name", DataType::Dict)]),
        vec![Column::Dict(DictColumn::from_values(regions.clone()))],
    );
    db.add_table(region);

    // nation -> region
    let mut n_name = Vec::new();
    let mut n_regionkey = Vec::new();
    for (nat, reg) in NATIONS {
        n_name.push(nat.to_owned());
        n_regionkey.push(regions.iter().position(|r| *r == reg).unwrap() as Key);
    }
    let nation = Table::from_columns(
        "nation",
        Schema::new(vec![
            ColumnDef::new("n_name", DataType::Dict),
            ColumnDef::new("n_regionkey", DataType::Key { target: "region".into() }),
        ]),
        vec![
            Column::Dict(DictColumn::from_values(n_name)),
            Column::Key { target: "region".into(), keys: n_regionkey },
        ],
    );
    db.add_table(nation);

    // customer -> nation
    let mut c_nationkey = Vec::with_capacity(sizes.customer);
    let mut c_acctbal = Vec::with_capacity(sizes.customer);
    let mut c_mktsegment = Vec::with_capacity(sizes.customer);
    const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
    for _ in 0..sizes.customer {
        c_nationkey.push(rng.gen_range(0..25u32));
        c_acctbal.push(rng.gen_range(-999.99..9999.99));
        c_mktsegment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_owned());
    }
    let customer = Table::from_columns(
        "customer",
        Schema::new(vec![
            ColumnDef::new("c_nationkey", DataType::Key { target: "nation".into() }),
            ColumnDef::new("c_acctbal", DataType::F64),
            ColumnDef::new("c_mktsegment", DataType::Dict),
        ]),
        vec![
            Column::Key { target: "nation".into(), keys: c_nationkey },
            Column::F64(c_acctbal),
            Column::Dict(DictColumn::from_values(c_mktsegment)),
        ],
    );
    db.add_table(customer);

    // orders -> customer
    let mut o_custkey = Vec::with_capacity(sizes.orders);
    let mut o_price = Vec::with_capacity(sizes.orders);
    let mut o_orderdate = Vec::with_capacity(sizes.orders);
    for _ in 0..sizes.orders {
        o_custkey.push(rng.gen_range(0..sizes.customer as u32));
        o_price.push(rng.gen_range(100..500_000i64));
        o_orderdate.push(rng.gen_range(19_920_101..19_981_231i32));
    }
    let orders = Table::from_columns(
        "orders",
        Schema::new(vec![
            ColumnDef::new("o_custkey", DataType::Key { target: "customer".into() }),
            ColumnDef::new("o_price", DataType::I64),
            ColumnDef::new("o_orderdate", DataType::I32),
        ]),
        vec![
            Column::Key { target: "customer".into(), keys: o_custkey },
            Column::I64(o_price),
            Column::I32(o_orderdate),
        ],
    );
    db.add_table(orders);

    // supplier, part. Note: no supplier -> nation edge. The paper's Fig. 3
    // snowflake routes nation/region through the customer chain only; a
    // second edge would form a diamond and make "nation" ambiguous (the
    // join graph resolves reference paths by shortest AIR chain).
    let mut s_acctbal = Vec::with_capacity(sizes.supplier);
    let mut s_rating = Vec::with_capacity(sizes.supplier);
    for _ in 0..sizes.supplier {
        s_acctbal.push(rng.gen_range(-999.99..9999.99));
        s_rating.push(rng.gen_range(0..100i32));
    }
    let supplier = Table::from_columns(
        "supplier",
        Schema::new(vec![
            ColumnDef::new("s_acctbal", DataType::F64),
            ColumnDef::new("s_rating", DataType::I32),
        ]),
        vec![Column::F64(s_acctbal), Column::I32(s_rating)],
    );
    db.add_table(supplier);

    let mut p_size = Vec::with_capacity(sizes.part);
    let mut p_retail = Vec::with_capacity(sizes.part);
    for _ in 0..sizes.part {
        p_size.push(rng.gen_range(1..=50i32));
        p_retail.push(rng.gen_range(900..2_000i64));
    }
    let part = Table::from_columns(
        "part",
        Schema::new(vec![
            ColumnDef::new("p_size", DataType::I32),
            ColumnDef::new("p_retailprice", DataType::I64),
        ]),
        vec![Column::I32(p_size), Column::I64(p_retail)],
    );
    db.add_table(part);

    // lineitem -> {orders, part, supplier}
    let n = sizes.lineitem;
    let mut l_orderkey = Vec::with_capacity(n);
    let mut l_partkey = Vec::with_capacity(n);
    let mut l_suppkey = Vec::with_capacity(n);
    let mut l_quantity = Vec::with_capacity(n);
    let mut l_extendedprice = Vec::with_capacity(n);
    let mut l_discount = Vec::with_capacity(n);
    let mut l_tax = Vec::with_capacity(n);
    for _ in 0..n {
        l_orderkey.push(rng.gen_range(0..sizes.orders as u32));
        l_partkey.push(rng.gen_range(0..sizes.part as u32));
        l_suppkey.push(rng.gen_range(0..sizes.supplier as u32));
        l_quantity.push(rng.gen_range(1..=50i32));
        l_extendedprice.push(rng.gen_range(900.0..100_000.0f64));
        l_discount.push(rng.gen_range(0.0..=0.10f64));
        l_tax.push(rng.gen_range(0.0..=0.08f64));
    }
    let lineitem = Table::from_columns(
        "lineitem",
        Schema::new(vec![
            ColumnDef::new("l_orderkey", DataType::Key { target: "orders".into() }),
            ColumnDef::new("l_partkey", DataType::Key { target: "part".into() }),
            ColumnDef::new("l_suppkey", DataType::Key { target: "supplier".into() }),
            ColumnDef::new("l_quantity", DataType::I32),
            ColumnDef::new("l_extendedprice", DataType::F64),
            ColumnDef::new("l_discount", DataType::F64),
            ColumnDef::new("l_tax", DataType::F64),
        ]),
        vec![
            Column::Key { target: "orders".into(), keys: l_orderkey },
            Column::Key { target: "part".into(), keys: l_partkey },
            Column::Key { target: "supplier".into(), keys: l_suppkey },
            Column::I32(l_quantity),
            Column::F64(l_extendedprice),
            Column::F64(l_discount),
            Column::F64(l_tax),
        ],
    );
    db.add_table(lineitem);
    db
}

/// The paper's adapted TPC-H Q3 (its snowflake example, Fig. 3):
///
/// ```sql
/// SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
/// FROM customer, lineitem, orders, nation, region
/// WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
///   AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey
///   AND r_name = 'ASIA' AND o_price >= 800
/// GROUP BY n_name ORDER BY revenue DESC;
/// ```
pub fn paper_q3() -> Query {
    Query::new()
        .root("lineitem")
        .filter("region", Pred::eq("r_name", "ASIA"))
        .filter("orders", Pred::cmp("o_price", CmpOp::Ge, 800))
        .group("nation", "n_name")
        .agg(Aggregate::sum(
            MeasureExpr::Mul(
                Box::new(MeasureExpr::col("l_extendedprice")),
                Box::new(MeasureExpr::Sub(
                    Box::new(MeasureExpr::Const(1.0)),
                    Box::new(MeasureExpr::col("l_discount")),
                )),
            ),
            "revenue",
        ))
        .order(OrderKey::desc("revenue"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};
    use astore_core::graph::JoinGraph;

    #[test]
    fn sizes_scale() {
        let s = TpchSizes::at(0.01);
        assert_eq!(s.lineitem, 60_000);
        assert_eq!(s.orders, 15_000);
        assert_eq!(s.customer, 1_500);
    }

    #[test]
    fn schema_forms_the_paper_snowflake() {
        let db = generate(0.001, 1);
        assert!(db.validate_references().is_empty());
        let g = JoinGraph::build(&db);
        assert_eq!(g.roots(), &["lineitem".to_string()]);
        let p = g.path("lineitem", "region").unwrap();
        let chain: Vec<&str> = p.steps.iter().map(|s| s.to_table.as_str()).collect();
        assert_eq!(chain, vec!["orders", "customer", "nation", "region"]);
    }

    #[test]
    fn paper_q3_runs_and_groups_by_asian_nations() {
        let db = generate(0.002, 11);
        let out = execute(&db, &paper_q3(), &ExecOptions::default()).unwrap();
        assert!(!out.result.is_empty());
        assert!(out.result.rows.len() <= 5, "at most the 5 ASIA nations");
        // Revenue-descending order.
        let revs: Vec<f64> = out
            .result
            .rows
            .iter()
            .map(|r| match &r[1] {
                Value::Float(f) => *f,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(revs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn orders_is_a_large_first_level_dimension() {
        let db = generate(0.01, 3);
        let orders = db.table("orders").unwrap().num_slots();
        let customers = db.table("customer").unwrap().num_slots();
        assert!(orders == 10 * customers);
    }

    #[test]
    fn deterministic() {
        let a = generate(0.001, 5);
        let b = generate(0.001, 5);
        assert_eq!(
            a.table("lineitem").unwrap().column("l_orderkey").unwrap().as_key().unwrap().1,
            b.table("lineitem").unwrap().column("l_orderkey").unwrap().as_key().unwrap().1
        );
    }
}
