//! A TPC-DS subset: the `store_sales` fact table and the nine dimensions
//! the paper's Table 2 join micro-benchmark exercises.
//!
//! Cardinalities reproduce the SF-100 ratios of Table 2, scaled by `sf /
//! 100`: `store_sales` 287,997,024; `store` 402; `date_dim` 73,049;
//! `time_dim` 86,400; `household_demographics` 7,200;
//! `customer_demographics` 1,920,800; `customer` 2,000,000; `item`
//! 204,000; `promotion` 1,000; `store_returns` 28,795,080. Fixed-size
//! dimensions (`date_dim`, `time_dim`, demographics, `promotion`) keep
//! their nominal sizes regardless of SF, as in TPC-DS.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use astore_storage::column::Column;
use astore_storage::prelude::*;

/// Row counts for the subset at a scale factor (`sf` in TPC-H/SSB units;
/// the paper's Table 2 uses SF = 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcdsSizes {
    /// `store_sales` rows.
    pub store_sales: usize,
    /// `store` rows.
    pub store: usize,
    /// `date_dim` rows (fixed).
    pub date_dim: usize,
    /// `time_dim` rows (fixed).
    pub time_dim: usize,
    /// `household_demographics` rows (fixed).
    pub household_demographics: usize,
    /// `customer_demographics` rows (fixed).
    pub customer_demographics: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `item` rows.
    pub item: usize,
    /// `promotion` rows (fixed).
    pub promotion: usize,
    /// `store_returns` rows (~10% of sales).
    pub store_returns: usize,
}

impl TpcdsSizes {
    /// Sizes at scale factor `sf`.
    pub fn at(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        let frac = sf / 100.0;
        TpcdsSizes {
            store_sales: ((287_997_024.0 * frac) as usize).max(1_000),
            store: ((402.0 * frac) as usize).max(10),
            date_dim: 73_049,
            time_dim: 86_400,
            household_demographics: 7_200,
            customer_demographics: ((1_920_800.0 * frac) as usize).max(500),
            customer: ((2_000_000.0 * frac) as usize).max(500),
            item: ((204_000.0 * frac) as usize).max(200),
            promotion: 1_000,
            store_returns: ((28_795_080.0 * frac) as usize).max(100),
        }
    }
}

fn payload_dim(name: &str, rows: usize, rng: &mut SmallRng) -> Table {
    let payload: Vec<i32> = (0..rows).map(|_| rng.gen_range(0..1_000_000)).collect();
    Table::from_columns(
        name,
        Schema::new(vec![ColumnDef::new("payload", DataType::I32)]),
        vec![Column::I32(payload)],
    )
}

/// Generates the TPC-DS subset at scale factor `sf`. Every dimension
/// carries an `i32` payload column (what the join micro-benchmark
/// materializes); `store_sales` carries one AIR column per dimension plus
/// `ss_net_paid`.
pub fn generate(sf: f64, seed: u64) -> Database {
    let sizes = TpcdsSizes::at(sf);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();

    let dims: [(&str, usize); 9] = [
        ("store", sizes.store),
        ("date_dim", sizes.date_dim),
        ("time_dim", sizes.time_dim),
        ("household_demographics", sizes.household_demographics),
        ("customer_demographics", sizes.customer_demographics),
        ("customer", sizes.customer),
        ("item", sizes.item),
        ("promotion", sizes.promotion),
        ("store_returns", sizes.store_returns),
    ];
    for (name, rows) in dims {
        db.add_table(payload_dim(name, rows, &mut rng));
    }

    let n = sizes.store_sales;
    let mut cols: Vec<Column> = Vec::new();
    let mut defs: Vec<ColumnDef> = Vec::new();
    for (name, rows) in dims {
        let fk_name = format!("ss_{name}_sk");
        let keys: Vec<Key> = (0..n).map(|_| rng.gen_range(0..rows as u32)).collect();
        defs.push(ColumnDef::new(fk_name, DataType::Key { target: name.into() }));
        cols.push(Column::Key { target: name.into(), keys });
    }
    defs.push(ColumnDef::new("ss_net_paid", DataType::I64));
    cols.push(Column::I64((0..n).map(|_| rng.gen_range(0..20_000i64)).collect()));
    db.add_table(Table::from_columns("store_sales", Schema::new(defs), cols));
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::graph::JoinGraph;

    #[test]
    fn sf100_ratios_reproduced() {
        let s = TpcdsSizes::at(100.0);
        assert_eq!(s.store_sales, 287_997_024);
        assert_eq!(s.store, 402);
        assert_eq!(s.customer_demographics, 1_920_800);
        assert_eq!(s.store_returns, 28_795_080);
    }

    #[test]
    fn fixed_dimensions_do_not_scale() {
        let s = TpcdsSizes::at(1.0);
        assert_eq!(s.date_dim, 73_049);
        assert_eq!(s.time_dim, 86_400);
        assert_eq!(s.household_demographics, 7_200);
        assert_eq!(s.promotion, 1_000);
    }

    #[test]
    fn generated_star_is_sound() {
        let db = generate(0.05, 9);
        assert!(db.validate_references().is_empty());
        let g = JoinGraph::build(&db);
        assert!(g.roots().contains(&"store_sales".to_string()));
        assert_eq!(g.leaves_of("store_sales").len(), 9);
    }

    #[test]
    fn fact_has_nine_air_columns() {
        let db = generate(0.05, 9);
        let ss = db.table("store_sales").unwrap();
        let air_cols = ss.columns().filter(|(_, c)| c.as_key().is_some()).count();
        assert_eq!(air_cols, 9);
    }
}
