//! The synthetic join workloads of Balkesen et al. (ICDE 2013) — the last
//! two rows of the paper's Table 2.
//!
//! *Workload A*: a 16:1 probe-to-build ratio (the paper runs
//! 268,435,456 : 16,777,216). *Workload B*: equal-sized sides
//! (128,000,000 : 128,000,000). Build keys are a permutation of
//! `0..n_build` (dense primary keys), probe keys are uniform foreign keys —
//! every probe matches exactly once.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A PK-FK join workload: a build side of `(key, payload)` pairs and a
/// probe (foreign key) column.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Build-side keys (a permutation of `0..len`).
    pub build_keys: Vec<u32>,
    /// Build-side payloads (`payload[i] = key[i]`, the microbenchmark
    /// convention, so result sums are verifiable).
    pub build_payloads: Vec<i64>,
    /// Probe-side foreign keys.
    pub probe_keys: Vec<u32>,
}

impl JoinWorkload {
    /// Generates a workload with `n_build` build rows and `n_probe` probe
    /// rows.
    pub fn new(n_build: usize, n_probe: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut build_keys: Vec<u32> = (0..n_build as u32).collect();
        build_keys.shuffle(&mut rng);
        let build_payloads: Vec<i64> = build_keys.iter().map(|&k| i64::from(k)).collect();
        let probe_keys: Vec<u32> = (0..n_probe).map(|_| rng.gen_range(0..n_build as u32)).collect();
        JoinWorkload { build_keys, build_payloads, probe_keys }
    }

    /// Workload A of \[7\]: probe:build = 16:1 (full size 256M:16M, scaled by
    /// `scale`).
    pub fn workload_a(scale: f64, seed: u64) -> Self {
        let n_build = ((16_777_216.0 * scale) as usize).max(16);
        JoinWorkload::new(n_build, n_build * 16, seed)
    }

    /// Workload B of \[7\]: equal sides (full size 128M:128M, scaled).
    pub fn workload_b(scale: f64, seed: u64) -> Self {
        let n = ((128_000_000.0 * scale) as usize).max(16);
        JoinWorkload::new(n, n, seed)
    }

    /// The AIR view of the probe side: because build payload `p` lives at
    /// build *position* `pos(key)`, the equivalent AIR column maps each
    /// probe key to the position of its build match. (In an A-Store schema
    /// the foreign keys would be stored this way from the start.)
    pub fn air_probe_keys(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.build_keys.len()];
        for (i, &k) in self.build_keys.iter().enumerate() {
            pos[k as usize] = i as u32;
        }
        self.probe_keys.iter().map(|&k| pos[k as usize]).collect()
    }

    /// The expected `(matches, payload_sum)` of the PK-FK join.
    pub fn expected(&self) -> (u64, i64) {
        let sum = self.probe_keys.iter().map(|&k| i64::from(k)).sum();
        (self.probe_keys.len() as u64, sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_a_permutation() {
        let w = JoinWorkload::new(1000, 100, 1);
        let mut sorted = w.build_keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn probes_always_match() {
        let w = JoinWorkload::new(64, 1000, 2);
        assert!(w.probe_keys.iter().all(|&k| k < 64));
        let (m, _) = w.expected();
        assert_eq!(m, 1000);
    }

    #[test]
    fn air_keys_point_at_build_positions() {
        let w = JoinWorkload::new(128, 500, 3);
        let air = w.air_probe_keys();
        for (i, &pos) in air.iter().enumerate() {
            assert_eq!(w.build_keys[pos as usize], w.probe_keys[i]);
        }
    }

    #[test]
    fn workload_ratios() {
        let a = JoinWorkload::workload_a(0.001, 4);
        assert_eq!(a.probe_keys.len(), a.build_keys.len() * 16);
        let b = JoinWorkload::workload_b(0.0001, 4);
        assert_eq!(b.probe_keys.len(), b.build_keys.len());
    }

    #[test]
    fn expected_sum_matches_manual_join() {
        let w = JoinWorkload::new(50, 200, 5);
        // Manual nested-loop check on this tiny input.
        let mut matches = 0u64;
        let mut sum = 0i64;
        for &pk in &w.probe_keys {
            for (i, &bk) in w.build_keys.iter().enumerate() {
                if bk == pk {
                    matches += 1;
                    sum += w.build_payloads[i];
                }
            }
        }
        assert_eq!((matches, sum), w.expected());
    }
}
