//! Generate-once, persist, reload: snapshot-backed dataset caching.
//!
//! Synthetic data generation dominates cold-start time for every benchmark
//! harness and server boot (SSB SF 1 is millions of rows). This module
//! memoizes a generated [`Database`] as an `astore-persist` snapshot keyed
//! by `(dataset, scale factor, seed)`, so the second and every later run
//! loads columnar bytes from disk instead of regenerating — the same
//! treatment the FusionLab-style pipelines give their generated SSB data.
//!
//! A corrupt, truncated or version-stale cache file is never trusted: it is
//! detected by the snapshot checksum/version checks, regenerated, and
//! overwritten.

use std::path::{Path, PathBuf};

use astore_storage::catalog::Database;

/// Generator revision folded into cache names: bump whenever a generator's
/// output changes for the same `(sf, seed)` — otherwise a stale cache from
/// an older build would silently stand in for the new distribution.
/// Revision 2: `lineorder` rows are generated in date-arrival order.
pub const GEN_REVISION: u32 = 2;

/// The cache file for a `(dataset, sf, seed)` triple inside `dir`.
///
/// The scale factor is embedded with its `.` replaced by `_` so the name
/// stays portable (`ssb-g2-sf0_01-seed42.snapshot`).
pub fn cache_path(dir: impl AsRef<Path>, dataset: &str, sf: f64, seed: u64) -> PathBuf {
    let sf_tag = format!("{sf}").replace('.', "_");
    dir.as_ref().join(format!("{dataset}-g{GEN_REVISION}-sf{sf_tag}-seed{seed}.snapshot"))
}

/// Loads the cached snapshot for `(dataset, sf, seed)` from `dir`, or
/// generates the dataset with `generate`, persists it, and returns it.
/// Returns the database and `true` if it was served from the cache.
pub fn generate_cached(
    dir: impl AsRef<Path>,
    dataset: &str,
    sf: f64,
    seed: u64,
    generate: impl FnOnce(f64, u64) -> Database,
) -> std::io::Result<(Database, bool)> {
    let path = cache_path(&dir, dataset, sf, seed);
    if path.is_file() {
        match astore_persist::load_snapshot(&path) {
            Ok(db) => return Ok((db, true)),
            Err(e) => {
                // Stale or damaged cache: fall through to regeneration.
                eprintln!("dataset cache {} unusable ({e}); regenerating", path.display());
            }
        }
    }
    std::fs::create_dir_all(dir.as_ref())?;
    let db = generate(sf, seed);
    astore_persist::save_snapshot(&db, &path)
        .map_err(|e| std::io::Error::other(format!("could not persist dataset cache: {e}")))?;
    Ok((db, false))
}

/// [`generate_cached`] specialised to the named built-in generators
/// (`"ssb"` or `"tpch"`).
pub fn generate_named_cached(
    dir: impl AsRef<Path>,
    dataset: &str,
    sf: f64,
    seed: u64,
) -> std::io::Result<(Database, bool)> {
    match dataset {
        "ssb" => generate_cached(dir, dataset, sf, seed, crate::ssb::generate),
        "tpch" => generate_cached(dir, dataset, sf, seed, crate::tpch::generate),
        other => Err(std::io::Error::other(format!("unknown dataset {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::types::RowId;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("astore-cached-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same(a: &Database, b: &Database) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            assert_eq!(ta.num_slots(), tb.num_slots(), "{name}");
            for row in 0..ta.num_slots() as RowId {
                assert_eq!(ta.row(row), tb.row(row), "{name}[{row}]");
            }
        }
    }

    #[test]
    fn second_call_hits_the_cache_with_identical_data() {
        let dir = tmpdir("hit");
        let (first, cached) = generate_named_cached(&dir, "ssb", 0.001, 42).unwrap();
        assert!(!cached, "first call generates");
        let (second, cached) = generate_named_cached(&dir, "ssb", 0.001, 42).unwrap();
        assert!(cached, "second call loads the snapshot");
        assert_same(&first, &second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn different_parameters_get_different_cache_entries() {
        let dir = tmpdir("keys");
        assert_ne!(cache_path(&dir, "ssb", 0.01, 42), cache_path(&dir, "ssb", 0.02, 42));
        assert_ne!(cache_path(&dir, "ssb", 0.01, 42), cache_path(&dir, "ssb", 0.01, 7));
        assert_ne!(cache_path(&dir, "ssb", 0.01, 42), cache_path(&dir, "tpch", 0.01, 42));
    }

    #[test]
    fn corrupt_cache_is_regenerated() {
        let dir = tmpdir("corrupt");
        let (first, _) = generate_named_cached(&dir, "ssb", 0.001, 42).unwrap();
        let path = cache_path(&dir, "ssb", 0.001, 42);
        // Truncate the cache file mid-byte-stream.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (again, cached) = generate_named_cached(&dir, "ssb", 0.001, 42).unwrap();
        assert!(!cached, "corrupt cache must regenerate");
        assert_same(&first, &again);
        // And the rewritten cache now loads.
        let (_, cached) = generate_named_cached(&dir, "ssb", 0.001, 42).unwrap();
        assert!(cached);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        assert!(generate_named_cached(tmpdir("bad"), "nope", 0.001, 42).is_err());
    }
}
