//! The Star Schema Benchmark: schema, deterministic generator, and the
//! 13-query catalog (O'Neil et al. \[4\]; the paper's primary workload).
//!
//! Layout follows SSB dbgen: a `lineorder` fact table referencing four
//! dimensions (`date`, `customer`, `supplier`, `part`). Foreign keys are
//! generated directly as array index references. Value distributions match
//! the ones the SSB queries' published selectivities rely on (uniform
//! quantities/discounts, the 5-region × 25-nation geography, the
//! MFGR#-structured part hierarchy, a real 1992–1998 calendar).
//!
//! Scale: `lineorder` has `6,000,000 × SF` rows, `customer` `30,000 × SF`,
//! `supplier` `2,000 × SF`, `part` `200,000 × (1 + ⌊log2 SF⌋)` (floored at
//! 2,000 for sub-unit SF), `date` always 2,557 rows (the real 1992–1998 calendar).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use astore_core::expr::{CmpOp, MeasureExpr, Pred};
use astore_core::query::{Aggregate, OrderKey, Query};
use astore_storage::column::Column;
use astore_storage::dictionary::DictColumn;
use astore_storage::prelude::*;
use astore_storage::strings::StrColumn;

/// The 25 TPC-H nations, each with its region.
pub const NATIONS: [(&str, &str); 25] = [
    ("ALGERIA", "AFRICA"),
    ("ETHIOPIA", "AFRICA"),
    ("KENYA", "AFRICA"),
    ("MOROCCO", "AFRICA"),
    ("MOZAMBIQUE", "AFRICA"),
    ("ARGENTINA", "AMERICA"),
    ("BRAZIL", "AMERICA"),
    ("CANADA", "AMERICA"),
    ("PERU", "AMERICA"),
    ("UNITED STATES", "AMERICA"),
    ("CHINA", "ASIA"),
    ("INDIA", "ASIA"),
    ("INDONESIA", "ASIA"),
    ("JAPAN", "ASIA"),
    ("VIETNAM", "ASIA"),
    ("FRANCE", "EUROPE"),
    ("GERMANY", "EUROPE"),
    ("ROMANIA", "EUROPE"),
    ("RUSSIA", "EUROPE"),
    ("UNITED KINGDOM", "EUROPE"),
    ("EGYPT", "MIDDLE EAST"),
    ("IRAN", "MIDDLE EAST"),
    ("IRAQ", "MIDDLE EAST"),
    ("JORDAN", "MIDDLE EAST"),
    ("SAUDI ARABIA", "MIDDLE EAST"),
];

/// SSB city naming: the nation name space-padded/truncated to 9 characters
/// plus a digit 0–9 (hence `UNITED KI1` for the United Kingdom).
pub fn city_name(nation: &str, digit: u32) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{digit}")
}

const MKT_SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const COLORS: [&str; 16] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
];
const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"];
const TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BRUSHED",
    "ECONOMY BURNISHED",
    "PROMO ANODIZED",
];
const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];
const MONTH_ABBR: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
const WEEKDAYS: [&str; 7] =
    ["Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: usize) -> u32 {
    match month {
        1 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        3 | 5 | 8 | 10 => 30,
        _ => 31,
    }
}

/// Row counts for each SSB table at a given scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsbSizes {
    /// `lineorder` rows.
    pub lineorder: usize,
    /// `customer` rows.
    pub customer: usize,
    /// `supplier` rows.
    pub supplier: usize,
    /// `part` rows.
    pub part: usize,
    /// `date` rows (constant: the full 1992-01-01 … 1998-12-31 calendar,
    /// 2,557 days — SSB documentation rounds this to 2,556).
    pub date: usize,
}

impl SsbSizes {
    /// Sizes at scale factor `sf`.
    pub fn at(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        let part = if sf >= 1.0 {
            200_000 * (1 + sf.log2().floor() as usize)
        } else {
            ((200_000.0 * sf) as usize).max(2_000)
        };
        SsbSizes {
            lineorder: ((6_000_000.0 * sf) as usize).max(1),
            customer: ((30_000.0 * sf) as usize).max(100),
            supplier: ((2_000.0 * sf) as usize).max(50),
            part,
            date: 2_557,
        }
    }
}

/// Generates the full SSB database at scale factor `sf`, deterministically
/// from `seed`.
pub fn generate(sf: f64, seed: u64) -> Database {
    let sizes = SsbSizes::at(sf);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.add_table(gen_date());
    db.add_table(gen_customer(sizes.customer, &mut rng));
    db.add_table(gen_supplier(sizes.supplier, &mut rng));
    db.add_table(gen_part(sizes.part, &mut rng));
    db.add_table(gen_lineorder(sizes, &mut rng));
    db
}

/// Generates the same database as [`generate`] — identical rows, identical
/// dictionary code assignment, same `seed` → same bytes — but built for
/// large scale factors (SF ≥ 1, millions of fact rows):
///
/// - fact dictionary columns (`lo_orderpriority`, `lo_shipmode`) are
///   generated directly as interned codes instead of one owned `String`
///   per row, skipping the hundreds of megabytes of transient string heap
///   [`generate`] would allocate and immediately re-intern at SF 1;
/// - every table is sealed on the way out, so the database arrives with
///   its per-segment compressed encodings already built and scan-ready —
///   booting SF 1 never holds an uncompressed intermediate beyond the
///   resident column arrays themselves.
pub fn generate_streaming(sf: f64, seed: u64) -> Database {
    let sizes = SsbSizes::at(sf);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.add_table(gen_date());
    db.add_table(gen_customer(sizes.customer, &mut rng));
    db.add_table(gen_supplier(sizes.supplier, &mut rng));
    db.add_table(gen_part(sizes.part, &mut rng));
    db.add_table(gen_lineorder_streaming(sizes, &mut rng));
    for name in ["date", "customer", "supplier", "part", "lineorder"] {
        db.table_mut(name).unwrap().seal_segments();
    }
    db
}

/// The 2,557-row date dimension covering 1992-01-01 … 1998-12-31.
pub fn gen_date() -> Table {
    let mut datekey = Vec::new();
    let mut date_str = StrColumn::new();
    let mut dayofweek = Vec::new();
    let mut month = Vec::new();
    let mut year = Vec::new();
    let mut yearmonthnum = Vec::new();
    let mut yearmonth = Vec::new();
    let mut daynuminweek = Vec::new();
    let mut daynuminmonth = Vec::new();
    let mut daynuminyear = Vec::new();
    let mut monthnuminyear = Vec::new();
    let mut weeknuminyear = Vec::new();
    let mut sellingseason = Vec::new();
    let mut lastdayinweekfl = Vec::new();
    let mut holidayfl = Vec::new();
    let mut weekdayfl = Vec::new();

    // 1992-01-01 was a Wednesday (day-of-week index 3 with Sunday = 0).
    let mut dow = 3usize;
    for y in 1992..=1998 {
        let mut doy = 1i32;
        for m in 0..12usize {
            for d in 1..=days_in_month(y, m) {
                datekey.push(y * 10_000 + (m as i32 + 1) * 100 + d as i32);
                date_str.push(&format!("{} {}, {}", MONTH_NAMES[m], d, y));
                dayofweek.push(WEEKDAYS[dow].to_owned());
                month.push(MONTH_NAMES[m].to_owned());
                year.push(y);
                yearmonthnum.push(y * 100 + m as i32 + 1);
                yearmonth.push(format!("{}{}", MONTH_ABBR[m], y));
                daynuminweek.push(dow as i32 + 1);
                daynuminmonth.push(d as i32);
                daynuminyear.push(doy);
                monthnuminyear.push(m as i32 + 1);
                weeknuminyear.push((doy - 1) / 7 + 1);
                sellingseason.push(
                    match m {
                        11 | 0 => "Christmas",
                        1 | 2 => "Winter",
                        3 | 4 => "Spring",
                        5..=7 => "Summer",
                        _ => "Fall",
                    }
                    .to_owned(),
                );
                lastdayinweekfl.push(i32::from(dow == 6));
                holidayfl.push(i32::from((m == 11 && d == 25) || (m == 0 && d == 1)));
                weekdayfl.push(i32::from((1..=5).contains(&dow)));
                dow = (dow + 1) % 7;
                doy += 1;
            }
        }
    }

    let schema = Schema::new(vec![
        ColumnDef::new("d_datekey", DataType::I32),
        ColumnDef::new("d_date", DataType::Str),
        ColumnDef::new("d_dayofweek", DataType::Dict),
        ColumnDef::new("d_month", DataType::Dict),
        ColumnDef::new("d_year", DataType::I32),
        ColumnDef::new("d_yearmonthnum", DataType::I32),
        ColumnDef::new("d_yearmonth", DataType::Dict),
        ColumnDef::new("d_daynuminweek", DataType::I32),
        ColumnDef::new("d_daynuminmonth", DataType::I32),
        ColumnDef::new("d_daynuminyear", DataType::I32),
        ColumnDef::new("d_monthnuminyear", DataType::I32),
        ColumnDef::new("d_weeknuminyear", DataType::I32),
        ColumnDef::new("d_sellingseason", DataType::Dict),
        ColumnDef::new("d_lastdayinweekfl", DataType::I32),
        ColumnDef::new("d_holidayfl", DataType::I32),
        ColumnDef::new("d_weekdayfl", DataType::I32),
    ]);
    Table::from_columns(
        "date",
        schema,
        vec![
            Column::I32(datekey),
            Column::Str(date_str),
            Column::Dict(DictColumn::from_values(dayofweek)),
            Column::Dict(DictColumn::from_values(month)),
            Column::I32(year),
            Column::I32(yearmonthnum),
            Column::Dict(DictColumn::from_values(yearmonth)),
            Column::I32(daynuminweek),
            Column::I32(daynuminmonth),
            Column::I32(daynuminyear),
            Column::I32(monthnuminyear),
            Column::I32(weeknuminyear),
            Column::Dict(DictColumn::from_values(sellingseason)),
            Column::I32(lastdayinweekfl),
            Column::I32(holidayfl),
            Column::I32(weekdayfl),
        ],
    )
}

fn gen_customer(n: usize, rng: &mut SmallRng) -> Table {
    let mut name = StrColumn::new();
    let mut address = StrColumn::new();
    let mut city = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut phone = StrColumn::new();
    let mut mkt = Vec::with_capacity(n);
    for i in 0..n {
        let nk = rng.gen_range(0..NATIONS.len());
        let (nat, reg) = NATIONS[nk];
        name.push(&format!("Customer#{i:09}"));
        address.push(&format!("addr-{:x}", rng.gen::<u32>()));
        city.push(city_name(nat, rng.gen_range(0..10)));
        nation.push(nat.to_owned());
        region.push(reg.to_owned());
        phone.push(&format!(
            "{:02}-{:03}-{:03}-{:04}",
            10 + nk,
            rng.gen_range(100..1000),
            rng.gen_range(100..1000),
            rng.gen_range(1000..10000)
        ));
        mkt.push(MKT_SEGMENTS[rng.gen_range(0..MKT_SEGMENTS.len())].to_owned());
    }
    let schema = Schema::new(vec![
        ColumnDef::new("c_name", DataType::Str),
        ColumnDef::new("c_address", DataType::Str),
        ColumnDef::new("c_city", DataType::Dict),
        ColumnDef::new("c_nation", DataType::Dict),
        ColumnDef::new("c_region", DataType::Dict),
        ColumnDef::new("c_phone", DataType::Str),
        ColumnDef::new("c_mktsegment", DataType::Dict),
    ]);
    Table::from_columns(
        "customer",
        schema,
        vec![
            Column::Str(name),
            Column::Str(address),
            Column::Dict(DictColumn::from_values(city)),
            Column::Dict(DictColumn::from_values(nation)),
            Column::Dict(DictColumn::from_values(region)),
            Column::Str(phone),
            Column::Dict(DictColumn::from_values(mkt)),
        ],
    )
}

fn gen_supplier(n: usize, rng: &mut SmallRng) -> Table {
    let mut name = StrColumn::new();
    let mut address = StrColumn::new();
    let mut city = Vec::with_capacity(n);
    let mut nation = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    let mut phone = StrColumn::new();
    for i in 0..n {
        let nk = rng.gen_range(0..NATIONS.len());
        let (nat, reg) = NATIONS[nk];
        name.push(&format!("Supplier#{i:09}"));
        address.push(&format!("saddr-{:x}", rng.gen::<u32>()));
        city.push(city_name(nat, rng.gen_range(0..10)));
        nation.push(nat.to_owned());
        region.push(reg.to_owned());
        phone.push(&format!(
            "{:02}-{:03}-{:03}-{:04}",
            10 + nk,
            rng.gen_range(100..1000),
            rng.gen_range(100..1000),
            rng.gen_range(1000..10000)
        ));
    }
    let schema = Schema::new(vec![
        ColumnDef::new("s_name", DataType::Str),
        ColumnDef::new("s_address", DataType::Str),
        ColumnDef::new("s_city", DataType::Dict),
        ColumnDef::new("s_nation", DataType::Dict),
        ColumnDef::new("s_region", DataType::Dict),
        ColumnDef::new("s_phone", DataType::Str),
    ]);
    Table::from_columns(
        "supplier",
        schema,
        vec![
            Column::Str(name),
            Column::Str(address),
            Column::Dict(DictColumn::from_values(city)),
            Column::Dict(DictColumn::from_values(nation)),
            Column::Dict(DictColumn::from_values(region)),
            Column::Str(phone),
        ],
    )
}

fn gen_part(n: usize, rng: &mut SmallRng) -> Table {
    let mut name = Vec::with_capacity(n);
    let mut mfgr = Vec::with_capacity(n);
    let mut category = Vec::with_capacity(n);
    let mut brand1 = Vec::with_capacity(n);
    let mut color = Vec::with_capacity(n);
    let mut ptype = Vec::with_capacity(n);
    let mut size = Vec::with_capacity(n);
    let mut container = Vec::with_capacity(n);
    for _ in 0..n {
        let m = rng.gen_range(1..=5);
        let c = rng.gen_range(1..=5);
        let b = rng.gen_range(1..=40);
        let col1 = COLORS[rng.gen_range(0..COLORS.len())];
        let col2 = COLORS[rng.gen_range(0..COLORS.len())];
        name.push(format!("{col1} {col2}"));
        mfgr.push(format!("MFGR#{m}"));
        category.push(format!("MFGR#{m}{c}"));
        brand1.push(format!("MFGR#{m}{c}{b:02}"));
        color.push(col1.to_owned());
        ptype.push(TYPES[rng.gen_range(0..TYPES.len())].to_owned());
        size.push(rng.gen_range(1..=50));
        container.push(CONTAINERS[rng.gen_range(0..CONTAINERS.len())].to_owned());
    }
    let schema = Schema::new(vec![
        ColumnDef::new("p_name", DataType::Dict),
        ColumnDef::new("p_mfgr", DataType::Dict),
        ColumnDef::new("p_category", DataType::Dict),
        ColumnDef::new("p_brand1", DataType::Dict),
        ColumnDef::new("p_color", DataType::Dict),
        ColumnDef::new("p_type", DataType::Dict),
        ColumnDef::new("p_size", DataType::I32),
        ColumnDef::new("p_container", DataType::Dict),
    ]);
    Table::from_columns(
        "part",
        schema,
        vec![
            Column::Dict(DictColumn::from_values(name)),
            Column::Dict(DictColumn::from_values(mfgr)),
            Column::Dict(DictColumn::from_values(category)),
            Column::Dict(DictColumn::from_values(brand1)),
            Column::Dict(DictColumn::from_values(color)),
            Column::Dict(DictColumn::from_values(ptype)),
            Column::I32(size),
            Column::Dict(DictColumn::from_values(container)),
        ],
    )
}

fn gen_lineorder(sizes: SsbSizes, rng: &mut SmallRng) -> Table {
    let n = sizes.lineorder;
    let mut orderkey = Vec::with_capacity(n);
    let mut linenumber = Vec::with_capacity(n);
    let mut custkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut orderdate = Vec::with_capacity(n);
    let mut orderpriority = Vec::with_capacity(n);
    let mut shippriority = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut ordtotalprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut commitdate = Vec::with_capacity(n);
    let mut shipmode = Vec::with_capacity(n);

    let mut i = 0usize;
    let mut order = 0i64;
    while i < n {
        order += 1;
        let lines = rng.gen_range(1..=7usize).min(n - i);
        // Orders arrive in (roughly) chronological sequence: the order date
        // advances linearly with the order's position in the table, with a
        // ±30-day entry jitter. This is how operational fact tables
        // actually fill up (append-in-arrival-order), and the physical
        // date clustering it produces is what makes per-segment zone maps
        // prune the date-selective SSB flights (Q1.x) instead of scanning
        // everything. Marginal distributions stay uniform over the
        // calendar, so published SSB selectivities are unaffected.
        let base = (i as u64 * sizes.date as u64 / n.max(1) as u64) as i64;
        let odate = (base + rng.gen_range(-30..=30i64)).clamp(0, sizes.date as i64 - 1) as u32;
        let ck = rng.gen_range(0..sizes.customer as u32);
        let prio = PRIORITIES[rng.gen_range(0..PRIORITIES.len())];
        let mut total = 0i64;
        let start = i;
        for l in 0..lines {
            let q = rng.gen_range(1..=50i32);
            let price_base = rng.gen_range(900..=1_109i64);
            let eprice = (i64::from(q) * price_base).min(55_450);
            let disc = rng.gen_range(0..=10i32);
            let rev = eprice * i64::from(100 - disc) / 100;
            total += eprice;
            orderkey.push(order);
            linenumber.push(l as i32 + 1);
            custkey.push(ck);
            partkey.push(rng.gen_range(0..sizes.part as u32));
            suppkey.push(rng.gen_range(0..sizes.supplier as u32));
            orderdate.push(odate);
            orderpriority.push(prio.to_owned());
            shippriority.push(0i32);
            quantity.push(q);
            extendedprice.push(eprice);
            discount.push(disc);
            revenue.push(rev);
            supplycost.push(price_base * 6 / 10);
            tax.push(rng.gen_range(0..=8i32));
            commitdate.push((odate + rng.gen_range(30..=90u32)).min(sizes.date as u32 - 1));
            shipmode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_owned());
            i += 1;
        }
        for _ in start..i {
            ordtotalprice.push(total);
        }
    }

    let schema = Schema::new(vec![
        ColumnDef::new("lo_orderkey", DataType::I64),
        ColumnDef::new("lo_linenumber", DataType::I32),
        ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
        ColumnDef::new("lo_partkey", DataType::Key { target: "part".into() }),
        ColumnDef::new("lo_suppkey", DataType::Key { target: "supplier".into() }),
        ColumnDef::new("lo_orderdate", DataType::Key { target: "date".into() }),
        ColumnDef::new("lo_orderpriority", DataType::Dict),
        ColumnDef::new("lo_shippriority", DataType::I32),
        ColumnDef::new("lo_quantity", DataType::I32),
        ColumnDef::new("lo_extendedprice", DataType::I64),
        ColumnDef::new("lo_ordtotalprice", DataType::I64),
        ColumnDef::new("lo_discount", DataType::I32),
        ColumnDef::new("lo_revenue", DataType::I64),
        ColumnDef::new("lo_supplycost", DataType::I64),
        ColumnDef::new("lo_tax", DataType::I32),
        ColumnDef::new("lo_commitdate", DataType::Key { target: "date".into() }),
        ColumnDef::new("lo_shipmode", DataType::Dict),
    ]);
    Table::from_columns(
        "lineorder",
        schema,
        vec![
            Column::I64(orderkey),
            Column::I32(linenumber),
            Column::Key { target: "customer".into(), keys: custkey },
            Column::Key { target: "part".into(), keys: partkey },
            Column::Key { target: "supplier".into(), keys: suppkey },
            Column::Key { target: "date".into(), keys: orderdate },
            Column::Dict(DictColumn::from_values(orderpriority)),
            Column::I32(shippriority),
            Column::I32(quantity),
            Column::I64(extendedprice),
            Column::I64(ordtotalprice),
            Column::I32(discount),
            Column::I64(revenue),
            Column::I64(supplycost),
            Column::I32(tax),
            Column::Key { target: "date".into(), keys: commitdate },
            Column::Dict(DictColumn::from_values(shipmode)),
        ],
    )
}

/// First-appearance interning; domains here are tiny (≤ 7 values), so a
/// linear probe beats a hash map. [`finish_dict`] remaps the codes to the
/// sorted-domain order [`DictColumn::from_values`] would assign.
fn intern(values: &mut Vec<String>, v: &str) -> u32 {
    if let Some(i) = values.iter().position(|x| x == v) {
        return i as u32;
    }
    values.push(v.to_owned());
    values.len() as u32 - 1
}

/// Remaps first-appearance codes onto the sorted-domain codes
/// [`DictColumn::from_values`] assigns, so a streamed column is
/// bit-identical to the string-materialized one — without ever holding a
/// per-row string.
fn finish_dict(mut codes: Vec<u32>, values: Vec<String>) -> DictColumn {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_unstable_by(|&a, &b| values[a].cmp(&values[b]));
    let mut remap = vec![0u32; values.len()];
    for (rank, &old) in order.iter().enumerate() {
        remap[old] = rank as u32;
    }
    for c in &mut codes {
        *c = remap[*c as usize];
    }
    let mut sorted = values;
    sorted.sort_unstable();
    DictColumn::from_parts(codes, astore_storage::dictionary::Dictionary::from_values(sorted))
}

/// The streaming twin of [`gen_lineorder`]: identical row data and rng
/// draw order, but dictionary columns are emitted as interned codes
/// directly — no per-row `String` is ever allocated for them.
fn gen_lineorder_streaming(sizes: SsbSizes, rng: &mut SmallRng) -> Table {
    let n = sizes.lineorder;
    let mut orderkey = Vec::with_capacity(n);
    let mut linenumber = Vec::with_capacity(n);
    let mut custkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut orderdate = Vec::with_capacity(n);
    let mut orderpriority = Vec::with_capacity(n);
    let mut prio_values = Vec::new();
    let mut shippriority = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut ordtotalprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut commitdate = Vec::with_capacity(n);
    let mut shipmode = Vec::with_capacity(n);
    let mut ship_values = Vec::new();

    let mut i = 0usize;
    let mut order = 0i64;
    while i < n {
        order += 1;
        let lines = rng.gen_range(1..=7usize).min(n - i);
        // Same arrival-order date clustering as `gen_lineorder` (see the
        // comment there); the draw sequence must match it exactly.
        let base = (i as u64 * sizes.date as u64 / n.max(1) as u64) as i64;
        let odate = (base + rng.gen_range(-30..=30i64)).clamp(0, sizes.date as i64 - 1) as u32;
        let ck = rng.gen_range(0..sizes.customer as u32);
        let prio = intern(&mut prio_values, PRIORITIES[rng.gen_range(0..PRIORITIES.len())]);
        let mut total = 0i64;
        let start = i;
        for l in 0..lines {
            let q = rng.gen_range(1..=50i32);
            let price_base = rng.gen_range(900..=1_109i64);
            let eprice = (i64::from(q) * price_base).min(55_450);
            let disc = rng.gen_range(0..=10i32);
            let rev = eprice * i64::from(100 - disc) / 100;
            total += eprice;
            orderkey.push(order);
            linenumber.push(l as i32 + 1);
            custkey.push(ck);
            partkey.push(rng.gen_range(0..sizes.part as u32));
            suppkey.push(rng.gen_range(0..sizes.supplier as u32));
            orderdate.push(odate);
            orderpriority.push(prio);
            shippriority.push(0i32);
            quantity.push(q);
            extendedprice.push(eprice);
            discount.push(disc);
            revenue.push(rev);
            supplycost.push(price_base * 6 / 10);
            tax.push(rng.gen_range(0..=8i32));
            commitdate.push((odate + rng.gen_range(30..=90u32)).min(sizes.date as u32 - 1));
            shipmode.push(intern(&mut ship_values, SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())]));
            i += 1;
        }
        for _ in start..i {
            ordtotalprice.push(total);
        }
    }

    let schema = Schema::new(vec![
        ColumnDef::new("lo_orderkey", DataType::I64),
        ColumnDef::new("lo_linenumber", DataType::I32),
        ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
        ColumnDef::new("lo_partkey", DataType::Key { target: "part".into() }),
        ColumnDef::new("lo_suppkey", DataType::Key { target: "supplier".into() }),
        ColumnDef::new("lo_orderdate", DataType::Key { target: "date".into() }),
        ColumnDef::new("lo_orderpriority", DataType::Dict),
        ColumnDef::new("lo_shippriority", DataType::I32),
        ColumnDef::new("lo_quantity", DataType::I32),
        ColumnDef::new("lo_extendedprice", DataType::I64),
        ColumnDef::new("lo_ordtotalprice", DataType::I64),
        ColumnDef::new("lo_discount", DataType::I32),
        ColumnDef::new("lo_revenue", DataType::I64),
        ColumnDef::new("lo_supplycost", DataType::I64),
        ColumnDef::new("lo_tax", DataType::I32),
        ColumnDef::new("lo_commitdate", DataType::Key { target: "date".into() }),
        ColumnDef::new("lo_shipmode", DataType::Dict),
    ]);
    Table::from_columns(
        "lineorder",
        schema,
        vec![
            Column::I64(orderkey),
            Column::I32(linenumber),
            Column::Key { target: "customer".into(), keys: custkey },
            Column::Key { target: "part".into(), keys: partkey },
            Column::Key { target: "supplier".into(), keys: suppkey },
            Column::Key { target: "date".into(), keys: orderdate },
            Column::Dict(finish_dict(orderpriority, prio_values)),
            Column::I32(shippriority),
            Column::I32(quantity),
            Column::I64(extendedprice),
            Column::I64(ordtotalprice),
            Column::I32(discount),
            Column::I64(revenue),
            Column::I64(supplycost),
            Column::I32(tax),
            Column::Key { target: "date".into(), keys: commitdate },
            Column::Dict(finish_dict(shipmode, ship_values)),
        ],
    )
}

/// A named SSB query.
#[derive(Debug, Clone)]
pub struct SsbQuery {
    /// "Q1.1" … "Q4.3".
    pub id: &'static str,
    /// The SPJGA query.
    pub query: Query,
}

/// The 13 SSB queries, in flight order.
pub fn queries() -> Vec<SsbQuery> {
    let rev_disc = || {
        MeasureExpr::Mul(
            Box::new(MeasureExpr::col("lo_extendedprice")),
            Box::new(MeasureExpr::col("lo_discount")),
        )
    };
    let profit = || {
        MeasureExpr::Sub(
            Box::new(MeasureExpr::col("lo_revenue")),
            Box::new(MeasureExpr::col("lo_supplycost")),
        )
    };
    let rev = || MeasureExpr::col("lo_revenue");

    vec![
        SsbQuery {
            id: "Q1.1",
            query: Query::new()
                .root("lineorder")
                .filter("date", Pred::eq("d_year", 1993))
                .filter("lineorder", Pred::between("lo_discount", 1, 3))
                .filter("lineorder", Pred::cmp("lo_quantity", CmpOp::Lt, 25))
                .agg(Aggregate::sum(rev_disc(), "revenue")),
        },
        SsbQuery {
            id: "Q1.2",
            query: Query::new()
                .root("lineorder")
                .filter("date", Pred::eq("d_yearmonthnum", 199401))
                .filter("lineorder", Pred::between("lo_discount", 4, 6))
                .filter("lineorder", Pred::between("lo_quantity", 26, 35))
                .agg(Aggregate::sum(rev_disc(), "revenue")),
        },
        SsbQuery {
            id: "Q1.3",
            query: Query::new()
                .root("lineorder")
                .filter("date", Pred::eq("d_weeknuminyear", 6).and(Pred::eq("d_year", 1994)))
                .filter("lineorder", Pred::between("lo_discount", 5, 7))
                .filter("lineorder", Pred::between("lo_quantity", 26, 35))
                .agg(Aggregate::sum(rev_disc(), "revenue")),
        },
        SsbQuery {
            id: "Q2.1",
            query: Query::new()
                .root("lineorder")
                .filter("part", Pred::eq("p_category", "MFGR#12"))
                .filter("supplier", Pred::eq("s_region", "AMERICA"))
                .group("date", "d_year")
                .group("part", "p_brand1")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("p_brand1")),
        },
        SsbQuery {
            id: "Q2.2",
            query: Query::new()
                .root("lineorder")
                .filter("part", Pred::between("p_brand1", "MFGR#2221", "MFGR#2228"))
                .filter("supplier", Pred::eq("s_region", "ASIA"))
                .group("date", "d_year")
                .group("part", "p_brand1")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("p_brand1")),
        },
        SsbQuery {
            id: "Q2.3",
            query: Query::new()
                .root("lineorder")
                .filter("part", Pred::eq("p_brand1", "MFGR#2239"))
                .filter("supplier", Pred::eq("s_region", "EUROPE"))
                .group("date", "d_year")
                .group("part", "p_brand1")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("p_brand1")),
        },
        SsbQuery {
            id: "Q3.1",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::eq("c_region", "ASIA"))
                .filter("supplier", Pred::eq("s_region", "ASIA"))
                .filter("date", Pred::between("d_year", 1992, 1997))
                .group("customer", "c_nation")
                .group("supplier", "s_nation")
                .group("date", "d_year")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::desc("revenue")),
        },
        SsbQuery {
            id: "Q3.2",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::eq("c_nation", "UNITED STATES"))
                .filter("supplier", Pred::eq("s_nation", "UNITED STATES"))
                .filter("date", Pred::between("d_year", 1992, 1997))
                .group("customer", "c_city")
                .group("supplier", "s_city")
                .group("date", "d_year")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::desc("revenue")),
        },
        SsbQuery {
            id: "Q3.3",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::in_list("c_city", vec!["UNITED KI1", "UNITED KI5"]))
                .filter("supplier", Pred::in_list("s_city", vec!["UNITED KI1", "UNITED KI5"]))
                .filter("date", Pred::between("d_year", 1992, 1997))
                .group("customer", "c_city")
                .group("supplier", "s_city")
                .group("date", "d_year")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::desc("revenue")),
        },
        SsbQuery {
            id: "Q3.4",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::in_list("c_city", vec!["UNITED KI1", "UNITED KI5"]))
                .filter("supplier", Pred::in_list("s_city", vec!["UNITED KI1", "UNITED KI5"]))
                .filter("date", Pred::eq("d_yearmonth", "Dec1997"))
                .group("customer", "c_city")
                .group("supplier", "s_city")
                .group("date", "d_year")
                .agg(Aggregate::sum(rev(), "revenue"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::desc("revenue")),
        },
        SsbQuery {
            id: "Q4.1",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::eq("c_region", "AMERICA"))
                .filter("supplier", Pred::eq("s_region", "AMERICA"))
                .filter("part", Pred::in_list("p_mfgr", vec!["MFGR#1", "MFGR#2"]))
                .group("date", "d_year")
                .group("customer", "c_nation")
                .agg(Aggregate::sum(profit(), "profit"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("c_nation")),
        },
        SsbQuery {
            id: "Q4.2",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::eq("c_region", "AMERICA"))
                .filter("supplier", Pred::eq("s_region", "AMERICA"))
                .filter("date", Pred::in_list("d_year", vec![1997, 1998]))
                .filter("part", Pred::in_list("p_mfgr", vec!["MFGR#1", "MFGR#2"]))
                .group("date", "d_year")
                .group("supplier", "s_nation")
                .group("part", "p_category")
                .agg(Aggregate::sum(profit(), "profit"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("s_nation"))
                .order(OrderKey::asc("p_category")),
        },
        SsbQuery {
            id: "Q4.3",
            query: Query::new()
                .root("lineorder")
                .filter("customer", Pred::eq("c_region", "AMERICA"))
                .filter("supplier", Pred::eq("s_nation", "UNITED STATES"))
                .filter("date", Pred::in_list("d_year", vec![1997, 1998]))
                .filter("part", Pred::eq("p_category", "MFGR#14"))
                .group("date", "d_year")
                .group("supplier", "s_city")
                .group("part", "p_brand1")
                .agg(Aggregate::sum(profit(), "profit"))
                .order(OrderKey::asc("d_year"))
                .order(OrderKey::asc("s_city"))
                .order(OrderKey::asc("p_brand1")),
        },
    ]
}

/// The count-only "star-join" reductions of the SSB queries used by the
/// paper's §6.1.3 micro-benchmark ("we simplified the SSB queries by using
/// count() instead of other aggregation expression and eliminating all
/// group-by clauses").
pub fn starjoin_queries() -> Vec<SsbQuery> {
    queries()
        .into_iter()
        .map(|mut q| {
            q.query.group_by.clear();
            q.query.aggregates = vec![Aggregate::count("n")];
            q.query.order_by.clear();
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_core::exec::{execute, ExecOptions};

    #[test]
    fn sizes_scale() {
        let s = SsbSizes::at(1.0);
        assert_eq!(s.lineorder, 6_000_000);
        assert_eq!(s.customer, 30_000);
        assert_eq!(s.supplier, 2_000);
        assert_eq!(s.part, 200_000);
        assert_eq!(s.date, 2_557);
        let s4 = SsbSizes::at(4.0);
        assert_eq!(s4.part, 600_000);
        let tiny = SsbSizes::at(0.001);
        assert_eq!(tiny.lineorder, 6_000);
        assert!(tiny.customer >= 100);
    }

    #[test]
    fn date_dimension_calendar() {
        let d = gen_date();
        assert_eq!(d.num_slots(), 2_557);
        let years = d.column("d_year").unwrap().as_i32().unwrap();
        assert_eq!(years[0], 1992);
        assert_eq!(years[2_556], 1998);
        // 1992 and 1996 are leap years: 366 days.
        assert_eq!(years.iter().filter(|&&y| y == 1992).count(), 366);
        assert_eq!(years.iter().filter(|&&y| y == 1993).count(), 365);
        assert_eq!(years.iter().filter(|&&y| y == 1996).count(), 366);
        // Spot-check datekeys.
        let dk = d.column("d_datekey").unwrap().as_i32().unwrap();
        assert_eq!(dk[0], 19_920_101);
        assert_eq!(dk[31], 19_920_201);
        // Dec1997 yearmonth exists.
        let ym = d.column("d_yearmonth").unwrap().as_dict().unwrap();
        assert!(ym.dict().code_of("Dec1997") != NULL_KEY);
    }

    #[test]
    fn city_name_shapes() {
        assert_eq!(city_name("UNITED KINGDOM", 1), "UNITED KI1");
        assert_eq!(city_name("PERU", 3), "PERU     3");
        assert_eq!(city_name("UNITED STATES", 0), "UNITED ST0");
    }

    #[test]
    fn generated_database_is_referentially_sound() {
        let db = generate(0.002, 42);
        assert!(db.validate_references().is_empty());
        let lo = db.table("lineorder").unwrap();
        assert_eq!(lo.num_slots(), 12_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        let ka = a.table("lineorder").unwrap().column("lo_custkey").unwrap().as_key().unwrap().1;
        let kb = b.table("lineorder").unwrap().column("lo_custkey").unwrap().as_key().unwrap().1;
        assert_eq!(ka, kb);
        let c = generate(0.001, 8);
        let kc = c.table("lineorder").unwrap().column("lo_custkey").unwrap().as_key().unwrap().1;
        assert_ne!(ka, kc, "different seeds give different data");
    }

    #[test]
    fn streaming_generation_matches_batch_exactly() {
        let a = generate(0.002, 42);
        let b = generate_streaming(0.002, 42);
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
            assert_eq!(ta.schema().defs(), tb.schema().defs(), "{name} schema");
            assert_eq!(ta.num_slots(), tb.num_slots(), "{name} rows");
            for row in 0..ta.num_slots() as u32 {
                assert_eq!(ta.row(row), tb.row(row), "{name}[{row}]");
            }
        }
        // Code-level identity too: the interner mirrors from_values.
        for col in ["lo_orderpriority", "lo_shipmode"] {
            let ca = a.table("lineorder").unwrap().column(col).unwrap().as_dict().unwrap();
            let cb = b.table("lineorder").unwrap().column(col).unwrap().as_dict().unwrap();
            assert_eq!(ca.dict().values(), cb.dict().values(), "{col} dictionary order");
            assert_eq!(ca.codes(), cb.codes(), "{col} codes");
        }
        // The streamed database arrives sealed, with real compression.
        let lo = b.table("lineorder").unwrap();
        assert!(lo.encodings().iter().all(Option::is_some), "every segment sealed");
        let (enc, raw) = lo.encoded_footprint();
        assert!(enc * 2 <= raw, "encoded {enc} must be ≤ half of raw {raw}");
        assert!(b.validate_references().is_empty());
    }

    #[test]
    fn revenue_consistent_with_price_and_discount() {
        let db = generate(0.001, 1);
        let lo = db.table("lineorder").unwrap();
        let price = lo.column("lo_extendedprice").unwrap().as_i64().unwrap();
        let disc = lo.column("lo_discount").unwrap().as_i32().unwrap();
        let rev = lo.column("lo_revenue").unwrap().as_i64().unwrap();
        for i in 0..lo.num_slots() {
            assert_eq!(rev[i], price[i] * i64::from(100 - disc[i]) / 100);
            assert!(price[i] <= 55_450);
            assert!((0..=10).contains(&disc[i]));
        }
    }

    #[test]
    fn q1_selectivities_roughly_match_ssb() {
        let db = generate(0.01, 42);
        let qs = queries();
        // Q1.1 selectivity ~1.9% of lineorder (1/7 * 3/11 * 24/50).
        let out = execute(&db, &qs[0].query, &ExecOptions::default()).unwrap();
        let n = db.table("lineorder").unwrap().num_slots() as f64;
        let sel = out.plan.selected_rows as f64 / n;
        assert!((0.012..0.028).contains(&sel), "Q1.1 selectivity {sel}");
        assert_eq!(out.result.rows.len(), 1);
    }

    #[test]
    fn all_13_queries_run_and_produce_output() {
        let db = generate(0.005, 42);
        for q in queries() {
            let out = execute(&db, &q.query, &ExecOptions::default()).unwrap();
            // All SSB queries hit something at this scale except possibly
            // the ultra-selective Q3.4 / Q2.3.
            if q.id == "Q3.4" || q.id == "Q2.3" || q.id == "Q3.3" {
                continue;
            }
            assert!(!out.result.is_empty(), "{} returned nothing", q.id);
        }
    }

    #[test]
    fn starjoin_variants_are_count_only() {
        for q in starjoin_queries() {
            assert!(q.query.group_by.is_empty());
            assert_eq!(q.query.aggregates.len(), 1);
            assert!(q.query.order_by.is_empty());
        }
    }

    #[test]
    fn nations_cover_five_regions_evenly() {
        let mut by_region = std::collections::HashMap::new();
        for (_, r) in NATIONS {
            *by_region.entry(r).or_insert(0) += 1;
        }
        assert_eq!(by_region.len(), 5);
        assert!(by_region.values().all(|&c| c == 5));
    }
}
