//! # astore-datagen
//!
//! Deterministic, in-process data generators for the workloads the A-Store
//! paper evaluates on (§6):
//!
//! - [`ssb`] — the Star Schema Benchmark (schema, generator, and the
//!   13-query catalog Q1.1–Q4.3);
//! - [`tpch`] — a TPC-H subset forming the paper's Fig. 3 snowflake
//!   (lineitem → orders → customer → nation → region) plus part/supplier;
//! - [`tpcds`] — a TPC-DS subset (store_sales + 9 dimensions) reproducing
//!   the Table 2 cardinality ratios;
//! - [`workload`] — the synthetic Workload A/B join microbenchmarks of
//!   Balkesen et al. \[7\].
//!
//! All generators take `(scale_factor, seed)` and are reproducible; foreign
//! keys are emitted directly as array index references, which is how an
//! A-Store deployment would load them (§2). The [`cached`] module memoizes
//! generated databases as on-disk snapshots (generate once, persist,
//! reload).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cached;
pub mod ssb;
pub mod tpcds;
pub mod tpch;
pub mod workload;

/// Reads a scale factor from the `ASTORE_SF` environment variable, falling
/// back to `default_sf`. Used by every benchmark harness so experiments can
/// be re-run at larger scales without recompiling.
pub fn env_scale_factor(default_sf: f64) -> f64 {
    std::env::var("ASTORE_SF")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default_sf)
}

/// Reads a thread count from `ASTORE_THREADS`, defaulting to the available
/// parallelism.
pub fn env_threads() -> usize {
    std::env::var("ASTORE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|v| *v > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}
