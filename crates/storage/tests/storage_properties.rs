//! Property-based tests for the storage primitives: bitmap algebra,
//! dictionary round-trips, the string heap, and the table update/compact
//! life cycle.

use proptest::prelude::*;

use astore_storage::bitmap::Bitmap;
use astore_storage::dictionary::{DictColumn, Dictionary};
use astore_storage::prelude::*;
use astore_storage::selvec::SelVec;
use astore_storage::strings::StrColumn;

proptest! {
    #[test]
    fn bitmap_set_get_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_fn(bits.len(), |i| bits[i]);
        prop_assert_eq!(bm.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bitmap_demorgan(a in prop::collection::vec(any::<bool>(), 1..256),
                       b in prop::collection::vec(any::<bool>(), 1..256)) {
        let n = a.len().min(b.len());
        let bma = Bitmap::from_fn(n, |i| a[i]);
        let bmb = Bitmap::from_fn(n, |i| b[i]);
        // !(a & b) == !a | !b
        let mut lhs = bma.clone();
        lhs.and_assign(&bmb);
        lhs.not_assign();
        let mut na = bma.clone();
        na.not_assign();
        let mut nb = bmb.clone();
        nb.not_assign();
        let mut rhs = na;
        rhs.or_assign(&nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn bitmap_iter_ones_matches_get(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_fn(bits.len(), |i| bits[i]);
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> =
            (0..bits.len()).filter(|&i| bits[i]).collect();
        prop_assert_eq!(ones, expected);
    }

    #[test]
    fn selvec_bitmap_duality(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_fn(bits.len(), |i| bits[i]);
        let sv = SelVec::from_bitmap(&bm);
        prop_assert_eq!(sv.to_bitmap(bits.len()), bm);
        prop_assert_eq!(sv.len(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn dictionary_roundtrip(values in prop::collection::vec("[a-z]{0,12}", 0..120)) {
        let (dict, codes) = Dictionary::encode(values.clone());
        prop_assert_eq!(codes.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(dict.decode(codes[i]), v.as_str());
            prop_assert_eq!(dict.code_of(v), codes[i]);
        }
        // Order preservation: codes sort like values.
        for i in 0..values.len() {
            for j in 0..values.len() {
                prop_assert_eq!(values[i] < values[j], codes[i] < codes[j]);
            }
        }
    }

    #[test]
    fn dictionary_code_range_equals_scan(values in prop::collection::vec("[a-f]{1,4}", 1..60),
                                         lo in "[a-f]{1,4}", hi in "[a-f]{1,4}") {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let (dict, _) = Dictionary::encode(values);
        let range = dict.code_range(&lo, &hi);
        for c in 0..dict.len() as u32 {
            let v = dict.decode(c);
            let in_range = v >= lo.as_str() && v <= hi.as_str();
            prop_assert_eq!(range.contains(&c), in_range, "value {}", v);
        }
    }

    #[test]
    fn dict_column_updates(ops in prop::collection::vec(("[a-z]{0,6}", any::<bool>()), 1..80)) {
        let mut col = DictColumn::new();
        let mut model: Vec<String> = Vec::new();
        for (s, update) in ops {
            if update && !model.is_empty() {
                let idx = s.len() % model.len();
                col.update(idx, &s);
                model[idx] = s;
            } else {
                col.push(&s);
                model.push(s);
            }
        }
        prop_assert_eq!(col.len(), model.len());
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(col.get(i), v.as_str());
        }
    }

    #[test]
    fn str_column_push_update(ops in prop::collection::vec(("[ -~]{0,40}", any::<bool>()), 1..80)) {
        let mut col = StrColumn::new();
        let mut model: Vec<String> = Vec::new();
        for (s, update) in ops {
            if update && !model.is_empty() {
                let idx = s.len() % model.len();
                col.update(idx, &s);
                model[idx] = s;
            } else {
                col.push(&s);
                model.push(s);
            }
        }
        for (i, v) in model.iter().enumerate() {
            prop_assert_eq!(col.get(i), v.as_str());
        }
    }

    #[test]
    fn table_insert_delete_compact_lifecycle(
        ops in prop::collection::vec((0..3u8, 0..64u32, -100..100i64), 0..120),
    ) {
        let mut t = Table::new(
            "t",
            Schema::new(vec![ColumnDef::new("v", DataType::I64)]),
        );
        // Model: map slot -> value for live slots.
        let mut model: Vec<Option<i64>> = Vec::new();
        for (op, row, v) in ops {
            match op {
                0 => {
                    let slot = t.insert(&[Value::Int(v)]) as usize;
                    if slot == model.len() {
                        model.push(Some(v));
                    } else {
                        prop_assert!(model[slot].is_none(), "reused slot must be dead");
                        model[slot] = Some(v);
                    }
                }
                1 => {
                    if !model.is_empty() {
                        let slot = (row as usize) % model.len();
                        let was_live = model[slot].is_some();
                        prop_assert_eq!(t.delete(slot as u32), was_live);
                        model[slot] = None;
                    }
                }
                _ => {
                    if !model.is_empty() {
                        let slot = (row as usize) % model.len();
                        if model[slot].is_some() {
                            t.update(slot as u32, "v", &Value::Int(v));
                            model[slot] = Some(v);
                        }
                    }
                }
            }
            prop_assert_eq!(t.num_slots(), model.len());
            prop_assert_eq!(t.num_live(), model.iter().flatten().count());
        }
        // Compaction preserves the live multiset and renumbers densely.
        let live_before: Vec<i64> = model.iter().flatten().copied().collect();
        let remap = t.compact();
        prop_assert_eq!(t.num_slots(), live_before.len());
        prop_assert_eq!(t.num_live(), live_before.len());
        let mut live_after: Vec<i64> = (0..t.num_slots())
            .map(|r| t.column("v").unwrap().int_at(r).unwrap())
            .collect();
        let mut expected = live_before;
        live_after.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(live_after, expected);
        // Remap hits every new slot exactly once.
        let mut seen: Vec<u32> = remap.into_iter().flatten().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..t.num_slots() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn consolidation_preserves_referential_integrity(
        dim_size in 1..30usize,
        fact_keys in prop::collection::vec(0..30u32, 0..80),
        deletes in prop::collection::vec(0..30u32, 0..10),
    ) {
        let mut dim = Table::new(
            "dim",
            Schema::new(vec![ColumnDef::new("d", DataType::I32)]),
        );
        for i in 0..dim_size {
            dim.append_row(&[Value::Int(i as i64)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![ColumnDef::new("k", DataType::Key { target: "dim".into() })]),
        );
        for k in &fact_keys {
            fact.append_row(&[Value::Key(k % dim_size as u32)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        prop_assert!(db.validate_references().is_empty());

        for d in deletes {
            db.table_mut("dim").unwrap().delete(d % dim_size as u32);
        }
        db.consolidate("dim");
        prop_assert!(db.validate_references().is_empty(),
            "consolidation must restore referential integrity");
    }
}
