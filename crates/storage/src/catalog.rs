//! The database catalog: a set of named tables connected by AIR columns.
//!
//! The AIR edges (`fact.fk -> dimension`) recorded here are what the query
//! layer turns into a *join graph* (paper §3). The catalog also implements
//! the consolidation protocol (paper §4.4): compacting a table requires
//! rewriting every inbound reference column.

use std::collections::HashMap;
use std::sync::Arc;

use crate::column::Column;
use crate::table::Table;
use crate::types::{Key, NULL_KEY};

/// A foreign-key edge: `from_table.column` references `to_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AirEdge {
    /// Referencing table.
    pub from_table: String,
    /// The AIR column in the referencing table.
    pub column: String,
    /// Referenced table.
    pub to_table: String,
}

/// A set of named tables. Tables are held behind [`Arc`] so snapshots
/// (see [`crate::snapshot`]) are cheap copy-on-write clones.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Arc<Table>>,
    /// Table names in insertion order, for deterministic iteration.
    order: Vec<String>,
    /// Commit version: bumped once per published write batch (not per
    /// statement). Diagnostics only — never persisted, restarts from 0.
    version: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The commit version of this catalog image.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advances the commit version (call once per published write batch).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        let name = table.name().to_owned();
        if self.tables.insert(name.clone(), Arc::new(table)).is_none() {
            self.order.push(name);
        }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// Looks up a table's [`Arc`] (for sharing with worker threads).
    pub fn table_arc(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Mutable access to a table; clones it first if snapshots still hold it
    /// (copy-on-write).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name).map(Arc::make_mut)
    }

    /// Mutable access **only if** no snapshot shares the table — never
    /// triggers a copy-on-write clone. For metadata-only touches (e.g.
    /// marking segments clean after a checkpoint) that are not worth a
    /// deep copy while readers are in flight.
    pub fn table_mut_in_place(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name).and_then(Arc::get_mut)
    }

    /// Table names in insertion order.
    pub fn table_names(&self) -> &[String] {
        &self.order
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the catalog holds no tables.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// All AIR edges, discovered from `Key` column metadata, in
    /// deterministic order.
    pub fn edges(&self) -> Vec<AirEdge> {
        let mut out = Vec::new();
        for name in &self.order {
            let t = &self.tables[name];
            for (col_name, col) in t.columns() {
                if let Some((target, _)) = col.as_key() {
                    out.push(AirEdge {
                        from_table: name.clone(),
                        column: col_name.to_owned(),
                        to_table: target.to_owned(),
                    });
                }
            }
        }
        out
    }

    /// Checks referential integrity of every AIR column: each key must be
    /// [`NULL_KEY`] or address a *live* slot of an existing target table.
    /// Returns the list of violations as human-readable strings.
    pub fn validate_references(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for edge in self.edges() {
            let Some(target) = self.table(&edge.to_table) else {
                errors.push(format!(
                    "{}.{} references missing table {}",
                    edge.from_table, edge.column, edge.to_table
                ));
                continue;
            };
            let src = &self.tables[&edge.from_table];
            let (_, keys) = src.column(&edge.column).unwrap().as_key().unwrap();
            for (row, &k) in keys.iter().enumerate() {
                if !src.is_live(row as u32) || k == NULL_KEY {
                    continue;
                }
                if k as usize >= target.num_slots() {
                    errors.push(format!(
                        "{}.{}[{}] = {} out of range for {} ({} slots)",
                        edge.from_table,
                        edge.column,
                        row,
                        k,
                        edge.to_table,
                        target.num_slots()
                    ));
                } else if !target.is_live(k) {
                    errors.push(format!(
                        "{}.{}[{}] = {} references dead tuple in {}",
                        edge.from_table, edge.column, row, k, edge.to_table
                    ));
                }
            }
        }
        errors
    }

    /// Consolidates (compacts) a table and rewrites every inbound AIR column
    /// with the resulting slot remap — the paper's expensive, idle-time
    /// operation (§4.4). References to dropped tuples become [`NULL_KEY`].
    ///
    /// # Panics
    /// Panics if the table does not exist.
    pub fn consolidate(&mut self, name: &str) {
        let remap = {
            let t = self.table_mut(name).unwrap_or_else(|| panic!("no table {name:?}"));
            t.compact()
        };
        let inbound: Vec<AirEdge> =
            self.edges().into_iter().filter(|e| e.to_table == name).collect();
        for edge in inbound {
            let src = self.table_mut(&edge.from_table).unwrap();
            if let Some(Column::Key { keys, .. }) = src_column_mut(src, &edge.column) {
                for k in keys.iter_mut() {
                    if *k != NULL_KEY {
                        *k = remap.get(*k as usize).copied().flatten().unwrap_or(NULL_KEY);
                    }
                }
            }
            // The raw key rewrite invalidated the column's zone statistics;
            // restore exact bounds so data skipping keeps working.
            src.rebuild_zone_maps();
        }
    }

    /// Total live bytes across all numeric arrays and key columns —
    /// a rough footprint indicator used by EXPERIMENTS.md to contrast
    /// virtual vs materialized denormalization space usage.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for name in &self.order {
            let t = &self.tables[name];
            for (_, col) in t.columns() {
                total += match col {
                    Column::I32(v) => v.len() * 4,
                    Column::I64(v) => v.len() * 8,
                    Column::F64(v) => v.len() * 8,
                    Column::Str(c) => c.heap_bytes() + c.len() * 8,
                    Column::Dict(c) => {
                        c.len() * 4 + c.dict().values().iter().map(String::len).sum::<usize>()
                    }
                    Column::Key { keys, .. } => keys.len() * 4,
                };
            }
        }
        total
    }
}

/// Helper: mutable column access by name without borrowing all of `Database`.
fn src_column_mut<'a>(table: &'a mut Table, column: &str) -> Option<&'a mut Column> {
    table.column_mut(column)
}

/// Validates and returns a key for indexing into a table of `n` slots,
/// treating [`NULL_KEY`] as absent.
#[inline]
pub fn checked_key(k: Key, n: usize) -> Option<usize> {
    if k == NULL_KEY || k as usize >= n {
        None
    } else {
        Some(k as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Schema};
    use crate::types::{DataType, Value};

    fn tiny_star() -> Database {
        let mut db = Database::new();
        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1992, 1993, 1994] {
            date.append_row(&[Value::Int(y)]);
        }
        let mut fact = Table::new(
            "lineorder",
            Schema::new(vec![
                ColumnDef::new("lo_dk", DataType::Key { target: "date".into() }),
                ColumnDef::new("lo_rev", DataType::I64),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(10)]);
        fact.append_row(&[Value::Key(2), Value::Int(20)]);
        fact.append_row(&[Value::Key(1), Value::Int(30)]);
        db.add_table(date);
        db.add_table(fact);
        db
    }

    #[test]
    fn edges_discovered_from_key_columns() {
        let db = tiny_star();
        let edges = db.edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(
            edges[0],
            AirEdge {
                from_table: "lineorder".into(),
                column: "lo_dk".into(),
                to_table: "date".into()
            }
        );
    }

    #[test]
    fn validate_clean_database() {
        assert!(tiny_star().validate_references().is_empty());
    }

    #[test]
    fn validate_detects_dangling_and_dead_references() {
        let mut db = tiny_star();
        db.table_mut("lineorder").unwrap().update(0, "lo_dk", &Value::Key(99));
        db.table_mut("date").unwrap().delete(1);
        let errors = db.validate_references();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("out of range")));
        assert!(errors.iter().any(|e| e.contains("dead tuple")));
    }

    #[test]
    fn consolidate_rewrites_inbound_references() {
        let mut db = tiny_star();
        // Kill date[0]; lineorder[0] references it and must become NULL.
        db.table_mut("date").unwrap().delete(0);
        db.consolidate("date");
        let fact = db.table("lineorder").unwrap();
        let (_, keys) = fact.column("lo_dk").unwrap().as_key().unwrap();
        // date[2] -> new slot 1, date[1] -> new slot 0.
        assert_eq!(keys, &[NULL_KEY, 1, 0]);
        assert!(db.validate_references().is_empty());
        assert_eq!(db.table("date").unwrap().num_slots(), 2);
    }

    #[test]
    fn checked_key_rules() {
        assert_eq!(checked_key(0, 3), Some(0));
        assert_eq!(checked_key(2, 3), Some(2));
        assert_eq!(checked_key(3, 3), None);
        assert_eq!(checked_key(NULL_KEY, 3), None);
    }

    #[test]
    fn approx_bytes_counts_arrays() {
        let db = tiny_star();
        // date: 3 * 4; lineorder: 3 * 4 (keys) + 3 * 8 (i64).
        assert_eq!(db.approx_bytes(), 12 + 12 + 24);
    }

    #[test]
    fn table_names_in_insertion_order() {
        let db = tiny_star();
        assert_eq!(db.table_names(), &["date".to_string(), "lineorder".into()]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }
}
