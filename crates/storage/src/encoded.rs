//! Per-segment column encodings: bit-packing, frame-of-reference, RLE.
//!
//! The paper stores dictionary codes in plain `u32` arrays ("array indexes
//! as compression codes", §2). This module tightens that to the *domain
//! width*: a sealed segment re-represents each integer-ish column (`i32`,
//! `i64`, AIR keys, dictionary codes) as either
//!
//! - [`PackedInts`] — frame-of-reference bit-packing: values become small
//!   unsigned offsets from a per-segment base, packed `width` bits per lane
//!   into `u64` words. Every lane carries one spare high **guard bit**
//!   (always 0) so the scan layer can evaluate range predicates on whole
//!   words at once with carry-less SWAR arithmetic; or
//! - [`RleInts`] — run-length encoding for value-clustered columns (the
//!   arrival-order date columns of the SSB generator, constant columns),
//!   where a range predicate accepts or rejects an entire run at a time.
//!
//! Encodings are chosen per column per segment at *seal* time, only when
//! strictly smaller than the raw array, and cover **all** slots of the
//! segment (dead ones included) so decoding reproduces the raw arrays
//! byte-for-byte: liveness stays in the table's delete vector, exactly as
//! for flat segments.
//!
//! ## The logical value domain
//!
//! Every encodable column reads as `i64`: `i32` widened, `i64` verbatim,
//! dictionary codes and AIR keys as their unsigned `u32` value. A NULL
//! reference ([`NULL_KEY`] = `u32::MAX`) is *literally the largest* key
//! value, and compiled predicates compare it as such — so the packed form
//! maps it to the largest stored code ([`PackedInts::null_code`]), which
//! keeps the value → code mapping order-preserving and lets range kernels
//! treat NULL like any other value. No special NULL path, no semantic
//! drift from the flat evaluator.

use std::ops::Range;

use crate::column::Column;
use crate::types::NULL_KEY;

/// Widest lane the packer emits (data bits + guard bit). Capping at 32
/// guarantees at least two lanes per word, so the SWAR path always beats
/// scalar; offsets needing more than 31 data bits stay raw.
pub const MAX_PACK_WIDTH: u8 = 32;

/// Frame-of-reference bit-packed integers.
///
/// Value `v` at row `i` is stored as the unsigned code `v - base` (or
/// [`PackedInts::null_code`] for a NULL key), `width` bits per lane,
/// `64 / width` lanes per word, lane `i % lanes` of word `i / lanes` at bit
/// `(i % lanes) * width`. Lanes never straddle a word; unused high bits of
/// a word and lanes past `len` are zero. `width` includes one guard bit, so
/// every stored code is `< 2^(width-1)` and the top bit of each lane is 0.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedInts {
    base: i64,
    width: u8,
    len: u32,
    max_code: u64,
    null_code: Option<u64>,
    words: Vec<u64>,
}

impl PackedInts {
    /// Packs `vals` relative to `base`. `null_code`, when present, is the
    /// largest stored code and stands for [`NULL_KEY`]; real values then
    /// occupy codes `0..null_code`. Returns `None` if the required width
    /// exceeds [`MAX_PACK_WIDTH`].
    fn build(vals: &[i64], base: i64, max_code: u64, null_code: Option<u64>) -> Option<PackedInts> {
        let width = Self::width_for(max_code)?;
        let lanes = (64 / width) as usize;
        let mut words = vec![0u64; vals.len().div_ceil(lanes)];
        for (i, &v) in vals.iter().enumerate() {
            let code = match null_code {
                Some(nc) if v == NULL_KEY as i64 => nc,
                _ => v.wrapping_sub(base) as u64,
            };
            debug_assert!(code <= max_code);
            words[i / lanes] |= code << ((i % lanes) * width as usize);
        }
        Some(PackedInts { base, width, len: vals.len() as u32, max_code, null_code, words })
    }

    /// Reassembles a [`PackedInts`] from serialized parts (the snapshot
    /// decoder). Every structural invariant [`PackedInts::build`]
    /// guarantees is re-checked, so corrupt or hand-rolled bytes cannot
    /// produce a value the scan kernels would misread: the width is
    /// re-derived from `max_code`, the word count must match `len`, every
    /// guard bit and every bit above the last full lane must be zero,
    /// every lane holding a row must carry a code `<= max_code`, and
    /// lanes past `len` must be zero. `has_null` reconstructs
    /// `null_code`, which is always the top code when present.
    pub fn from_parts(
        base: i64,
        len: u32,
        max_code: u64,
        has_null: bool,
        words: Vec<u64>,
    ) -> Option<PackedInts> {
        let width = Self::width_for(max_code)?;
        let lanes = (64 / width) as usize;
        if words.len() != (len as usize).div_ceil(lanes) {
            return None;
        }
        let mask = (1u64 << width) - 1;
        for (wi, &w) in words.iter().enumerate() {
            let used_bits = lanes * width as usize;
            if used_bits < 64 && w >> used_bits != 0 {
                return None; // residue bits above the last lane
            }
            for lane in 0..lanes {
                let code = (w >> (lane * width as usize)) & mask;
                if wi * lanes + lane < len as usize {
                    if code > max_code {
                        return None;
                    }
                } else if code != 0 {
                    return None; // tail lanes past `len` must stay zero
                }
            }
        }
        Some(PackedInts {
            base,
            width,
            len,
            max_code,
            null_code: has_null.then_some(max_code),
            words,
        })
    }

    /// Lane width (guard bit included) needed for codes up to `max_code`,
    /// or `None` if it would exceed [`MAX_PACK_WIDTH`].
    fn width_for(max_code: u64) -> Option<u8> {
        let data_bits = (64 - max_code.leading_zeros()) as u8;
        let width = data_bits + 1;
        (width <= MAX_PACK_WIDTH).then_some(width.max(2))
    }

    /// Packed size in bytes for `len` values with codes up to `max_code`
    /// (`None` if unpackable) — the seal-time cost estimate.
    fn bytes_for(len: usize, max_code: u64) -> Option<usize> {
        let width = Self::width_for(max_code)?;
        let lanes = (64 / width) as usize;
        Some(len.div_ceil(lanes) * 8)
    }

    /// The frame-of-reference base.
    #[inline]
    pub fn base(&self) -> i64 {
        self.base
    }

    /// Lane width in bits, guard bit included.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of encoded rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no rows are encoded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest stored code (equals `null_code` when NULLs are present).
    #[inline]
    pub fn max_code(&self) -> u64 {
        self.max_code
    }

    /// The code standing for [`NULL_KEY`], if the segment has NULL keys.
    #[inline]
    pub fn null_code(&self) -> Option<u64> {
        self.null_code
    }

    /// The packed words (the scan kernels read these directly).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Lanes per word.
    #[inline]
    pub fn lanes(&self) -> usize {
        (64 / self.width) as usize
    }

    /// The stored code at row `i`.
    #[inline]
    pub fn code_at(&self, i: usize) -> u64 {
        debug_assert!(i < self.len as usize);
        let lanes = self.lanes();
        let mask = (1u64 << self.width) - 1;
        (self.words[i / lanes] >> ((i % lanes) * self.width as usize)) & mask
    }

    /// The logical value at row `i` (NULL keys read back as [`NULL_KEY`]).
    #[inline]
    pub fn value_at(&self, i: usize) -> i64 {
        let code = self.code_at(i);
        match self.null_code {
            Some(nc) if code == nc => NULL_KEY as i64,
            _ => self.base.wrapping_add(code as i64),
        }
    }

    /// Maps an inclusive *logical* value range onto the inclusive stored
    /// code range it covers, or `None` if no stored code can satisfy it.
    /// Because the value → code mapping is order-preserving (NULL maps to
    /// the top code and *is* the top value), the kernel can compare codes
    /// where the flat evaluator compares values.
    pub fn code_bounds(&self, lo: i64, hi: i64) -> Option<(u64, u64)> {
        let null_val = NULL_KEY as i64;
        let clo = if lo <= self.base {
            0
        } else {
            // lo > base, so the difference is positive and fits u64.
            let off = lo.wrapping_sub(self.base) as u64;
            match self.null_code {
                None if off <= self.max_code => off,
                None => return None,
                Some(nc) if nc > 0 && off < nc => off,
                Some(nc) if lo <= null_val => nc,
                Some(_) => return None,
            }
        };
        let chi = match self.null_code {
            Some(nc) if hi >= null_val => nc,
            nc => {
                if hi < self.base {
                    return None;
                }
                let off = hi.wrapping_sub(self.base) as u64;
                let real_max = match nc {
                    None => self.max_code,
                    Some(n) => n.checked_sub(1)?,
                };
                off.min(real_max)
            }
        };
        (clo <= chi).then_some((clo, chi))
    }

    /// Heap bytes held by the packed representation.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Run-length encoded integers: `values[k]` repeats for rows
/// `ends[k-1]..ends[k]` (with `ends[-1] == 0`); `ends` is strictly
/// increasing and `ends.last() == len`. Values are stored raw (a NULL key
/// is literally `NULL_KEY as i64`), so RLE is exact for any int-ish column.
#[derive(Debug, Clone, PartialEq)]
pub struct RleInts {
    values: Vec<i64>,
    ends: Vec<u32>,
}

impl RleInts {
    fn build(vals: &[i64]) -> RleInts {
        let mut values = Vec::new();
        let mut ends = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            if values.last() != Some(&v) {
                values.push(v);
                ends.push(0);
            }
            *ends.last_mut().unwrap() = (i + 1) as u32;
        }
        RleInts { values, ends }
    }

    /// Reassembles an [`RleInts`] from serialized parts (the snapshot
    /// decoder), re-checking the canonical-form invariants
    /// [`RleInts::build`] guarantees: one end per value, strictly
    /// increasing ends, and no two adjacent runs with the same value
    /// (so a re-encode of the decoded column is byte-identical).
    pub fn from_parts(values: Vec<i64>, ends: Vec<u32>) -> Option<RleInts> {
        if values.len() != ends.len() {
            return None;
        }
        let mut prev_end = 0u32;
        for (k, &e) in ends.iter().enumerate() {
            if (k > 0 && e <= prev_end) || (k == 0 && e == 0) {
                return None;
            }
            prev_end = e;
        }
        if values.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(RleInts { values, ends })
    }

    /// Number of encoded rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0) as usize
    }

    /// Returns `true` if no rows are encoded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Number of runs.
    #[inline]
    pub fn run_count(&self) -> usize {
        self.values.len()
    }

    /// Run values, in row order.
    #[inline]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Exclusive cumulative run ends (`ends.last() == len`).
    #[inline]
    pub fn ends(&self) -> &[u32] {
        &self.ends
    }

    /// The logical value at row `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> i64 {
        let run = self.ends.partition_point(|&e| e <= i as u32);
        self.values[run]
    }

    /// Heap bytes held by the run representation.
    pub fn bytes(&self) -> usize {
        self.values.len() * 8 + self.ends.len() * 4
    }
}

/// One column of a sealed segment in encoded form.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// Frame-of-reference bit-packed.
    Packed(PackedInts),
    /// Run-length encoded.
    Rle(RleInts),
}

impl EncodedColumn {
    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Packed(p) => p.len(),
            EncodedColumn::Rle(r) => r.len(),
        }
    }

    /// Returns `true` if no rows are encoded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical value at row `i` (relative to the segment start).
    #[inline]
    pub fn value_at(&self, i: usize) -> i64 {
        match self {
            EncodedColumn::Packed(p) => p.value_at(i),
            EncodedColumn::Rle(r) => r.value_at(i),
        }
    }

    /// Heap bytes held by the encoded representation.
    pub fn bytes(&self) -> usize {
        match self {
            EncodedColumn::Packed(p) => p.bytes(),
            EncodedColumn::Rle(r) => r.bytes(),
        }
    }

    /// Calls `f(row)` for every encoded row (relative to the segment start)
    /// whose logical value falls in `[lo, hi]`. Rows are visited ascending.
    /// This is the portable reference path; the scan layer ships wider
    /// kernels over the same representation.
    pub fn for_each_in_range(&self, lo: i64, hi: i64, mut f: impl FnMut(u32)) {
        match self {
            EncodedColumn::Packed(p) => {
                let Some((clo, chi)) = p.code_bounds(lo, hi) else {
                    return;
                };
                for i in 0..p.len() {
                    let c = p.code_at(i);
                    if clo <= c && c <= chi {
                        f(i as u32);
                    }
                }
            }
            EncodedColumn::Rle(r) => {
                let mut start = 0u32;
                for (k, &v) in r.values.iter().enumerate() {
                    let end = r.ends[k];
                    if lo <= v && v <= hi {
                        for i in start..end {
                            f(i);
                        }
                    }
                    start = end;
                }
            }
        }
    }
}

/// The encoded form of one sealed segment: one optional [`EncodedColumn`]
/// per schema column (`None` = the column stays raw — floats, strings, or
/// no encoding beat the raw array).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentEncoding {
    /// Per-column encodings, in schema order.
    pub cols: Vec<Option<EncodedColumn>>,
}

impl SegmentEncoding {
    /// Total heap bytes across the encoded columns.
    pub fn bytes(&self) -> usize {
        self.cols.iter().flatten().map(EncodedColumn::bytes).sum()
    }

    /// Number of columns that carry an encoding.
    pub fn encoded_cols(&self) -> usize {
        self.cols.iter().flatten().count()
    }

    /// Rows this encoding covers, or `None` if no column is encoded (a
    /// raw-canonical seal covers nothing — scans read the flat arrays).
    /// All encoded columns of one segment cover the same row count, so the
    /// first one answers for all.
    pub fn covered_rows(&self) -> Option<usize> {
        self.cols.iter().flatten().next().map(EncodedColumn::len)
    }
}

/// Raw in-memory bytes of one row of `col` (heap payload of strings is
/// excluded — string columns are never encoding candidates anyway).
pub fn raw_row_bytes(col: &Column) -> usize {
    match col {
        Column::I32(_) | Column::Key { .. } | Column::Dict(_) => 4,
        Column::I64(_) | Column::F64(_) => 8,
        Column::Str(_) => 8,
    }
}

/// Reads the slot range of `col` into the logical `i64` domain, or `None`
/// for columns that have none (floats, strings).
fn gather(col: &Column, range: Range<usize>) -> Option<Vec<i64>> {
    match col {
        Column::I32(v) => Some(v[range].iter().map(|&x| i64::from(x)).collect()),
        Column::I64(v) => Some(v[range].to_vec()),
        Column::Key { keys, .. } => Some(keys[range].iter().map(|&k| i64::from(k)).collect()),
        Column::Dict(d) => Some(d.codes()[range].iter().map(|&c| i64::from(c)).collect()),
        Column::F64(_) | Column::Str(_) => None,
    }
}

/// Chooses and builds the encoding of one column over one segment's slot
/// range, or `None` if no encoding is strictly smaller than the raw array.
/// All slots in `range` are encoded, live or dead, so a decode reproduces
/// the raw array exactly.
pub fn encode_column(col: &Column, range: Range<usize>) -> Option<EncodedColumn> {
    if range.is_empty() {
        return None;
    }
    let is_key = matches!(col, Column::Key { .. });
    let vals = gather(col, range)?;
    // One stats pass: run count, real bounds, NULL count (keys only).
    let mut runs = 0usize;
    let mut prev: Option<i64> = None;
    let mut real_min = i64::MAX;
    let mut real_max = i64::MIN;
    let mut nulls = 0usize;
    for &v in &vals {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
        if is_key && v == NULL_KEY as i64 {
            nulls += 1;
        } else {
            real_min = real_min.min(v);
            real_max = real_max.max(v);
        }
    }
    let (base, max_code, null_code) = if nulls == vals.len() {
        // All-NULL key segment: one code, standing for NULL.
        (NULL_KEY as i64, 0, Some(0))
    } else if nulls > 0 {
        let span = real_max.wrapping_sub(real_min) as u64;
        let nc = span.checked_add(1)?;
        (real_min, nc, Some(nc))
    } else {
        (real_min, real_max.wrapping_sub(real_min) as u64, None)
    };
    let raw_bytes = raw_row_bytes(col) * vals.len();
    let packed_bytes = PackedInts::bytes_for(vals.len(), max_code);
    let rle_bytes = runs * 12;
    let packed_wins = packed_bytes.is_some_and(|p| p < raw_bytes && p <= rle_bytes);
    if packed_wins {
        PackedInts::build(&vals, base, max_code, null_code).map(EncodedColumn::Packed)
    } else if rle_bytes < raw_bytes {
        Some(EncodedColumn::Rle(RleInts::build(&vals)))
    } else {
        None
    }
}

/// Builds the full per-column encoding of one segment (see
/// [`encode_column`]); `None` entries are columns left raw.
pub fn encode_segment(columns: &[Column], range: Range<usize>) -> SegmentEncoding {
    SegmentEncoding { cols: columns.iter().map(|c| encode_column(c, range.clone())).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::DictColumn;

    fn int_col(vals: &[i64]) -> Column {
        Column::I64(vals.to_vec())
    }

    fn oracle(vals: &[i64], lo: i64, hi: i64) -> Vec<u32> {
        vals.iter()
            .enumerate()
            .filter(|&(_, &v)| lo <= v && v <= hi)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn scan(enc: &EncodedColumn, lo: i64, hi: i64) -> Vec<u32> {
        let mut out = Vec::new();
        enc.for_each_in_range(lo, hi, |r| out.push(r));
        out
    }

    #[test]
    fn packed_roundtrips_every_slot() {
        let vals: Vec<i64> = (0..1000).map(|i| 1_000_000 + (i * 37) % 513).collect();
        let enc = encode_column(&int_col(&vals), 0..vals.len()).expect("should encode");
        assert_eq!(enc.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.value_at(i), v, "slot {i}");
        }
        assert!(enc.bytes() < vals.len() * 8, "must be smaller than raw");
    }

    #[test]
    fn packed_guard_bit_is_always_zero() {
        let vals: Vec<i64> = (0..777).map(|i| (i * 11) % 300).collect();
        let EncodedColumn::Packed(p) = encode_column(&int_col(&vals), 0..vals.len()).unwrap()
        else {
            panic!("expected packed")
        };
        let w = p.width() as usize;
        let lanes = p.lanes();
        let mut guard = 0u64;
        for j in 0..lanes {
            guard |= 1u64 << (j * w + w - 1);
        }
        for &word in p.words() {
            assert_eq!(word & guard, 0, "guard bit set in {word:#x}");
        }
    }

    #[test]
    fn scan_range_matches_oracle_across_widths() {
        // Domains sized to hit widths from 2 up to the cap.
        for bits in [1u32, 3, 7, 12, 20, 31] {
            let m = 1i64 << bits;
            let vals: Vec<i64> =
                (0..513).map(|i: i64| (i.wrapping_mul(2654435761) % m + m) % m).collect();
            let enc = encode_column(&int_col(&vals), 0..vals.len()).expect("encodes");
            for (lo, hi) in [
                (0, m - 1),
                (m / 4, m / 2),
                (-5, 3),
                (m - 1, m + 100),
                (i64::MIN, i64::MAX),
                (5, 4),
            ] {
                assert_eq!(scan(&enc, lo, hi), oracle(&vals, lo, hi), "bits={bits} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn wide_offsets_stay_raw() {
        // A span needing > 31 data bits cannot pack; two runs won't RLE a
        // 4-row column below raw either.
        let vals = vec![0, i64::MAX, 0, i64::MAX];
        assert_eq!(encode_column(&int_col(&vals), 0..4), None);
    }

    #[test]
    fn negative_bases_work() {
        let vals: Vec<i64> = (0..200).map(|i| -500 + i * 3).collect();
        let enc = encode_column(&int_col(&vals), 0..vals.len()).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.value_at(i), v);
        }
        assert_eq!(scan(&enc, -100, 40), oracle(&vals, -100, 40));
    }

    #[test]
    fn key_nulls_map_to_top_code_order_preserved() {
        let keys: Vec<u32> =
            (0..300).map(|i| if i % 7 == 0 { NULL_KEY } else { 10 + (i % 50) }).collect();
        let col = Column::Key { target: "d".into(), keys: keys.clone() };
        let vals: Vec<i64> = keys.iter().map(|&k| i64::from(k)).collect();
        let EncodedColumn::Packed(p) = encode_column(&col, 0..keys.len()).unwrap() else {
            panic!("expected packed")
        };
        assert_eq!(p.null_code(), Some(p.max_code()));
        let enc = EncodedColumn::Packed(p);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.value_at(i), v, "NULL must read back as NULL_KEY");
        }
        // Predicates that include / exclude NULL_KEY behave like the flat
        // evaluator, which treats NULL_KEY as the literal largest key.
        for (lo, hi) in [
            (0, NULL_KEY as i64),     // everything, NULL included
            (0, NULL_KEY as i64 - 1), // everything but NULL
            (60, NULL_KEY as i64),    // NULL only (reals stop at 59)
            (NULL_KEY as i64, NULL_KEY as i64),
        ] {
            assert_eq!(scan(&enc, lo, hi), oracle(&vals, lo, hi), "[{lo},{hi}]");
        }
    }

    #[test]
    fn all_null_key_segment() {
        let keys = vec![NULL_KEY; 64];
        let col = Column::Key { target: "d".into(), keys };
        let enc = encode_column(&col, 0..64).unwrap();
        for i in 0..64 {
            assert_eq!(enc.value_at(i), NULL_KEY as i64);
        }
        assert_eq!(scan(&enc, 0, NULL_KEY as i64).len(), 64);
        assert_eq!(scan(&enc, 0, NULL_KEY as i64 - 1).len(), 0);
        assert_eq!(scan(&enc, 5, 4).len(), 0);
    }

    #[test]
    fn rle_wins_on_clustered_values() {
        // 8 long runs over 4096 rows: RLE ≈ 96 bytes vs packed ≈ 1 KiB.
        let vals: Vec<i64> = (0..4096).map(|i| i64::from(i / 512)).collect();
        let enc = encode_column(&int_col(&vals), 0..vals.len()).unwrap();
        let EncodedColumn::Rle(r) = &enc else { panic!("expected RLE, got {enc:?}") };
        assert_eq!(r.run_count(), 8);
        assert_eq!(enc.len(), 4096);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(enc.value_at(i), v);
        }
        assert_eq!(scan(&enc, 2, 5), oracle(&vals, 2, 5));
        assert_eq!(scan(&enc, 3, 3), oracle(&vals, 3, 3));
        assert_eq!(scan(&enc, 9, 99), Vec::<u32>::new());
    }

    #[test]
    fn constant_column_is_one_run() {
        let vals = vec![0i64; 1000];
        let enc = encode_column(&int_col(&vals), 0..1000).unwrap();
        let EncodedColumn::Rle(r) = &enc else { panic!("expected RLE") };
        assert_eq!(r.run_count(), 1);
        assert_eq!(r.ends(), &[1000]);
        assert_eq!(enc.bytes(), 12);
    }

    #[test]
    fn sub_range_encoding_is_segment_relative() {
        let vals: Vec<i64> = (0..100).collect();
        let enc = encode_column(&int_col(&vals), 40..60).unwrap();
        assert_eq!(enc.len(), 20);
        assert_eq!(enc.value_at(0), 40);
        assert_eq!(scan(&enc, 45, 47), vec![5, 6, 7]);
    }

    #[test]
    fn floats_and_strings_never_encode() {
        assert_eq!(encode_column(&Column::F64(vec![1.0; 64]), 0..64), None);
        let mut s = crate::strings::StrColumn::new();
        for _ in 0..64 {
            s.push("x");
        }
        assert_eq!(encode_column(&Column::Str(s), 0..64), None);
    }

    #[test]
    fn dict_codes_pack_to_domain_width() {
        let vals: Vec<String> = (0..512).map(|i| format!("v{:02}", i % 12)).collect();
        let col = Column::Dict(DictColumn::from_values(vals.iter()));
        let EncodedColumn::Packed(p) = encode_column(&col, 0..512).unwrap() else {
            panic!("expected packed")
        };
        // 12 distinct codes → 4 data bits + guard = 5-bit lanes.
        assert_eq!(p.width(), 5);
        assert_eq!(p.bytes(), 512usize.div_ceil(12) * 8);
    }

    #[test]
    fn i32_extremes_stay_raw() {
        // A span of u32::MAX offsets needs 32 data bits: unpackable, and
        // two runs over two rows beat nothing.
        let col = Column::I32(vec![i32::MIN, i32::MAX]);
        assert_eq!(encode_column(&col, 0..2), None);
    }

    #[test]
    fn encode_segment_covers_all_columns() {
        let cols = vec![
            int_col(&(0..256).map(|i| i % 7).collect::<Vec<_>>()),
            Column::F64(vec![0.5; 256]),
            Column::I32((0..256).map(|_| 3).collect()),
        ];
        let seg = encode_segment(&cols, 0..256);
        assert_eq!(seg.cols.len(), 3);
        assert!(seg.cols[0].is_some());
        assert!(seg.cols[1].is_none(), "floats stay raw");
        assert!(seg.cols[2].is_some());
        assert_eq!(seg.encoded_cols(), 2);
        assert!(seg.bytes() > 0);
    }

    #[test]
    fn packed_from_parts_roundtrips_and_rejects_corruption() {
        let mut keys: Vec<i64> = (0..300).map(|i| 1000 + (i * 13) % 97).collect();
        keys[7] = NULL_KEY as i64;
        keys[200] = NULL_KEY as i64;
        let col =
            Column::Key { target: "d".into(), keys: keys.iter().map(|&k| k as u32).collect() };
        let EncodedColumn::Packed(p) = encode_column(&col, 0..300).unwrap() else {
            panic!("expected packed")
        };
        let rebuilt = PackedInts::from_parts(
            p.base(),
            p.len() as u32,
            p.max_code(),
            p.null_code().is_some(),
            p.words().to_vec(),
        )
        .expect("valid parts reassemble");
        assert_eq!(rebuilt, p);

        // Wrong word count.
        assert!(
            PackedInts::from_parts(p.base(), p.len() as u32, p.max_code(), true, vec![]).is_none()
        );
        // A set guard bit (a code above max_code) is rejected.
        let mut bad = p.words().to_vec();
        bad[0] |= 1u64 << (p.width() - 1);
        assert!(PackedInts::from_parts(p.base(), p.len() as u32, p.max_code(), true, bad).is_none());
        // A nonzero tail lane past `len` is rejected.
        let lanes = p.lanes();
        if p.len() % lanes != 0 {
            let mut bad = p.words().to_vec();
            let tail = p.len() % lanes;
            *bad.last_mut().unwrap() |= 1u64 << (tail * p.width() as usize);
            assert!(
                PackedInts::from_parts(p.base(), p.len() as u32, p.max_code(), true, bad).is_none()
            );
        }
        // An unpackable width is rejected.
        assert!(PackedInts::from_parts(0, 0, u64::MAX, false, vec![]).is_none());
    }

    #[test]
    fn rle_from_parts_roundtrips_and_rejects_corruption() {
        let vals: Vec<i64> = (0..200).map(|i| i / 50).collect();
        let EncodedColumn::Rle(r) = encode_column(&int_col(&vals), 0..200).unwrap() else {
            panic!("expected rle")
        };
        let rebuilt = RleInts::from_parts(r.values().to_vec(), r.ends().to_vec())
            .expect("valid parts reassemble");
        assert_eq!(rebuilt, r);

        // Length mismatch, non-increasing ends, zero first end, and
        // adjacent equal values (non-canonical) are all rejected.
        assert!(RleInts::from_parts(vec![1], vec![]).is_none());
        assert!(RleInts::from_parts(vec![1, 2], vec![50, 50]).is_none());
        assert!(RleInts::from_parts(vec![1, 2], vec![0, 50]).is_none());
        assert!(RleInts::from_parts(vec![3, 3], vec![10, 20]).is_none());
    }
}
