//! Variable-length string storage (paper §2).
//!
//! "As to a column of variable length, e.g., varchar, we do not store the
//! contents of the column in its array directly. Instead, we store its
//! contents in a dynamically allocated memory space and keep their addresses
//! in the array." The fixed-width slot array keeps tuples addressable by
//! position while the bytes live in an append-only heap, which is also what
//! makes *in-place update* (§4.4) possible: an update appends new bytes and
//! swaps the slot reference without touching neighbouring tuples.

use bytes::{Bytes, BytesMut};

/// A fixed-width reference into a [`StrHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrRef {
    /// Byte offset of the string in the heap.
    pub offset: u32,
    /// Byte length of the string.
    pub len: u32,
}

impl StrRef {
    /// The reference used for never-written slots.
    pub const EMPTY: StrRef = StrRef { offset: 0, len: 0 };
}

/// Append-only UTF-8 byte heap. Frozen slabs are immutable [`Bytes`]; the
/// active slab is a [`BytesMut`] that is frozen once full.
#[derive(Debug, Clone, Default)]
pub struct StrHeap {
    frozen: Vec<Bytes>,
    active: BytesMut,
    /// Cumulative byte length of the frozen slabs, so offsets stay global.
    frozen_len: usize,
}

/// Bytes per slab before freezing. Small enough to bound copy amplification,
/// big enough that slab chasing is rare.
const SLAB_BYTES: usize = 1 << 20;

impl StrHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        StrHeap::default()
    }

    /// Appends a string and returns its reference.
    pub fn push(&mut self, s: &str) -> StrRef {
        assert!(s.len() <= u32::MAX as usize, "string too long");
        if self.active.len() + s.len() > SLAB_BYTES && !self.active.is_empty() {
            let full = std::mem::take(&mut self.active).freeze();
            self.frozen_len += full.len();
            self.frozen.push(full);
        }
        let offset = (self.frozen_len + self.active.len()) as u32;
        self.active.extend_from_slice(s.as_bytes());
        StrRef { offset, len: s.len() as u32 }
    }

    /// Resolves a reference to its string slice.
    pub fn get(&self, r: StrRef) -> &str {
        let start = r.offset as usize;
        let end = start + r.len as usize;
        // Locate the slab holding the range. References never straddle slabs
        // because a slab is frozen before an append would overflow it.
        let mut base = 0usize;
        for slab in &self.frozen {
            if end <= base + slab.len() {
                return std::str::from_utf8(&slab[start - base..end - base])
                    .expect("heap holds valid UTF-8");
            }
            base += slab.len();
        }
        std::str::from_utf8(&self.active[start - base..end - base]).expect("heap holds valid UTF-8")
    }

    /// Total stored bytes (including dead strings superseded by updates).
    pub fn size_bytes(&self) -> usize {
        self.frozen_len + self.active.len()
    }
}

/// A string column: an aligned array of fixed-width [`StrRef`] slots plus the
/// shared heap.
#[derive(Debug, Clone, Default)]
pub struct StrColumn {
    slots: Vec<StrRef>,
    heap: StrHeap,
}

impl StrColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        StrColumn::default()
    }

    /// Creates a column from an iterator of strings.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut col = StrColumn::new();
        for v in values {
            col.push(v.as_ref());
        }
        col
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the column has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a value, returning its slot index.
    pub fn push(&mut self, s: &str) -> usize {
        let r = self.heap.push(s);
        self.slots.push(r);
        self.slots.len() - 1
    }

    /// Reads the value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> &str {
        self.heap.get(self.slots[row])
    }

    /// In-place update (§4.4): the new bytes go to the heap; only this slot's
    /// reference changes, so inbound AIR references remain valid.
    pub fn update(&mut self, row: usize, s: &str) {
        let r = self.heap.push(s);
        self.slots[row] = r;
    }

    /// Heap bytes in use (live + superseded).
    pub fn heap_bytes(&self) -> usize {
        self.heap.size_bytes()
    }

    /// Iterates over all values in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.slots.iter().map(move |&r| self.heap.get(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut col = StrColumn::new();
        let a = col.push("ASIA");
        let b = col.push("EUROPE");
        let c = col.push("");
        assert_eq!(col.get(a), "ASIA");
        assert_eq!(col.get(b), "EUROPE");
        assert_eq!(col.get(c), "");
        assert_eq!(col.len(), 3);
    }

    #[test]
    fn from_iter_preserves_order() {
        let col = StrColumn::from_iter(["x", "y", "z"]);
        let vals: Vec<&str> = col.iter().collect();
        assert_eq!(vals, vec!["x", "y", "z"]);
    }

    #[test]
    fn in_place_update_changes_only_target_slot() {
        let mut col = StrColumn::from_iter(["one", "two", "three"]);
        col.update(1, "a much longer replacement value");
        assert_eq!(col.get(0), "one");
        assert_eq!(col.get(1), "a much longer replacement value");
        assert_eq!(col.get(2), "three");
    }

    #[test]
    fn update_can_shrink_and_grow() {
        let mut col = StrColumn::from_iter(["abcdef"]);
        col.update(0, "x");
        assert_eq!(col.get(0), "x");
        col.update(0, "xxxxxxxxxxxxxxxx");
        assert_eq!(col.get(0), "xxxxxxxxxxxxxxxx");
    }

    #[test]
    fn slab_rollover_keeps_offsets_global() {
        let mut col = StrColumn::new();
        let big = "b".repeat(300_000);
        // 8 * 300 KB crosses the 1 MiB slab boundary more than once.
        for _ in 0..8 {
            col.push(&big);
        }
        col.push("tail");
        for i in 0..8 {
            assert_eq!(col.get(i).len(), 300_000);
        }
        assert_eq!(col.get(8), "tail");
        assert!(col.heap_bytes() >= 2_400_004);
    }

    #[test]
    fn unicode_content() {
        let mut col = StrColumn::new();
        col.push("héllo wörld");
        col.push("中国");
        assert_eq!(col.get(0), "héllo wörld");
        assert_eq!(col.get(1), "中国");
    }
}
