//! Copy-on-write snapshots for concurrent OLTP + OLAP (paper §4.4).
//!
//! The paper sketches a Hyper-style MVCC where "a copy-on-write mechanism
//! … isolate\[s\] OLTP and OLAP workloads". We realise the same property at
//! two levels of granularity:
//!
//! - the catalog itself lives behind an `Arc<Database>`, so taking a
//!   snapshot is a single reference-count bump — **no allocation, no table
//!   map copy** on the read path;
//! - inside a [`Database`], tables are `Arc`-shared, so a writer that runs
//!   while snapshots are outstanding clones only the catalog map
//!   (`Arc::make_mut` on the database) and the tables it actually touches
//!   (`Arc::make_mut` per table).
//!
//! Readers therefore observe a stable, consistent image for the whole
//! duration of a query, while writers proceed without blocking on them.
//! The write latch serialises writers and snapshot acquisition only; it is
//! never held while a query runs.

use std::sync::{Arc, RwLock};

use crate::catalog::Database;
use crate::table::Table;
use crate::types::{RowId, Value};

/// A concurrently usable database handle.
///
/// Cloning the handle is cheap; all clones share the same underlying state.
#[derive(Debug, Clone, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Arc<Database>>>,
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: Database) -> Self {
        SharedDatabase { inner: Arc::new(RwLock::new(Arc::new(db))) }
    }

    /// Takes a consistent snapshot: an `Arc` share of the live catalog.
    /// O(1) — one atomic increment, no data copied, no allocation.
    /// Subsequent writes copy-on-write and never disturb it.
    pub fn snapshot(&self) -> Arc<Database> {
        // Recover from poisoning (parking_lot-style): a panicking writer
        // must not wedge every future reader.
        let guard = self.inner.read().unwrap_or_else(|p| p.into_inner());
        Arc::clone(&guard)
    }

    /// Runs a closure with mutable access to the live database. The write
    /// latch only serialises *writers* and snapshot acquisition; readers
    /// holding earlier snapshots are unaffected. All mutations inside one
    /// `write` call become visible atomically to later snapshots.
    ///
    /// Poisoning is recovered from (availability over strictness), so a
    /// closure that *panics* mid-mutation can leave a partially applied
    /// write visible when no snapshot was outstanding (in-place
    /// `Arc::make_mut` path). Callers that cannot tolerate this must
    /// validate before mutating — the serving layer
    /// (`astore-server`) does exactly that.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        f(Arc::make_mut(&mut guard))
    }

    /// Publishes a fully built catalog image, replacing the live one. The
    /// group-commit path builds its batch on a private clone (validating
    /// and applying *outside* the latch) and swaps it in here — the latch
    /// is held only for the pointer swap, so readers taking snapshots
    /// never wait on statement application or WAL I/O.
    pub fn replace(&self, db: Arc<Database>) {
        let mut guard = self.inner.write().unwrap_or_else(|p| p.into_inner());
        *guard = db;
    }

    /// Convenience: insert a row into a table. Returns the new row id.
    pub fn insert(&self, table: &str, values: &[Value]) -> RowId {
        self.write(|db| {
            db.table_mut(table).unwrap_or_else(|| panic!("no table {table:?}")).insert(values)
        })
    }

    /// Convenience: lazily delete a row.
    pub fn delete(&self, table: &str, row: RowId) -> bool {
        self.write(|db| {
            db.table_mut(table).unwrap_or_else(|| panic!("no table {table:?}")).delete(row)
        })
    }

    /// Convenience: in-place update of one field.
    pub fn update(&self, table: &str, row: RowId, column: &str, value: &Value) {
        self.write(|db| {
            db.table_mut(table)
                .unwrap_or_else(|| panic!("no table {table:?}"))
                .update(row, column, value)
        })
    }

    /// Convenience: register a table.
    pub fn add_table(&self, table: Table) {
        self.write(|db| db.add_table(table));
    }

    /// Consolidates a table (paper §4.4), rewriting inbound references.
    /// Intended for idle periods; holds the write latch for the duration.
    pub fn consolidate(&self, table: &str) {
        self.write(|db| db.consolidate(table));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Schema};
    use crate::types::DataType;

    fn shared_dim() -> SharedDatabase {
        let mut db = Database::new();
        let mut t = Table::new("dim", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        for i in 0..4 {
            t.append_row(&[Value::Int(i)]);
        }
        db.add_table(t);
        SharedDatabase::new(db)
    }

    #[test]
    fn snapshot_isolated_from_later_writes() {
        let shared = shared_dim();
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_live(), 4);

        shared.insert("dim", &[Value::Int(99)]);
        shared.delete("dim", 0);
        shared.update("dim", 1, "v", &Value::Int(-1));

        // The old snapshot still sees the original image.
        let dim = snap.table("dim").unwrap();
        assert_eq!(dim.num_live(), 4);
        assert_eq!(dim.row(0), vec![Value::Int(0)]);
        assert_eq!(dim.row(1), vec![Value::Int(1)]);

        // A fresh snapshot sees the new state.
        let now = shared.snapshot();
        let dim = now.table("dim").unwrap();
        assert_eq!(dim.num_live(), 4); // 4 + 1 insert − 1 delete
        assert_eq!(dim.num_slots(), 5);
        assert!(!dim.is_live(0));
        assert_eq!(dim.row(1), vec![Value::Int(-1)]);
    }

    #[test]
    fn snapshots_share_storage_until_written() {
        let shared = shared_dim();
        let a = shared.snapshot();
        let b = shared.snapshot();
        // Snapshots of an unchanged database are the same catalog object.
        assert!(Arc::ptr_eq(&a, &b));
        // …and share table storage with the live state.
        let live = shared.snapshot();
        assert!(Arc::ptr_eq(&a.table_arc("dim").unwrap(), &live.table_arc("dim").unwrap()));
        // A write severs the catalog share but leaves old snapshots intact.
        shared.insert("dim", &[Value::Int(5)]);
        let after = shared.snapshot();
        assert!(!Arc::ptr_eq(&a, &after));
        assert_eq!(a.table("dim").unwrap().num_live(), 4);
    }

    #[test]
    fn writes_without_snapshot_do_not_copy() {
        let shared = shared_dim();
        // No snapshot outstanding: make_mut mutates in place. (Behavioural
        // check: values observable after write.)
        shared.insert("dim", &[Value::Int(123)]);
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_live(), 5);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let shared = shared_dim();
        let reader = shared.clone();
        let writer = shared.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                writer.insert("dim", &[Value::Int(i)]);
            }
        });
        for _ in 0..50 {
            let snap = reader.snapshot();
            let n = snap.table("dim").unwrap().num_live();
            assert!((4..=104).contains(&n));
        }
        handle.join().unwrap();
        assert_eq!(shared.snapshot().table("dim").unwrap().num_live(), 104);
    }

    #[test]
    fn consolidate_through_shared_handle() {
        let shared = shared_dim();
        shared.delete("dim", 2);
        shared.consolidate("dim");
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_slots(), 3);
        assert_eq!(snap.table("dim").unwrap().num_live(), 3);
    }
}
