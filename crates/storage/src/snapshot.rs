//! Copy-on-write snapshots for concurrent OLTP + OLAP (paper §4.4).
//!
//! The paper sketches a Hyper-style MVCC where "a copy-on-write mechanism
//! … isolate[s] OLTP and OLAP workloads". We realise the same property at
//! table granularity: a [`SharedDatabase`] hands out immutable [`Database`]
//! snapshots whose tables are `Arc`-shared; writers mutate through
//! `Arc::make_mut`, which clones a table only while a reader still holds it.
//! Readers therefore observe a stable, consistent image for the whole
//! duration of a query, while writers proceed without blocking on them.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::catalog::Database;
use crate::table::Table;
use crate::types::{RowId, Value};

/// A concurrently usable database handle.
///
/// Cloning the handle is cheap; all clones share the same underlying state.
#[derive(Debug, Clone, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    /// Wraps a database for shared use.
    pub fn new(db: Database) -> Self {
        SharedDatabase { inner: Arc::new(RwLock::new(db)) }
    }

    /// Takes a consistent snapshot. The snapshot is an owned [`Database`]
    /// whose tables are `Arc`-shared with the live state — O(#tables), no
    /// data copied. Subsequent writes copy-on-write and never disturb it.
    pub fn snapshot(&self) -> Database {
        self.inner.read().clone()
    }

    /// Runs a closure with mutable access to the live database. The write
    /// latch only serialises *writers* and snapshot acquisition; readers
    /// holding earlier snapshots are unaffected.
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Convenience: insert a row into a table. Returns the new row id.
    pub fn insert(&self, table: &str, values: &[Value]) -> RowId {
        self.write(|db| {
            db.table_mut(table)
                .unwrap_or_else(|| panic!("no table {table:?}"))
                .insert(values)
        })
    }

    /// Convenience: lazily delete a row.
    pub fn delete(&self, table: &str, row: RowId) -> bool {
        self.write(|db| {
            db.table_mut(table)
                .unwrap_or_else(|| panic!("no table {table:?}"))
                .delete(row)
        })
    }

    /// Convenience: in-place update of one field.
    pub fn update(&self, table: &str, row: RowId, column: &str, value: &Value) {
        self.write(|db| {
            db.table_mut(table)
                .unwrap_or_else(|| panic!("no table {table:?}"))
                .update(row, column, value)
        })
    }

    /// Convenience: register a table.
    pub fn add_table(&self, table: Table) {
        self.write(|db| db.add_table(table));
    }

    /// Consolidates a table (paper §4.4), rewriting inbound references.
    /// Intended for idle periods; holds the write latch for the duration.
    pub fn consolidate(&self, table: &str) {
        self.write(|db| db.consolidate(table));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Schema};
    use crate::types::DataType;

    fn shared_dim() -> SharedDatabase {
        let mut db = Database::new();
        let mut t = Table::new(
            "dim",
            Schema::new(vec![ColumnDef::new("v", DataType::I64)]),
        );
        for i in 0..4 {
            t.append_row(&[Value::Int(i)]);
        }
        db.add_table(t);
        SharedDatabase::new(db)
    }

    #[test]
    fn snapshot_isolated_from_later_writes() {
        let shared = shared_dim();
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_live(), 4);

        shared.insert("dim", &[Value::Int(99)]);
        shared.delete("dim", 0);
        shared.update("dim", 1, "v", &Value::Int(-1));

        // The old snapshot still sees the original image.
        let dim = snap.table("dim").unwrap();
        assert_eq!(dim.num_live(), 4);
        assert_eq!(dim.row(0), vec![Value::Int(0)]);
        assert_eq!(dim.row(1), vec![Value::Int(1)]);

        // A fresh snapshot sees the new state.
        let now = shared.snapshot();
        let dim = now.table("dim").unwrap();
        assert_eq!(dim.num_live(), 4); // 4 + 1 insert − 1 delete
        assert_eq!(dim.num_slots(), 5);
        assert!(!dim.is_live(0));
        assert_eq!(dim.row(1), vec![Value::Int(-1)]);
    }

    #[test]
    fn writes_without_snapshot_do_not_copy() {
        let shared = shared_dim();
        // No snapshot outstanding: make_mut mutates in place. (Behavioural
        // check: values observable after write.)
        shared.insert("dim", &[Value::Int(123)]);
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_live(), 5);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let shared = shared_dim();
        let reader = shared.clone();
        let writer = shared.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                writer.insert("dim", &[Value::Int(i)]);
            }
        });
        for _ in 0..50 {
            let snap = reader.snapshot();
            let n = snap.table("dim").unwrap().num_live();
            assert!((4..=104).contains(&n));
        }
        handle.join().unwrap();
        assert_eq!(shared.snapshot().table("dim").unwrap().num_live(), 104);
    }

    #[test]
    fn consolidate_through_shared_handle() {
        let shared = shared_dim();
        shared.delete("dim", 2);
        shared.consolidate("dim");
        let snap = shared.snapshot();
        assert_eq!(snap.table("dim").unwrap().num_slots(), 3);
        assert_eq!(snap.table("dim").unwrap().num_live(), 3);
    }
}
