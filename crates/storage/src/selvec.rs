//! Selection vectors (paper §4.1, "vector based column scan").
//!
//! A selection vector records the row ids of the tuples that are still alive
//! after the predicates evaluated so far. Each further predicate *refines*
//! the vector in place: a tuple that fails any predicate "is immediately
//! removed from the selection vector, and will not be evaluated again",
//! which is what lets A-Store skip most of a universal table under
//! selective predicates.

use crate::bitmap::Bitmap;
use crate::types::RowId;

/// A list of surviving row ids, kept in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    rows: Vec<RowId>,
}

impl SelVec {
    /// An empty selection vector.
    pub fn new() -> Self {
        SelVec { rows: Vec::new() }
    }

    /// Selects every row in `0..n`.
    pub fn all(n: usize) -> Self {
        SelVec { rows: (0..n as RowId).collect() }
    }

    /// Selects the set bits of a bitmap (e.g. the live bits of a delete
    /// vector).
    pub fn from_bitmap(bm: &Bitmap) -> Self {
        SelVec { rows: bm.iter_ones().map(|i| i as RowId).collect() }
    }

    /// Builds from an explicit row id list. Callers must supply ascending,
    /// duplicate-free ids (checked in debug builds only).
    pub fn from_rows(rows: Vec<RowId>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "row ids must be strictly ascending");
        SelVec { rows }
    }

    /// Number of selected rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows survive.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The surviving row ids.
    #[inline]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// Consumes the vector, returning its row ids.
    pub fn into_rows(self) -> Vec<RowId> {
        self.rows
    }

    /// Retains only the rows for which `keep` returns `true`. This is the
    /// per-predicate refinement step of the vectorized column scan; it is
    /// done in place with a single compaction pass.
    pub fn refine(&mut self, mut keep: impl FnMut(RowId) -> bool) {
        self.rows.retain(|&r| keep(r));
    }

    /// Converts to a bitmap of length `n`.
    pub fn to_bitmap(&self, n: usize) -> Bitmap {
        let mut bm = Bitmap::new(n, false);
        for &r in &self.rows {
            bm.set(r as usize, true);
        }
        bm
    }

    /// Selectivity relative to a base table of `n` rows.
    pub fn selectivity(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.rows.len() as f64 / n as f64
        }
    }
}

impl FromIterator<RowId> for SelVec {
    fn from_iter<T: IntoIterator<Item = RowId>>(iter: T) -> Self {
        SelVec::from_rows(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SelVec {
    type Item = RowId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, RowId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everything() {
        let sv = SelVec::all(5);
        assert_eq!(sv.rows(), &[0, 1, 2, 3, 4]);
        assert_eq!(sv.len(), 5);
        assert!(!sv.is_empty());
    }

    #[test]
    fn refine_narrows_progressively() {
        let mut sv = SelVec::all(100);
        sv.refine(|r| r % 2 == 0);
        assert_eq!(sv.len(), 50);
        sv.refine(|r| r % 10 == 0);
        assert_eq!(sv.rows(), &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        sv.refine(|_| false);
        assert!(sv.is_empty());
    }

    #[test]
    fn bitmap_roundtrip() {
        let bm = Bitmap::from_fn(130, |i| i % 7 == 0);
        let sv = SelVec::from_bitmap(&bm);
        assert_eq!(sv.to_bitmap(130), bm);
    }

    #[test]
    fn selectivity_fraction() {
        let mut sv = SelVec::all(200);
        sv.refine(|r| r < 50);
        assert!((sv.selectivity(200) - 0.25).abs() < 1e-12);
        assert_eq!(SelVec::new().selectivity(0), 0.0);
    }

    #[test]
    fn iteration_is_ascending() {
        let sv = SelVec::from_rows(vec![2, 5, 9]);
        let collected: Vec<RowId> = (&sv).into_iter().collect();
        assert_eq!(collected, vec![2, 5, 9]);
    }

    #[test]
    fn from_iterator() {
        let sv: SelVec = (0..4u32).collect();
        assert_eq!(sv.rows(), &[0, 1, 2, 3]);
    }
}
