//! Dictionary compression (paper §2).
//!
//! "For columns with low cardinality … A-Store uses dictionary compression
//! to reduce their space consumption. A-Store uses arrays to store
//! dictionaries and uses array indexes as compression codes. … a dictionary
//! can be regarded as a reference table in A-Store. The compressed column
//! can be regarded as a foreign key to the reference table."
//!
//! Dictionaries here are *order-preserving* (codes sorted by value), so
//! range predicates on strings compile to code-range comparisons and
//! equality predicates compile to a single code comparison — no `strcmp` in
//! the scan loop (cf. §4.2's complaint about repeated `strcmp`).

use std::collections::HashMap;

use crate::bitmap::Bitmap;
use crate::types::{Key, NULL_KEY};

/// An order-preserving string dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Distinct values, sorted ascending; the code of a value is its index.
    values: Vec<String>,
    /// Reverse map from value to code.
    codes: HashMap<String, Key>,
}

impl Dictionary {
    /// Builds an order-preserving dictionary over the distinct values of
    /// `input`, returning the dictionary and the encoded column.
    pub fn encode<S: AsRef<str>>(input: impl IntoIterator<Item = S>) -> (Self, Vec<Key>) {
        let raw: Vec<String> = input.into_iter().map(|s| s.as_ref().to_owned()).collect();
        let mut distinct: Vec<String> = raw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let codes: HashMap<String, Key> =
            distinct.iter().enumerate().map(|(i, v)| (v.clone(), i as Key)).collect();
        let encoded = raw.iter().map(|v| codes[v]).collect();
        (Dictionary { values: distinct, codes }, encoded)
    }

    /// Creates an empty dictionary (values are interned on demand via
    /// [`Dictionary::intern`]; this variant is *not* order-preserving).
    pub fn new_dynamic() -> Self {
        Dictionary::default()
    }

    /// Rebuilds a dictionary from its value array in code order — the exact
    /// inverse of [`Dictionary::values`], so codes assigned before
    /// serialization stay valid after a reload (order-preserving or not).
    ///
    /// # Panics
    /// Panics on duplicate values.
    pub fn from_values(values: Vec<String>) -> Self {
        let codes: HashMap<String, Key> =
            values.iter().enumerate().map(|(i, v)| (v.clone(), i as Key)).collect();
        assert_eq!(codes.len(), values.len(), "duplicate dictionary value");
        Dictionary { values, codes }
    }

    /// Number of distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the dictionary holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Decodes a compression code back to its value: a plain array lookup,
    /// exactly the paper's "decompression can be performed by simple array
    /// lookup".
    #[inline]
    pub fn decode(&self, code: Key) -> &str {
        &self.values[code as usize]
    }

    /// The code of `value`, or [`NULL_KEY`] if the value does not occur.
    /// Predicates on dictionary columns call this once, then compare codes.
    pub fn code_of(&self, value: &str) -> Key {
        self.codes.get(value).copied().unwrap_or(NULL_KEY)
    }

    /// Interns a value into a dynamic dictionary, returning its (possibly
    /// new) code. Appending keeps existing codes stable, at the cost of the
    /// order-preserving property.
    pub fn intern(&mut self, value: &str) -> Key {
        if let Some(&c) = self.codes.get(value) {
            return c;
        }
        let c = self.values.len() as Key;
        self.values.push(value.to_owned());
        self.codes.insert(value.to_owned(), c);
        c
    }

    /// All distinct values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Evaluates an arbitrary string predicate once per *distinct* value,
    /// producing a bitmap over codes. The scan then tests codes against the
    /// bitmap instead of re-evaluating the predicate per row (paper §4.2).
    pub fn codes_matching(&self, mut pred: impl FnMut(&str) -> bool) -> Bitmap {
        Bitmap::from_fn(self.values.len(), |c| pred(&self.values[c]))
    }

    /// For an order-preserving dictionary: the half-open code range whose
    /// values fall in `[lo, hi]` (inclusive string bounds). Range predicates
    /// become two integer comparisons.
    pub fn code_range(&self, lo: &str, hi: &str) -> std::ops::Range<Key> {
        let start = self.values.partition_point(|v| v.as_str() < lo) as Key;
        let end = self.values.partition_point(|v| v.as_str() <= hi) as Key;
        start..end
    }
}

/// A dictionary-compressed string column: the code array plus its dictionary.
#[derive(Debug, Clone)]
pub struct DictColumn {
    codes: Vec<Key>,
    dict: Dictionary,
}

impl DictColumn {
    /// Encodes `input` into a new dictionary column.
    pub fn from_values<S: AsRef<str>>(input: impl IntoIterator<Item = S>) -> Self {
        let (dict, codes) = Dictionary::encode(input);
        DictColumn { codes, dict }
    }

    /// Creates an empty column with a dynamic dictionary.
    pub fn new() -> Self {
        DictColumn { codes: Vec::new(), dict: Dictionary::new_dynamic() }
    }

    /// Assembles a column from an existing code array and dictionary (used
    /// when materializing a denormalized table: the gathered codes reuse the
    /// source dictionary instead of re-encoding every string).
    ///
    /// # Panics
    /// Panics if any code is out of the dictionary's range.
    pub fn from_parts(codes: Vec<Key>, dict: Dictionary) -> Self {
        let n = dict.len() as Key;
        assert!(codes.iter().all(|&c| c < n), "code out of dictionary range");
        DictColumn { codes, dict }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` if the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code array (the "foreign key to the dictionary").
    #[inline]
    pub fn codes(&self) -> &[Key] {
        &self.codes
    }

    /// The dictionary (the "reference table").
    #[inline]
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Decoded value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> &str {
        self.dict.decode(self.codes[row])
    }

    /// Code at `row`.
    #[inline]
    pub fn code(&self, row: usize) -> Key {
        self.codes[row]
    }

    /// Appends a value, interning it if new.
    pub fn push(&mut self, value: &str) {
        let c = self.dict.intern(value);
        self.codes.push(c);
    }

    /// In-place update of one row's value.
    pub fn update(&mut self, row: usize, value: &str) {
        let c = self.dict.intern(value);
        self.codes[row] = c;
    }

    /// Iterates decoded values in row order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.codes.iter().map(move |&c| self.dict.decode(c))
    }
}

impl Default for DictColumn {
    fn default() -> Self {
        DictColumn::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let input = ["ASIA", "EUROPE", "ASIA", "AMERICA", "ASIA"];
        let (dict, codes) = Dictionary::encode(input);
        assert_eq!(dict.len(), 3);
        for (i, s) in input.iter().enumerate() {
            assert_eq!(dict.decode(codes[i]), *s);
        }
    }

    #[test]
    fn codes_are_order_preserving() {
        let (dict, _) = Dictionary::encode(["b", "a", "c", "a"]);
        assert_eq!(dict.values(), &["a".to_string(), "b".into(), "c".into()]);
        assert!(dict.code_of("a") < dict.code_of("b"));
        assert!(dict.code_of("b") < dict.code_of("c"));
    }

    #[test]
    fn code_of_missing_is_null_key() {
        let (dict, _) = Dictionary::encode(["x"]);
        assert_eq!(dict.code_of("nope"), NULL_KEY);
    }

    #[test]
    fn code_range_for_string_bounds() {
        let (dict, _) = Dictionary::encode(["MFGR#12", "MFGR#13", "MFGR#21", "MFGR#22", "MFGR#23"]);
        let r = dict.code_range("MFGR#21", "MFGR#22");
        let hits: Vec<&str> = (r.start..r.end).map(|c| dict.decode(c)).collect();
        assert_eq!(hits, vec!["MFGR#21", "MFGR#22"]);
        // Bounds that match nothing produce an empty range.
        let empty = dict.code_range("ZZZ", "ZZZZ");
        assert!(empty.is_empty());
    }

    #[test]
    fn codes_matching_builds_bitmap_over_codes() {
        let (dict, _) = Dictionary::encode(["apple", "banana", "avocado", "cherry"]);
        let bm = dict.codes_matching(|v| v.starts_with('a'));
        let matched: Vec<&str> = bm.iter_ones().map(|c| dict.decode(c as Key)).collect();
        assert_eq!(matched, vec!["apple", "avocado"]);
    }

    #[test]
    fn dynamic_intern_is_stable() {
        let mut dict = Dictionary::new_dynamic();
        let a = dict.intern("first");
        let b = dict.intern("second");
        assert_eq!(dict.intern("first"), a);
        assert_eq!(dict.decode(a), "first");
        assert_eq!(dict.decode(b), "second");
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn from_values_preserves_codes() {
        let mut dyn_dict = Dictionary::new_dynamic();
        dyn_dict.intern("zeta");
        dyn_dict.intern("alpha"); // non-sorted code order
        let rebuilt = Dictionary::from_values(dyn_dict.values().to_vec());
        assert_eq!(rebuilt.code_of("zeta"), dyn_dict.code_of("zeta"));
        assert_eq!(rebuilt.code_of("alpha"), dyn_dict.code_of("alpha"));
        assert_eq!(rebuilt.decode(0), "zeta");
    }

    #[test]
    #[should_panic(expected = "duplicate dictionary value")]
    fn from_values_rejects_duplicates() {
        Dictionary::from_values(vec!["a".into(), "a".into()]);
    }

    #[test]
    fn from_parts_reuses_dictionary() {
        let (dict, codes) = Dictionary::encode(["a", "b", "a"]);
        let col = DictColumn::from_parts(codes, dict);
        assert_eq!(col.get(0), "a");
        assert_eq!(col.get(1), "b");
        assert_eq!(col.get(2), "a");
    }

    #[test]
    #[should_panic(expected = "out of dictionary range")]
    fn from_parts_rejects_bad_codes() {
        let (dict, _) = Dictionary::encode(["a"]);
        DictColumn::from_parts(vec![5], dict);
    }

    #[test]
    fn dict_column_roundtrip_and_update() {
        let mut col = DictColumn::from_values(["red", "green", "red"]);
        assert_eq!(col.get(0), "red");
        assert_eq!(col.get(1), "green");
        assert_eq!(col.code(0), col.code(2));
        col.update(1, "blue");
        assert_eq!(col.get(1), "blue");
        col.push("red");
        assert_eq!(col.len(), 4);
        assert_eq!(col.get(3), "red");
        let vals: Vec<&str> = col.iter().collect();
        assert_eq!(vals, vec!["red", "blue", "red", "red"]);
    }
}
