//! Tables as *array families* (paper §2).
//!
//! "We store a relational table in an array family, which is composed of a
//! set of arrays of equal length, each representing a column of the table.
//! … As array indexes can be used to directly locate the tuples in a table,
//! A-Store treats the array index as the primary key of a table."
//!
//! No primary-key column is ever materialized. A [`Table`] additionally
//! carries a *live bitmap* (the inverse of the paper's §4.4 delete vector)
//! and a free-slot list enabling slot reuse for dimension tables.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::encoded::{encode_segment, SegmentEncoding};
use crate::segment::{SegmentZone, DECAY_REBUILD_AFTER_OPS, REBUILD_AFTER_OPS, SEGMENT_ROWS};
use crate::selvec::SelVec;
use crate::types::{DataType, RowId, Value};

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (unique within its table).
    pub name: String,
    /// Physical type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef { name: name.into(), dtype }
    }
}

/// An ordered set of column definitions.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    defs: Vec<ColumnDef>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from column definitions.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(defs: Vec<ColumnDef>) -> Self {
        let mut index = HashMap::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            let prev = index.insert(d.name.clone(), i);
            assert!(prev.is_none(), "duplicate column name {:?}", d.name);
        }
        Schema { defs, index }
    }

    /// The column definitions, in declaration order.
    pub fn defs(&self) -> &[ColumnDef] {
        &self.defs
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.defs.len()
    }

    /// Position of the named column.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Definition of the named column.
    pub fn def(&self, name: &str) -> Option<&ColumnDef> {
        self.position(name).map(|i| &self.defs[i])
    }
}

/// How many stale (superseded) rows a sealed segment tolerates before its
/// seal is voided outright. Below the limit the delta stays cheap for scans
/// (one binary search per encoded hit); above it the encoding is mostly
/// dead weight and the segment reverts to flat until the next seal.
pub const STALE_LIMIT: usize = 1024;

/// Per-segment delta bookkeeping layered over a sealed encoding. Writes go
/// *through* to the flat arrays (which are therefore always current);
/// `stale` records the segment-local offsets whose encoded value was
/// superseded, so scans can patch encoded results from the flat arrays
/// instead of unsealing the whole segment. `epoch` advances on every value
/// write covered by the seal and fences concurrent compaction installs: a
/// compactor that encoded the segment at epoch `e` may only install its
/// result while the epoch is still `e`.
#[derive(Debug, Clone, Default)]
pub struct SegmentDelta {
    stale: Vec<u32>,
    epoch: u64,
}

/// An empty delta stamped with a fresh epoch from the table's counter.
fn fresh_delta(next_epoch: &mut u64) -> SegmentDelta {
    let epoch = *next_epoch;
    *next_epoch += 1;
    SegmentDelta { stale: Vec::new(), epoch }
}

/// A relational table stored as an array family, logically partitioned
/// into fixed-size segments with zone maps (see [`crate::segment`]).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    /// Bit `i` = slot `i` holds a live tuple. The complement is the paper's
    /// delete vector.
    live: Bitmap,
    /// Dead slots available for reuse by inserts (paper §4.4: "The position
    /// of a deleted tuple will later be reused by a newly inserted tuple").
    free: Vec<RowId>,
    /// Rows per segment (fixed per table; default [`SEGMENT_ROWS`]).
    seg_rows: usize,
    /// One zone map per segment; `zones.len() == num_slots().div_ceil(seg_rows)`.
    zones: Vec<SegmentZone>,
    /// One optional encoding per segment, parallel to `zones`. `Some` means
    /// the segment is *sealed*: its columns were re-represented in
    /// compressed form (see [`crate::encoded`]) and scans may read the
    /// encoded words instead of the raw arrays. Value mutations no longer
    /// unseal the segment: they write through to the flat arrays and record
    /// the row in the segment's [`SegmentDelta`]; appends leave the seal
    /// covering its original prefix. The `Arc` lets COW table clones (one
    /// per committed write batch) share the encoded words instead of
    /// re-copying megabytes of sealed data per commit.
    encodings: Vec<Option<Arc<SegmentEncoding>>>,
    /// Per-segment write deltas, parallel to `zones`.
    deltas: Vec<SegmentDelta>,
    /// Monotonic epoch source for `deltas`. Never reused, so a compaction
    /// result raced by *any* later write — even across a zone rebuild that
    /// resets segment geometry — fails its install fence.
    next_epoch: u64,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema.defs().iter().map(|d| Column::new(&d.dtype)).collect();
        Table {
            name: name.into(),
            schema,
            columns,
            live: Bitmap::new(0, false),
            free: Vec::new(),
            seg_rows: SEGMENT_ROWS,
            zones: Vec::new(),
            encodings: Vec::new(),
            deltas: Vec::new(),
            next_epoch: 0,
        }
    }

    /// Bulk-constructs a table from pre-built columns (the data generators'
    /// fast path). All columns must have equal length, matching the
    /// array-family invariant.
    ///
    /// # Panics
    /// Panics if column count or lengths disagree with the schema.
    pub fn from_columns(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(columns.len(), schema.arity(), "column count mismatch");
        let n = columns.first().map_or(0, Column::len);
        for (c, d) in columns.iter().zip(schema.defs()) {
            assert_eq!(c.len(), n, "array family misaligned at column {:?}", d.name);
            assert_eq!(c.dtype(), d.dtype, "type mismatch at column {:?}", d.name);
        }
        let mut t = Table {
            name: name.into(),
            schema,
            columns,
            live: Bitmap::new(n, true),
            free: Vec::new(),
            seg_rows: SEGMENT_ROWS,
            zones: Vec::new(),
            encodings: Vec::new(),
            deltas: Vec::new(),
            next_epoch: 0,
        };
        t.rebuild_zone_maps();
        t
    }

    /// Rebuilds a table from all of its persistent parts — columns, live
    /// bitmap, and free-slot list (the snapshot-loading path, which must
    /// reproduce slot-reuse behaviour exactly, not just the live tuples).
    ///
    /// # Panics
    /// Panics if column lengths or the bitmap length disagree with the
    /// schema, or if a free slot is out of range or still marked live.
    pub fn from_parts(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        live: Bitmap,
        free: Vec<RowId>,
    ) -> Self {
        let mut t = Table::from_parts_unzoned(name, schema, columns, live, free);
        t.rebuild_zone_maps();
        t
    }

    /// Shared validated construction for the `from_parts*` family; zone
    /// maps are left empty for the caller to rebuild or install.
    fn from_parts_unzoned(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        live: Bitmap,
        free: Vec<RowId>,
    ) -> Self {
        assert_eq!(columns.len(), schema.arity(), "column count mismatch");
        let n = columns.first().map_or(live.len(), Column::len);
        for (c, d) in columns.iter().zip(schema.defs()) {
            assert_eq!(c.len(), n, "array family misaligned at column {:?}", d.name);
            assert_eq!(c.dtype(), d.dtype, "type mismatch at column {:?}", d.name);
        }
        assert_eq!(live.len(), n, "live bitmap length mismatch");
        for &slot in &free {
            assert!((slot as usize) < n, "free slot {slot} out of range");
            assert!(!live.get(slot as usize), "free slot {slot} is still live");
        }
        Table {
            name: name.into(),
            schema,
            columns,
            live,
            free,
            seg_rows: SEGMENT_ROWS,
            zones: Vec::new(),
            encodings: Vec::new(),
            deltas: Vec::new(),
            next_epoch: 0,
        }
    }

    /// Rebuilds a table from persisted parts *including* its persisted zone
    /// maps (the snapshot-v2 load path): the zone maps are trusted verbatim
    /// instead of recomputed, so a warm boot prunes immediately and a
    /// re-save reproduces the same bytes. Loaded segments are clean.
    ///
    /// # Panics
    /// Panics on the same invariant violations as [`Table::from_parts`], or
    /// if `seg_rows` is zero or `zones` does not cover the slots.
    pub fn from_parts_with_zones(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        live: Bitmap,
        free: Vec<RowId>,
        seg_rows: usize,
        zones: Vec<SegmentZone>,
    ) -> Self {
        assert!(seg_rows > 0, "segment size must be positive");
        // No rebuild scan here: the persisted zone maps are installed
        // verbatim (the point of persisting them — warm boots skip the
        // O(rows x columns) statistics pass entirely).
        let mut t = Table::from_parts_unzoned(name, schema, columns, live, free);
        assert_eq!(
            zones.len(),
            t.num_slots().div_ceil(seg_rows),
            "zone map count does not cover the slots"
        );
        for z in &zones {
            assert_eq!(z.stats().len(), t.schema.arity(), "zone arity mismatch");
        }
        t.seg_rows = seg_rows;
        t.encodings = vec![None; zones.len()];
        t.deltas = (0..zones.len()).map(|_| fresh_delta(&mut t.next_epoch)).collect();
        t.zones = zones;
        t
    }

    /// The free-slot list, in reuse order (serialization hook: the next
    /// insert pops from the back).
    pub fn free_slots(&self) -> &[RowId] {
        &self.free
    }

    /// Rows per segment.
    pub fn segment_rows(&self) -> usize {
        self.seg_rows
    }

    /// Number of segments (0 for an empty table).
    pub fn segment_count(&self) -> usize {
        self.zones.len()
    }

    /// The slot range of segment `seg`.
    pub fn segment_range(&self, seg: usize) -> std::ops::Range<usize> {
        let start = seg * self.seg_rows;
        start..((start + self.seg_rows).min(self.num_slots()))
    }

    /// The zone map of segment `seg`.
    #[inline]
    pub fn zone(&self, seg: usize) -> &SegmentZone {
        &self.zones[seg]
    }

    /// All zone maps, in segment order.
    pub fn zones(&self) -> &[SegmentZone] {
        &self.zones
    }

    /// Re-partitions the table into `seg_rows`-row segments and rebuilds
    /// every zone map exactly. Mostly a test/tuning hook — production
    /// tables keep the default [`SEGMENT_ROWS`].
    ///
    /// # Panics
    /// Panics if `seg_rows` is zero.
    pub fn set_segment_rows(&mut self, seg_rows: usize) {
        assert!(seg_rows > 0, "segment size must be positive");
        self.seg_rows = seg_rows;
        self.rebuild_zone_maps();
    }

    /// Rebuilds every segment's zone map exactly from the live rows.
    /// Segment geometry may change, so every segment is also unsealed and
    /// its write delta reset (with a fresh epoch, fencing in-flight
    /// compactions that encoded under the old geometry).
    pub fn rebuild_zone_maps(&mut self) {
        let nsegs = self.num_slots().div_ceil(self.seg_rows);
        self.encodings = vec![None; nsegs];
        self.deltas = (0..nsegs).map(|_| fresh_delta(&mut self.next_epoch)).collect();
        self.zones = (0..nsegs)
            .map(|seg| {
                let start = seg * self.seg_rows;
                let range = start..((start + self.seg_rows).min(self.live.len()));
                SegmentZone::rebuild(&self.schema, &self.columns, &self.live, range)
            })
            .collect();
    }

    /// Rebuilds one segment's zone map exactly.
    fn rebuild_zone(&mut self, seg: usize) {
        let zone =
            SegmentZone::rebuild(&self.schema, &self.columns, &self.live, self.segment_range(seg));
        self.zones[seg] = zone;
    }

    /// Marks every segment as persisted (called after a checkpoint wrote
    /// the current state; an incremental checkpoint re-encodes only dirty
    /// segments). Seals are kept: they describe the same data.
    pub fn mark_segments_clean(&mut self) {
        for z in &mut self.zones {
            z.mark_clean();
        }
    }

    /// True if segment `seg` needs a (re-)seal: it is unsealed, carries
    /// stale rows, or its seal covers only a prefix of the segment (rows
    /// were appended past it). Raw-canonical seals (no encodable column)
    /// never need resealing — flat is already their best form.
    pub fn segment_needs_reseal(&self, seg: usize) -> bool {
        match self.encodings.get(seg).map(Option::as_deref) {
            None | Some(None) => seg < self.zones.len(),
            Some(Some(e)) => match e.covered_rows() {
                None => false,
                Some(covered) => {
                    !self.deltas[seg].stale.is_empty() || covered != self.segment_range(seg).len()
                }
            },
        }
    }

    /// Seals every segment that needs it: chooses and builds the per-column
    /// compressed encoding (see [`crate::encoded`]), clearing the segment's
    /// write delta. Clean sealed segments are untouched, so sealing twice
    /// is a no-op. A segment whose seal produced at least one encoded
    /// column is marked dirty so the next checkpoint persists the encoded
    /// form. Returns the number of segments sealed by this call.
    pub fn seal_segments(&mut self) -> usize {
        let mut sealed = 0;
        for seg in 0..self.zones.len() {
            if !self.segment_needs_reseal(seg) {
                continue;
            }
            let enc = encode_segment(&self.columns, self.segment_range(seg));
            if enc.encoded_cols() > 0 {
                self.zones[seg].mark_dirty();
            }
            self.encodings[seg] = Some(Arc::new(enc));
            self.deltas[seg] = fresh_delta(&mut self.next_epoch);
            sealed += 1;
        }
        sealed
    }

    /// The encoded form of segment `seg`, if it is sealed.
    #[inline]
    pub fn encoding(&self, seg: usize) -> Option<&SegmentEncoding> {
        self.encodings.get(seg).and_then(Option::as_deref)
    }

    /// Per-segment encodings, parallel to [`Table::zones`].
    pub fn encodings(&self) -> &[Option<Arc<SegmentEncoding>>] {
        &self.encodings
    }

    /// Segment-local offsets (sorted) whose sealed value was superseded by
    /// a write-through; scans over the encoding must re-read these rows
    /// from the flat arrays. Empty for unsealed or clean segments.
    #[inline]
    pub fn segment_stale(&self, seg: usize) -> &[u32] {
        self.deltas.get(seg).map_or(&[], |d| &d.stale)
    }

    /// The segment's delta epoch (see [`SegmentDelta`]).
    pub fn segment_epoch(&self, seg: usize) -> u64 {
        self.deltas.get(seg).map_or(0, |d| d.epoch)
    }

    /// The table-wide mutation epoch: the current value of the monotonic
    /// counter behind every per-segment delta epoch. Every row mutation —
    /// append, insert, delete, update — and every seal/compaction event
    /// advances it, so two reads returning the same epoch bracket a window
    /// with no changes to this table image. Derived caches (e.g. the
    /// server's denormalized-result cache) compare epochs to drop stale
    /// materializations instead of serving them. Not persisted: restarts
    /// from 0, so cross-boot comparisons are meaningless.
    pub fn epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Advances the table-wide mutation epoch (see [`Table::epoch`]).
    fn touch(&mut self) {
        self.next_epoch += 1;
    }

    /// Rows currently served from the flat write store instead of a sealed
    /// encoding, counted over segments a compaction pass would touch:
    /// stale rows plus unsealed overhang of sealed segments, plus every
    /// row of voided/unsealed segments. The compactor's backlog gauge.
    pub fn delta_rows(&self) -> u64 {
        let mut rows = 0u64;
        for seg in 0..self.zones.len() {
            if !self.segment_needs_reseal(seg) {
                continue;
            }
            let n = self.segment_range(seg).len();
            rows += match self.encodings[seg].as_deref().and_then(SegmentEncoding::covered_rows) {
                Some(covered) => (self.deltas[seg].stale.len() + (n - covered)) as u64,
                None => n as u64,
            };
        }
        rows
    }

    /// Encodes segment `seg` from the current flat arrays without touching
    /// the table — the compactor's read-only half. Pair with
    /// [`Table::install_compacted`] under the commit lock, quoting the
    /// [`Table::segment_epoch`] observed *before* this call.
    pub fn encode_segment_now(&self, seg: usize) -> SegmentEncoding {
        encode_segment(&self.columns, self.segment_range(seg))
    }

    /// Installs a compaction result for segment `seg`, provided no value
    /// write raced it (`expected_epoch` still current) and it actually
    /// improves on the installed seal (clears stale rows or extends
    /// coverage). Returns whether the encoding was installed.
    pub fn install_compacted(
        &mut self,
        seg: usize,
        enc: SegmentEncoding,
        expected_epoch: u64,
    ) -> bool {
        if seg >= self.zones.len() || self.deltas[seg].epoch != expected_epoch {
            return false;
        }
        if enc.encoded_cols() == 0 {
            // Nothing encodable: flat stays canonical; voiding the slot to
            // `None` would just re-queue the segment forever, so seal it
            // raw-canonical to record the outcome.
            self.encodings[seg] = Some(Arc::new(enc));
            self.deltas[seg] = fresh_delta(&mut self.next_epoch);
            return true;
        }
        let offered = enc.covered_rows();
        let improves = match self.encodings[seg].as_deref() {
            None => true,
            Some(cur) => !self.deltas[seg].stale.is_empty() || cur.covered_rows() < offered,
        };
        if !improves {
            return false;
        }
        self.zones[seg].mark_dirty();
        self.encodings[seg] = Some(Arc::new(enc));
        self.deltas[seg] = fresh_delta(&mut self.next_epoch);
        true
    }

    /// Records a write-through to `row`: if its segment is sealed with an
    /// encoding that covers the row, the segment-local offset joins the
    /// stale set (scans patch it from the flat arrays) and the delta epoch
    /// advances; past [`STALE_LIMIT`] stale rows the seal is voided
    /// outright. Writes beyond the seal's coverage (appended overhang) only
    /// advance the epoch — scans already read those rows flat, but an
    /// in-flight compaction may have encoded the old value.
    fn note_value_write(&mut self, row: usize) {
        let seg = row / self.seg_rows;
        let covered = match self.encodings[seg].as_deref() {
            Some(e) if e.encoded_cols() > 0 => e.covered_rows().unwrap_or(0),
            _ => return,
        };
        self.deltas[seg].epoch = self.next_epoch;
        self.next_epoch += 1;
        let off = (row - seg * self.seg_rows) as u32;
        if off as usize >= covered {
            return;
        }
        let stale = &mut self.deltas[seg].stale;
        if let Err(pos) = stale.binary_search(&off) {
            stale.insert(pos, off);
        }
        if stale.len() > STALE_LIMIT {
            self.encodings[seg] = None;
            self.deltas[seg].stale.clear();
        }
    }

    /// Installs persisted segment encodings verbatim (the snapshot-v3 load
    /// path): segments arrive already sealed, so a re-seal after boot adds
    /// no work and no dirt.
    ///
    /// # Panics
    /// Panics if the encoding list does not match the segment count or a
    /// sealed segment's column arity.
    pub fn install_segment_encodings(&mut self, encodings: Vec<Option<SegmentEncoding>>) {
        assert_eq!(encodings.len(), self.zones.len(), "encoding count mismatch");
        for (seg, e) in encodings.iter().enumerate() {
            if let Some(e) = e {
                assert_eq!(e.cols.len(), self.schema.arity(), "encoding arity mismatch");
                for c in e.cols.iter().flatten() {
                    assert_eq!(c.len(), self.segment_range(seg).len(), "encoding length mismatch");
                }
            }
        }
        self.encodings = encodings.into_iter().map(|e| e.map(Arc::new)).collect();
        self.deltas = (0..self.zones.len()).map(|_| fresh_delta(&mut self.next_epoch)).collect();
    }

    /// Resident bytes of the column arrays as `(encoded, raw)`: `raw`
    /// counts every column at its flat in-memory width, `encoded` counts
    /// sealed columns at their compressed size and everything else flat.
    /// String heap payloads are excluded from both sides (strings are never
    /// encoding candidates).
    pub fn encoded_footprint(&self) -> (u64, u64) {
        let mut encoded = 0u64;
        let mut raw = 0u64;
        for seg in 0..self.segment_count() {
            let n = self.segment_range(seg).len() as u64;
            for (i, col) in self.columns.iter().enumerate() {
                let row_bytes = crate::encoded::raw_row_bytes(col) as u64;
                let flat = row_bytes * n;
                raw += flat;
                match self.encodings[seg].as_deref().and_then(|e| e.cols[i].as_ref()) {
                    // A partial seal still keeps its unsealed overhang flat.
                    Some(c) => encoded += c.bytes() as u64 + row_bytes * (n - c.len() as u64),
                    None => encoded += flat,
                }
            }
        }
        (encoded, raw)
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of slots, live or dead. Array indexes range over
    /// `0..num_slots()`.
    pub fn num_slots(&self) -> usize {
        self.live.len()
    }

    /// Number of live tuples.
    pub fn num_live(&self) -> usize {
        self.live.count_ones()
    }

    /// Returns `true` if slot `row` holds a live tuple.
    #[inline]
    pub fn is_live(&self, row: RowId) -> bool {
        self.live.get_or_false(row as usize)
    }

    /// Returns `true` if any slot is dead (scans must then consult
    /// [`Table::live_bitmap`]).
    pub fn has_deletes(&self) -> bool {
        self.free.len() + (self.num_slots() - self.live.count_ones()) > 0
    }

    /// The live bitmap (inverse delete vector).
    pub fn live_bitmap(&self) -> &Bitmap {
        &self.live
    }

    /// A selection vector over all live slots.
    pub fn live_selvec(&self) -> SelVec {
        SelVec::from_bitmap(&self.live)
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.position(name).map(|i| &self.columns[i])
    }

    /// Mutable column by name. Raw mutable access bypasses zone-map
    /// maintenance, so the column's statistics are invalidated (set to
    /// `Untracked`) in every segment; call [`Table::rebuild_zone_maps`]
    /// afterwards to restore data skipping on it.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        let i = self.schema.position(name)?;
        for z in &mut self.zones {
            z.untrack_column(i);
        }
        // Raw mutable access can rewrite any value: every seal is void and
        // every delta restarts (fresh epochs fence in-flight compactions).
        for e in &mut self.encodings {
            *e = None;
        }
        self.deltas = (0..self.zones.len()).map(|_| fresh_delta(&mut self.next_epoch)).collect();
        Some(&mut self.columns[i])
    }

    /// Appends a tuple at the end of every array, growing the family.
    /// Returns the new tuple's array index (= its primary key).
    ///
    /// # Panics
    /// Panics if `values` does not match the schema arity/types.
    pub fn append_row(&mut self, values: &[Value]) -> RowId {
        assert_eq!(values.len(), self.schema.arity(), "arity mismatch");
        self.touch();
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        let row = self.live.len();
        self.live.push(true);
        let seg = row / self.seg_rows;
        if seg == self.zones.len() {
            self.zones.push(SegmentZone::new(&self.schema));
            self.encodings.push(None);
            let d = fresh_delta(&mut self.next_epoch);
            self.deltas.push(d);
        }
        // An append never unseals: the existing seal keeps covering its
        // original prefix and the new row reads flat (overhang delta).
        self.zones[seg].note_append(&self.columns, row);
        row as RowId
    }

    /// Inserts a tuple, preferring a reusable dead slot over growing the
    /// arrays (paper §4.4). Returns the tuple's array index.
    pub fn insert(&mut self, values: &[Value]) -> RowId {
        if let Some(slot) = self.free.pop() {
            assert_eq!(values.len(), self.schema.arity(), "arity mismatch");
            self.touch();
            for (col, v) in self.columns.iter_mut().zip(values) {
                col.set(slot as usize, v);
            }
            self.live.set(slot as usize, true);
            self.note_value_write(slot as usize);
            let seg = slot as usize / self.seg_rows;
            if self.zones[seg].note_reuse(&self.columns, slot as usize) >= REBUILD_AFTER_OPS {
                self.rebuild_zone(seg);
            }
            slot
        } else {
            self.append_row(values)
        }
    }

    /// Lazy deletion (paper §4.4): marks the slot dead in the delete vector
    /// and queues it for reuse. No data moves; inbound references to other
    /// slots stay valid.
    ///
    /// Returns `false` if the slot was already dead.
    pub fn delete(&mut self, row: RowId) -> bool {
        if !self.is_live(row) {
            return false;
        }
        self.touch();
        self.live.set(row as usize, false);
        self.free.push(row);
        // A delete never widens bounds (and never unseals — the encoded
        // values are unchanged), so it answers to the laxer decay
        // threshold: rebuild only once enough live-count decay piled up
        // that an exact pass can tighten bounds around the survivors.
        let seg = row as usize / self.seg_rows;
        if self.zones[seg].note_delete() >= DECAY_REBUILD_AFTER_OPS {
            self.rebuild_zone(seg);
        }
        true
    }

    /// In-place update of one field (paper §4.4: "A-Store applies in-place
    /// updating, so it can avoid modifying foreign keys"). The segment's
    /// zone map widens to cover the new value; after enough in-place
    /// updates accumulate, the zone is rebuilt exactly (lazy tightening).
    /// A sealed segment stays sealed: the row joins its stale delta and
    /// scans read it from the (always-current) flat arrays.
    ///
    /// # Panics
    /// Panics if the column does not exist or the slot is dead.
    pub fn update(&mut self, row: RowId, column: &str, value: &Value) {
        assert!(self.is_live(row), "cannot update dead slot {row}");
        self.touch();
        let i = self.schema.position(column).unwrap_or_else(|| panic!("no column {column:?}"));
        self.columns[i].set(row as usize, value);
        self.note_value_write(row as usize);
        let seg = row as usize / self.seg_rows;
        if self.zones[seg].note_update(i, &self.columns, row as usize) >= REBUILD_AFTER_OPS {
            self.rebuild_zone(seg);
        }
    }

    /// Reads a full tuple generically (test/debug path).
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row as usize)).collect()
    }

    /// Reserves append capacity across the family (paper §4.4: "A-Store
    /// preserves a certain proportion of free space at the end of each
    /// array").
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
    }

    /// Iterates `(name, column)` pairs.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &Column)> {
        self.schema.defs().iter().map(|d| d.name.as_str()).zip(self.columns.iter())
    }

    /// Compacts the table: drops dead slots, renumbers the survivors, and
    /// returns the remap table `old slot -> new slot` (`None` for dead
    /// slots). The caller (see [`crate::catalog::Database::consolidate`])
    /// must rewrite inbound AIR columns with the remap — this is exactly the
    /// paper's "consolidation is an expensive operation, as it has to update
    /// all the references to the table".
    pub fn compact(&mut self) -> Vec<Option<RowId>> {
        let n = self.num_slots();
        let mut remap: Vec<Option<RowId>> = vec![None; n];
        let mut next: RowId = 0;
        for (old, slot) in remap.iter_mut().enumerate() {
            if self.live.get(old) {
                *slot = Some(next);
                next += 1;
            }
        }
        let live_rows: Vec<usize> = self.live.iter_ones().collect();
        let defs = self.schema.defs().to_vec();
        let mut new_cols = Vec::with_capacity(self.columns.len());
        for (col, def) in self.columns.iter().zip(&defs) {
            let mut fresh = Column::new(&def.dtype);
            fresh.reserve(live_rows.len());
            for &r in &live_rows {
                fresh.push(&col.get(r));
            }
            new_cols.push(fresh);
        }
        self.columns = new_cols;
        self.live = Bitmap::new(live_rows.len(), true);
        self.free.clear();
        self.rebuild_zone_maps();
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NULL_KEY;

    fn dim_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("d_year", DataType::I32),
            ColumnDef::new("d_month", DataType::Str),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = dim_schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position("d_month"), Some(1));
        assert_eq!(s.position("nope"), None);
        assert_eq!(s.def("d_year").unwrap().dtype, DataType::I32);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn schema_rejects_duplicates() {
        Schema::new(vec![ColumnDef::new("x", DataType::I32), ColumnDef::new("x", DataType::I64)]);
    }

    #[test]
    fn append_assigns_sequential_array_indexes() {
        let mut t = Table::new("date", dim_schema());
        let r0 = t.append_row(&[Value::Int(1997), Value::Str("May".into())]);
        let r1 = t.append_row(&[Value::Int(1998), Value::Str("June".into())]);
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.num_slots(), 2);
        assert_eq!(t.num_live(), 2);
        assert_eq!(t.row(1), vec![Value::Int(1998), Value::Str("June".into())]);
    }

    #[test]
    fn delete_is_lazy_and_slot_is_reused() {
        let mut t = Table::new("date", dim_schema());
        for y in 1992..1999 {
            t.append_row(&[Value::Int(y), Value::Str("Jan".into())]);
        }
        assert!(t.delete(3));
        assert!(!t.delete(3), "double delete reports false");
        assert!(!t.is_live(3));
        assert_eq!(t.num_slots(), 7, "lazy delete keeps the slot");
        assert_eq!(t.num_live(), 6);
        assert!(t.has_deletes());

        // The next insert reuses slot 3 instead of growing the arrays.
        let r = t.insert(&[Value::Int(2001), Value::Str("Feb".into())]);
        assert_eq!(r, 3);
        assert_eq!(t.num_slots(), 7);
        assert_eq!(t.num_live(), 7);
        assert_eq!(t.row(3), vec![Value::Int(2001), Value::Str("Feb".into())]);
    }

    #[test]
    fn update_in_place() {
        let mut t = Table::new("date", dim_schema());
        t.append_row(&[Value::Int(1992), Value::Str("Jan".into())]);
        t.update(0, "d_month", &Value::Str("December".into()));
        assert_eq!(t.row(0), vec![Value::Int(1992), Value::Str("December".into())]);
    }

    #[test]
    #[should_panic(expected = "dead slot")]
    fn update_dead_slot_panics() {
        let mut t = Table::new("date", dim_schema());
        t.append_row(&[Value::Int(1992), Value::Str("Jan".into())]);
        t.delete(0);
        t.update(0, "d_year", &Value::Int(2000));
    }

    #[test]
    fn from_columns_bulk_load() {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Key { target: "dim".into() }),
            ColumnDef::new("v", DataType::I64),
        ]);
        let cols = vec![
            Column::Key { target: "dim".into(), keys: vec![0, 1, NULL_KEY] },
            Column::I64(vec![10, 20, 30]),
        ];
        let t = Table::from_columns("fact", schema, cols);
        assert_eq!(t.num_slots(), 3);
        assert_eq!(t.num_live(), 3);
        let (target, keys) = t.column("k").unwrap().as_key().unwrap();
        assert_eq!(target, "dim");
        assert_eq!(keys.len(), 3);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn from_columns_rejects_misaligned_family() {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::I32),
            ColumnDef::new("b", DataType::I32),
        ]);
        Table::from_columns("t", schema, vec![Column::I32(vec![1]), Column::I32(vec![1, 2])]);
    }

    #[test]
    fn from_parts_reproduces_slot_reuse() {
        let mut t = Table::new("date", dim_schema());
        for y in 1992..1997 {
            t.append_row(&[Value::Int(y), Value::Str("Jan".into())]);
        }
        t.delete(1);
        t.delete(3);
        let rebuilt = Table::from_parts(
            t.name().to_owned(),
            t.schema().clone(),
            (0..t.schema().arity()).map(|i| t.column_at(i).clone()).collect(),
            t.live_bitmap().clone(),
            t.free_slots().to_vec(),
        );
        assert_eq!(rebuilt.num_live(), t.num_live());
        assert_eq!(rebuilt.free_slots(), t.free_slots());
        // Both reuse the same slot next (the free list is order-preserved).
        let mut a = t;
        let mut b = rebuilt;
        let ra = a.insert(&[Value::Int(2000), Value::Str("Feb".into())]);
        let rb = b.insert(&[Value::Int(2000), Value::Str("Feb".into())]);
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "still live")]
    fn from_parts_rejects_live_free_slot() {
        let mut t = Table::new("date", dim_schema());
        t.append_row(&[Value::Int(1992), Value::Str("Jan".into())]);
        Table::from_parts(
            "bad",
            t.schema().clone(),
            (0..t.schema().arity()).map(|i| t.column_at(i).clone()).collect(),
            t.live_bitmap().clone(),
            vec![0],
        );
    }

    #[test]
    fn compact_renumbers_survivors() {
        let mut t = Table::new("dim", dim_schema());
        for y in 0..6 {
            t.append_row(&[Value::Int(y), Value::Str(format!("m{y}"))]);
        }
        t.delete(1);
        t.delete(4);
        let remap = t.compact();
        assert_eq!(remap, vec![Some(0), None, Some(1), Some(2), None, Some(3)]);
        assert_eq!(t.num_slots(), 4);
        assert_eq!(t.num_live(), 4);
        assert!(!t.has_deletes());
        assert_eq!(t.row(1), vec![Value::Int(2), Value::Str("m2".into())]);
        assert_eq!(t.row(3), vec![Value::Int(5), Value::Str("m5".into())]);
    }

    #[test]
    fn zone_maps_track_appends_per_segment() {
        let mut t = Table::new(
            "f",
            Schema::new(vec![
                ColumnDef::new("v", DataType::I64),
                ColumnDef::new("k", DataType::Key { target: "d".into() }),
            ]),
        );
        t.set_segment_rows(4);
        for i in 0..10i64 {
            let key = if i == 7 { Value::Key(NULL_KEY) } else { Value::Key(i as u32) };
            t.append_row(&[Value::Int(i * 10), key]);
        }
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.segment_range(1), 4..8);
        assert_eq!(t.segment_range(2), 8..10);
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 0, max: 30 });
        assert_eq!(t.zone(1).stat(0), &crate::segment::ZoneStats::Int { min: 40, max: 70 });
        assert_eq!(t.zone(1).stat(1), &crate::segment::ZoneStats::Key { min: 4, max: 6, nulls: 1 });
        assert_eq!(t.zone(2).live(), 2);
    }

    #[test]
    fn zone_maps_widen_on_update_and_shrink_live_on_delete() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(4);
        for i in 0..4i64 {
            t.append_row(&[Value::Int(i)]);
        }
        t.update(2, "v", &Value::Int(1000));
        // Widened, not rebuilt: old bound 0..=3 grows to cover 1000.
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 0, max: 1000 });
        t.delete(1);
        assert_eq!(t.zone(0).live(), 3);
        // Exact rebuild tightens back to the live values.
        t.rebuild_zone_maps();
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 0, max: 1000 });
        t.update(2, "v", &Value::Int(5));
        t.rebuild_zone_maps();
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 0, max: 5 });
    }

    #[test]
    fn zone_maps_survive_slot_reuse_and_compact() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(4);
        for i in 0..6i64 {
            t.append_row(&[Value::Int(i)]);
        }
        t.delete(0);
        let r = t.insert(&[Value::Int(-50)]);
        assert_eq!(r, 0, "slot reused");
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: -50, max: 3 });
        assert_eq!(t.zone(0).live(), 4);
        t.delete(5);
        t.compact();
        assert_eq!(t.segment_count(), 2);
        assert_eq!(t.zone(1).stat(0), &crate::segment::ZoneStats::Int { min: 4, max: 4 });
    }

    #[test]
    fn column_mut_untracks_the_column() {
        let mut t = Table::new(
            "f",
            Schema::new(vec![
                ColumnDef::new("a", DataType::I64),
                ColumnDef::new("b", DataType::I64),
            ]),
        );
        t.append_row(&[Value::Int(1), Value::Int(2)]);
        let _ = t.column_mut("a");
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Untracked);
        assert_eq!(t.zone(0).stat(1), &crate::segment::ZoneStats::Int { min: 2, max: 2 });
        t.rebuild_zone_maps();
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 1, max: 1 });
    }

    #[test]
    fn seal_encodes_and_mutations_go_to_the_delta() {
        let mut t = Table::new(
            "f",
            Schema::new(vec![
                ColumnDef::new("v", DataType::I64),
                ColumnDef::new("k", DataType::Key { target: "d".into() }),
            ]),
        );
        t.set_segment_rows(64);
        for i in 0..200i64 {
            t.append_row(&[Value::Int(i % 16), Value::Key((i % 8) as u32)]);
        }
        assert_eq!(t.seal_segments(), 4);
        assert_eq!(t.seal_segments(), 0, "re-seal is a no-op");
        for seg in 0..t.segment_count() {
            let enc = t.encoding(seg).expect("sealed");
            assert!(enc.encoded_cols() > 0, "small domains must encode");
            // Decode reproduces the raw arrays exactly, dead or alive.
            for (i, col) in [0usize, 1].iter().map(|&i| (i, t.column_at(i))) {
                let e = enc.cols[i].as_ref().unwrap();
                for (off, row) in t.segment_range(seg).enumerate() {
                    assert_eq!(Some(e.value_at(off)), col.int_at(row));
                }
            }
        }
        let (encoded, raw) = t.encoded_footprint();
        assert!(encoded < raw, "sealed footprint must shrink: {encoded} vs {raw}");

        // A delete keeps the seal (values unchanged) and records no delta …
        t.delete(10);
        assert!(t.encoding(0).is_some());
        assert!(t.segment_stale(0).is_empty());
        // … an update keeps the seal too: the row goes stale, the flat
        // array is current, and the segment now needs a reseal.
        let epoch_before = t.segment_epoch(0);
        t.update(11, "v", &Value::Int(7));
        assert!(t.encoding(0).is_some(), "update writes through, seal survives");
        assert_eq!(t.segment_stale(0), &[11]);
        assert!(t.segment_epoch(0) > epoch_before, "value write advances the epoch");
        assert!(t.segment_needs_reseal(0));
        assert!(!t.segment_needs_reseal(1));
        assert_eq!(t.row(11)[0], Value::Int(7), "flat read sees the new value");
        // A reuse-insert joins the same stale set (slot 10, before 11).
        t.insert(&[Value::Int(1), Value::Key(1)]); // reuses slot 10 in seg 0
        assert_eq!(t.segment_stale(0), &[10, 11]);
        assert_eq!(t.delta_rows(), 2);
        t.seal_segments();
        assert!(t.segment_stale(0).is_empty(), "reseal clears the delta");
        // An append keeps the tail seal covering its original prefix.
        t.append_row(&[Value::Int(1), Value::Key(1)]);
        let last = t.segment_count() - 1;
        assert!(t.encoding(last).is_some(), "append never unseals");
        assert!(t.segment_needs_reseal(last), "but the overhang needs compacting");
        assert_eq!(t.delta_rows(), 1, "one overhang row");
        // Raw column access voids every seal.
        let _ = t.column_mut("v");
        assert!(t.encodings().iter().all(Option::is_none));
        assert!((0..t.segment_count()).all(|s| t.segment_stale(s).is_empty()));
    }

    #[test]
    fn stale_limit_voids_the_seal() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(4096);
        for i in 0..4096i64 {
            t.append_row(&[Value::Int(i % 7)]);
        }
        t.seal_segments();
        for r in 0..STALE_LIMIT as u32 {
            t.update(r, "v", &Value::Int(1));
        }
        assert!(t.encoding(0).is_some(), "at the limit the seal holds");
        assert_eq!(t.segment_stale(0).len(), STALE_LIMIT);
        t.update(STALE_LIMIT as u32, "v", &Value::Int(1));
        assert!(t.encoding(0).is_none(), "past the limit the seal is voided");
        assert!(t.segment_stale(0).is_empty());
    }

    #[test]
    fn compaction_install_is_fenced_by_the_epoch() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(64);
        for i in 0..64i64 {
            t.append_row(&[Value::Int(i % 5)]);
        }
        t.seal_segments();
        t.update(3, "v", &Value::Int(2)); // segment now needs a reseal
        assert!(t.segment_needs_reseal(0));

        // Compactor reads epoch, encodes, then a write races in.
        let epoch = t.segment_epoch(0);
        let enc = t.encode_segment_now(0);
        t.update(4, "v", &Value::Int(1));
        assert!(!t.install_compacted(0, enc, epoch), "raced install must be refused");
        assert_eq!(t.segment_stale(0), &[3, 4], "stale set untouched by the refusal");

        // Second attempt with no interleaved write succeeds and clears it.
        let epoch = t.segment_epoch(0);
        let enc = t.encode_segment_now(0);
        assert!(t.install_compacted(0, enc, epoch));
        assert!(t.segment_stale(0).is_empty());
        assert!(!t.segment_needs_reseal(0));
        // The installed encoding matches the flat arrays exactly.
        let e = t.encoding(0).unwrap().cols[0].as_ref().unwrap();
        for row in 0..64usize {
            assert_eq!(Some(e.value_at(row)), t.column_at(0).int_at(row));
        }
    }

    #[test]
    fn sealing_marks_zone_dirty_for_checkpointing() {
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(32);
        for i in 0..64i64 {
            t.append_row(&[Value::Int(i % 4)]);
        }
        t.mark_segments_clean();
        assert!(t.zones().iter().all(|z| !z.is_dirty()));
        t.seal_segments();
        assert!(
            t.zones().iter().all(SegmentZone::is_dirty),
            "a seal changes the persisted form, so the checkpoint must see it"
        );
        // Clean → install the same encodings (the load path) → re-seal: no dirt.
        t.mark_segments_clean();
        let encs: Vec<Option<SegmentEncoding>> =
            t.encodings().iter().map(|e| e.as_deref().cloned()).collect();
        t.install_segment_encodings(encs);
        t.seal_segments();
        assert!(t.zones().iter().all(|z| !z.is_dirty()));
    }

    #[test]
    fn delete_burst_does_not_churn_rebuilds() {
        // 10K deletes in one segment: the old behaviour counted them toward
        // the widening threshold (4096) and rebuilt the zone repeatedly; the
        // decay threshold (16384) must absorb the whole burst.
        let mut t = Table::new("f", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
        t.set_segment_rows(32768);
        for i in 0..20_000i64 {
            t.append_row(&[Value::Int(i)]);
        }
        for r in 0..10_000u32 {
            t.delete(r);
        }
        assert_eq!(t.zone(0).decayed_ops(), 10_000, "no rebuild reset the counter");
        assert_eq!(t.zone(0).imprecise_ops(), 0, "deletes no longer count as widening");
        // Bounds still cover the deleted values (no rebuild happened) …
        assert_eq!(t.zone(0).stat(0), &crate::segment::ZoneStats::Int { min: 0, max: 19_999 });
        // … and deletes never force a widening-triggered rebuild on the
        // next update (the regression: one update after a burst rebuilt).
        t.update(15_000, "v", &Value::Int(3));
        assert_eq!(t.zone(0).imprecise_ops(), 1);
        // Crossing the decay threshold does rebuild (once), tightening
        // bounds around the survivors.
        for r in 10_000..DECAY_REBUILD_AFTER_OPS {
            t.delete(r);
        }
        assert_eq!(t.zone(0).decayed_ops(), 0, "threshold crossing rebuilt the zone");
        assert_eq!(
            t.zone(0).stat(0),
            &crate::segment::ZoneStats::Int { min: 16_384, max: 19_999 },
            "rebuild tightened the bounds past the deleted prefix"
        );
    }

    #[test]
    fn every_mutation_advances_the_table_epoch() {
        let mut t = Table::new("date", dim_schema());
        let e0 = t.epoch();
        t.append_row(&[Value::Int(1992), Value::Str("Jan".into())]);
        let e1 = t.epoch();
        assert!(e1 > e0, "append bumps");
        t.update(0, "d_month", &Value::Str("Feb".into()));
        let e2 = t.epoch();
        assert!(e2 > e1, "update bumps (even unsealed)");
        t.delete(0);
        let e3 = t.epoch();
        assert!(e3 > e2, "delete bumps");
        t.insert(&[Value::Int(1993), Value::Str("Mar".into())]);
        let e4 = t.epoch();
        assert!(e4 > e3, "reuse-insert bumps");
        // A pure read leaves it alone.
        let _ = t.row(0);
        assert_eq!(t.epoch(), e4);
    }

    #[test]
    fn live_selvec_skips_dead() {
        let mut t = Table::new("dim", dim_schema());
        for y in 0..5 {
            t.append_row(&[Value::Int(y), Value::Str("m".into())]);
        }
        t.delete(0);
        t.delete(4);
        assert_eq!(t.live_selvec().rows(), &[1, 2, 3]);
    }
}
