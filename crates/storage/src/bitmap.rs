//! Word-packed bitmaps.
//!
//! Bitmaps back two structures of the paper: *predicate vectors* (§4.2 — one
//! bit per dimension tuple, `1` = tuple satisfies the dimension predicates)
//! and *delete vectors* (§4.4 — one bit per slot, `1` = slot holds a live
//! tuple). The probe path (`get`) is branch-free and is the inner loop of
//! the AIR scan, so it must stay cheap.

/// A fixed-length bitmap packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl Bitmap {
    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        let fill = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap { words: vec![fill; nwords], len };
        if value {
            bm.clear_tail();
        }
        bm
    }

    /// Builds a bitmap of `len` bits where bit `i` is `pred(i)`.
    pub fn from_fn(len: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut bm = Bitmap::new(len, false);
        for i in 0..len {
            if pred(i) {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Reads bit `i` without the range assertion; out-of-range reads return
    /// `false`. Useful when probing predicate vectors with possibly-null
    /// (`NULL_KEY`) references.
    #[inline]
    pub fn get_or_false(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Grows the bitmap to `new_len` bits; new bits are `value`.
    pub fn resize(&mut self, new_len: usize, value: bool) {
        if new_len <= self.len {
            self.len = new_len;
            self.words.truncate(new_len.div_ceil(WORD_BITS));
            self.clear_tail();
            return;
        }
        let old_len = self.len;
        self.words.resize(new_len.div_ceil(WORD_BITS), 0);
        self.len = new_len;
        if value {
            for i in old_len..new_len {
                self.set(i, true);
            }
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        self.resize(self.len + 1, value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection. Both bitmaps must be the same length.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union. Both bitmaps must be the same length.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Returns `true` if any bit in the inclusive index range `lo..=hi` is
    /// set. Indexes beyond the bitmap read as unset, so an arbitrary key
    /// range can be probed directly. Word-parallel: the zone-map chain
    /// pruning test runs this once per (segment, chain), not per row.
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        if lo > hi || lo >= self.len {
            return false;
        }
        let hi = hi.min(self.len - 1);
        let (wl, wh) = (lo / WORD_BITS, hi / WORD_BITS);
        let lo_mask = u64::MAX << (lo % WORD_BITS);
        let hi_mask = u64::MAX >> (WORD_BITS - 1 - hi % WORD_BITS);
        if wl == wh {
            return self.words[wl] & lo_mask & hi_mask != 0;
        }
        if self.words[wl] & lo_mask != 0 || self.words[wh] & hi_mask != 0 {
            return true;
        }
        self.words[wl + 1..wh].iter().any(|&w| w != 0)
    }

    /// Iterates over the indexes of set bits, in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes { bm: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Approximate heap footprint in bytes (used by the optimizer's cache
    /// budget test, paper §4.2).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The packed 64-bit words backing the bitmap (serialization hook; the
    /// tail bits beyond `len` are guaranteed zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from its packed words and bit length (the inverse
    /// of [`Bitmap::words`], used when loading a snapshot from disk).
    ///
    /// # Panics
    /// Panics if the word count does not match `len`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(WORD_BITS), "word count mismatch for {len} bits");
        let mut bm = Bitmap { words, len };
        bm.clear_tail();
        bm
    }

    /// Zeroes the bits beyond `len` in the last word so `count_ones` and
    /// `not_assign` stay correct.
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit positions, produced by [`Bitmap::iter_ones`].
pub struct IterOnes<'a> {
    bm: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bm.words.len() {
                return None;
            }
            self.current = self.bm.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_all_false_and_true() {
        let f = Bitmap::new(70, false);
        assert_eq!(f.len(), 70);
        assert_eq!(f.count_ones(), 0);
        let t = Bitmap::new(70, true);
        assert_eq!(t.count_ones(), 70);
        assert!(t.get(69));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::new(130, false);
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(63) && !bm.get(128));
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10, false).get(10);
    }

    #[test]
    fn get_or_false_tolerates_overflow() {
        let bm = Bitmap::new(3, true);
        assert!(bm.get_or_false(2));
        assert!(!bm.get_or_false(3));
        assert!(!bm.get_or_false(usize::MAX));
    }

    #[test]
    fn from_fn_matches_predicate() {
        let bm = Bitmap::from_fn(100, |i| i % 3 == 0);
        for i in 0..100 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_ones(), 34);
    }

    #[test]
    fn and_or_not() {
        let a = Bitmap::from_fn(67, |i| i % 2 == 0);
        let b = Bitmap::from_fn(67, |i| i % 3 == 0);
        let mut and = a.clone();
        and.and_assign(&b);
        for i in 0..67 {
            assert_eq!(and.get(i), i % 6 == 0);
        }
        let mut or = a.clone();
        or.or_assign(&b);
        for i in 0..67 {
            assert_eq!(or.get(i), i % 2 == 0 || i % 3 == 0);
        }
        let mut not = a.clone();
        not.not_assign();
        for i in 0..67 {
            assert_eq!(not.get(i), i % 2 != 0);
        }
        // Complement must not corrupt the tail padding.
        assert_eq!(not.count_ones(), 33);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut bm = Bitmap::new(5, true);
        bm.resize(70, false);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_ones(), 5);
        bm.resize(70, true); // no-op length
        bm.resize(3, false);
        assert_eq!(bm.len(), 3);
        assert_eq!(bm.count_ones(), 3);
        bm.resize(100, true);
        assert_eq!(bm.count_ones(), 3 + 97);
    }

    #[test]
    fn push_appends() {
        let mut bm = Bitmap::new(0, false);
        for i in 0..100 {
            bm.push(i % 5 == 0);
        }
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 20);
    }

    #[test]
    fn iter_ones_yields_ascending_positions() {
        let bm = Bitmap::from_fn(200, |i| i == 0 || i == 63 || i == 64 || i == 199);
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(Bitmap::new(0, false).iter_ones().count(), 0);
        assert_eq!(Bitmap::new(100, false).iter_ones().count(), 0);
    }

    #[test]
    fn words_roundtrip() {
        let bm = Bitmap::from_fn(130, |i| i % 7 == 0);
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), bm.len());
        assert_eq!(bm, rebuilt);
        // Dirty tail bits are cleared on reconstruction.
        let dirty = Bitmap::from_words(vec![u64::MAX], 3);
        assert_eq!(dirty.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_rejects_wrong_length() {
        Bitmap::from_words(vec![0, 0], 64);
    }

    #[test]
    fn any_in_range_probes_word_boundaries() {
        let mut bm = Bitmap::new(200, false);
        for i in [0, 63, 64, 130, 199] {
            bm.set(i, true);
        }
        assert!(bm.any_in_range(0, 0));
        assert!(bm.any_in_range(63, 64), "straddles the word boundary");
        assert!(bm.any_in_range(65, 199));
        assert!(!bm.any_in_range(65, 129), "gap between set bits");
        assert!(!bm.any_in_range(131, 198));
        assert!(bm.any_in_range(199, 10_000), "out-of-range tail is clamped");
        assert!(!bm.any_in_range(200, 10_000), "fully out of range");
        assert!(!bm.any_in_range(5, 3), "inverted range");
        assert!(!Bitmap::new(0, false).any_in_range(0, 100));
        // Exhaustive cross-check against the naive loop on a dense pattern.
        let bm = Bitmap::from_fn(150, |i| i % 37 == 5);
        for lo in 0..150 {
            for hi in lo..160 {
                let naive = (lo..=hi.min(149)).any(|i| bm.get(i));
                assert_eq!(bm.any_in_range(lo, hi), naive, "lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn size_bytes_tracks_words() {
        assert_eq!(Bitmap::new(64, false).size_bytes(), 8);
        assert_eq!(Bitmap::new(65, false).size_bytes(), 16);
    }
}
