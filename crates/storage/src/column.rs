//! The unified column representation.
//!
//! A table is an *array family*: a set of equal-length arrays, one per
//! column (paper §2). [`Column`] is the sum of the physical array kinds;
//! hot paths downcast to typed slices ([`Column::as_i32`] etc.) so scans
//! compile to tight loops over contiguous memory, while generic code uses
//! [`Column::get`].

use crate::dictionary::DictColumn;
use crate::strings::StrColumn;
use crate::types::{DataType, Key, Value};

/// One column of an array family.
#[derive(Debug, Clone)]
pub enum Column {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Variable-length strings (slot array + heap).
    Str(StrColumn),
    /// Dictionary-compressed strings.
    Dict(DictColumn),
    /// Array index references into `target` (a foreign key, AIR).
    Key {
        /// Referenced table name.
        target: String,
        /// The reference array.
        keys: Vec<Key>,
    },
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(dtype: &DataType) -> Self {
        match dtype {
            DataType::I32 => Column::I32(Vec::new()),
            DataType::I64 => Column::I64(Vec::new()),
            DataType::F64 => Column::F64(Vec::new()),
            DataType::Str => Column::Str(StrColumn::new()),
            DataType::Dict => Column::Dict(DictColumn::new()),
            DataType::Key { target } => Column::Key { target: target.clone(), keys: Vec::new() },
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::I32(_) => DataType::I32,
            Column::I64(_) => DataType::I64,
            Column::F64(_) => DataType::F64,
            Column::Str(_) => DataType::Str,
            Column::Dict(_) => DataType::Dict,
            Column::Key { target, .. } => DataType::Key { target: target.clone() },
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Str(c) => c.len(),
            Column::Dict(c) => c.len(),
            Column::Key { keys, .. } => keys.len(),
        }
    }

    /// Returns `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generic scalar access. Not for hot loops.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::I32(v) => Value::Int(i64::from(v[row])),
            Column::I64(v) => Value::Int(v[row]),
            Column::F64(v) => Value::Float(v[row]),
            Column::Str(c) => Value::Str(c.get(row).to_owned()),
            Column::Dict(c) => Value::Str(c.get(row).to_owned()),
            Column::Key { keys, .. } => Value::Key(keys[row]),
        }
    }

    /// Generic append. The value must match the column type (integers widen
    /// and narrow implicitly).
    ///
    /// # Panics
    /// Panics on a type mismatch — schema enforcement happens in
    /// [`crate::table::Table::append_row`].
    pub fn push(&mut self, value: &Value) {
        match (self, value) {
            (Column::I32(v), Value::Int(x)) => {
                v.push(i32::try_from(*x).expect("i32 column overflow"))
            }
            (Column::I64(v), Value::Int(x)) => v.push(*x),
            (Column::F64(v), Value::Float(x)) => v.push(*x),
            (Column::F64(v), Value::Int(x)) => v.push(*x as f64),
            (Column::Str(c), Value::Str(s)) => {
                c.push(s);
            }
            (Column::Dict(c), Value::Str(s)) => c.push(s),
            (Column::Key { keys, .. }, Value::Key(k)) => keys.push(*k),
            (Column::Key { keys, .. }, Value::Int(k)) => {
                keys.push(Key::try_from(*k).expect("key out of range"))
            }
            (col, v) => panic!("type mismatch: cannot push {v:?} into {} column", col.dtype()),
        }
    }

    /// Generic in-place overwrite of one row.
    pub fn set(&mut self, row: usize, value: &Value) {
        match (self, value) {
            (Column::I32(v), Value::Int(x)) => {
                v[row] = i32::try_from(*x).expect("i32 column overflow")
            }
            (Column::I64(v), Value::Int(x)) => v[row] = *x,
            (Column::F64(v), Value::Float(x)) => v[row] = *x,
            (Column::F64(v), Value::Int(x)) => v[row] = *x as f64,
            (Column::Str(c), Value::Str(s)) => c.update(row, s),
            (Column::Dict(c), Value::Str(s)) => c.update(row, s),
            (Column::Key { keys, .. }, Value::Key(k)) => keys[row] = *k,
            (Column::Key { keys, .. }, Value::Int(k)) => {
                keys[row] = Key::try_from(*k).expect("key out of range")
            }
            (col, v) => panic!("type mismatch: cannot set {v:?} in {} column", col.dtype()),
        }
    }

    /// Typed view: `i32` slice.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            Column::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: `i64` slice.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: `f64` slice.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Typed view: string column.
    pub fn as_str_col(&self) -> Option<&StrColumn> {
        match self {
            Column::Str(c) => Some(c),
            _ => None,
        }
    }

    /// Typed view: dictionary column.
    pub fn as_dict(&self) -> Option<&DictColumn> {
        match self {
            Column::Dict(c) => Some(c),
            _ => None,
        }
    }

    /// Typed view: AIR (foreign key) array and its target table.
    pub fn as_key(&self) -> Option<(&str, &[Key])> {
        match self {
            Column::Key { target, keys } => Some((target, keys)),
            _ => None,
        }
    }

    /// Numeric read as `f64` (measures in aggregation accept any numeric
    /// column). Returns `None` for non-numeric columns.
    #[inline]
    pub fn numeric_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::I32(v) => Some(f64::from(v[row])),
            Column::I64(v) => Some(v[row] as f64),
            Column::F64(v) => Some(v[row]),
            _ => None,
        }
    }

    /// Integer read as `i64`. Returns `None` for non-integer columns.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            Column::I32(v) => Some(i64::from(v[row])),
            Column::I64(v) => Some(v[row]),
            Column::Key { keys, .. } => Some(i64::from(keys[row])),
            _ => None,
        }
    }

    /// String read (decodes dictionary columns). Returns `None` for
    /// non-string columns.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            Column::Str(c) => Some(c.get(row)),
            Column::Dict(c) => Some(c.get(row)),
            _ => None,
        }
    }

    /// Reserves capacity for `additional` more rows (cheap for the append
    /// path the paper describes in §4.4).
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::I32(v) => v.reserve(additional),
            Column::I64(v) => v.reserve(additional),
            Column::F64(v) => v.reserve(additional),
            Column::Str(_) | Column::Dict(_) => {}
            Column::Key { keys, .. } => keys.reserve(additional),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NULL_KEY;

    #[test]
    fn new_matches_dtype() {
        for dt in [
            DataType::I32,
            DataType::I64,
            DataType::F64,
            DataType::Str,
            DataType::Dict,
            DataType::Key { target: "t".into() },
        ] {
            let col = Column::new(&dt);
            assert_eq!(col.dtype(), dt);
            assert_eq!(col.len(), 0);
            assert!(col.is_empty());
        }
    }

    #[test]
    fn push_get_each_kind() {
        let mut c = Column::new(&DataType::I32);
        c.push(&Value::Int(42));
        assert_eq!(c.get(0), Value::Int(42));

        let mut c = Column::new(&DataType::F64);
        c.push(&Value::Float(1.5));
        c.push(&Value::Int(2)); // int coerces into float column
        assert_eq!(c.get(1), Value::Float(2.0));

        let mut c = Column::new(&DataType::Str);
        c.push(&Value::Str("hi".into()));
        assert_eq!(c.get(0), Value::Str("hi".into()));

        let mut c = Column::new(&DataType::Dict);
        c.push(&Value::Str("lo".into()));
        assert_eq!(c.get(0), Value::Str("lo".into()));

        let mut c = Column::new(&DataType::Key { target: "d".into() });
        c.push(&Value::Key(9));
        c.push(&Value::Int(3));
        assert_eq!(c.get(0), Value::Key(9));
        assert_eq!(c.get(1), Value::Key(3));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_type_mismatch_panics() {
        let mut c = Column::new(&DataType::I32);
        c.push(&Value::Str("no".into()));
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut c = Column::new(&DataType::I64);
        c.push(&Value::Int(1));
        c.set(0, &Value::Int(99));
        assert_eq!(c.get(0), Value::Int(99));

        let mut s = Column::new(&DataType::Str);
        s.push(&Value::Str("a".into()));
        s.set(0, &Value::Str("bb".into()));
        assert_eq!(s.str_at(0), Some("bb"));
    }

    #[test]
    fn typed_views() {
        let mut c = Column::new(&DataType::I32);
        c.push(&Value::Int(1));
        c.push(&Value::Int(2));
        assert_eq!(c.as_i32(), Some(&[1, 2][..]));
        assert!(c.as_i64().is_none());
        assert!(c.as_f64().is_none());
        assert!(c.as_key().is_none());

        let mut k = Column::new(&DataType::Key { target: "date".into() });
        k.push(&Value::Key(NULL_KEY));
        let (target, keys) = k.as_key().unwrap();
        assert_eq!(target, "date");
        assert_eq!(keys, &[NULL_KEY]);
    }

    #[test]
    fn numeric_and_int_accessors() {
        let mut f = Column::new(&DataType::F64);
        f.push(&Value::Float(2.5));
        assert_eq!(f.numeric_at(0), Some(2.5));
        assert_eq!(f.int_at(0), None);

        let mut i = Column::new(&DataType::I32);
        i.push(&Value::Int(-3));
        assert_eq!(i.numeric_at(0), Some(-3.0));
        assert_eq!(i.int_at(0), Some(-3));

        let mut s = Column::new(&DataType::Str);
        s.push(&Value::Str("x".into()));
        assert_eq!(s.numeric_at(0), None);
        assert_eq!(s.str_at(0), Some("x"));
    }
}
