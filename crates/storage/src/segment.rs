//! Fixed-size row segments and their zone maps.
//!
//! A [`crate::table::Table`] is physically one array family, but logically a
//! sequence of fixed-size **segments** of [`SEGMENT_ROWS`] rows (the last
//! one may be partial). Each segment carries a [`SegmentZone`]: per-column
//! min/max statistics for numeric and AIR key columns, the NULL-reference
//! count of key columns, and the segment's live-tuple count. Scans consult
//! zone maps to *skip* whole segments whose value ranges cannot satisfy a
//! predicate — the classic zone-map / small-materialized-aggregate form of
//! data skipping, layered under the paper's three-phase AIRScan so that
//! selective queries never touch most of the fact table.
//!
//! Maintenance is incremental and always *sound*: appends, slot-reusing
//! inserts and in-place updates only ever **widen** a segment's bounds, and
//! deletes only decrement its live count, so a zone map may overstate but
//! never understate what a segment can contain. Repeated in-place mutation
//! makes bounds drift loose; the table rebuilds a segment's statistics
//! exactly (lazily, after enough imprecise operations accumulate — see
//! [`crate::table::Table::update`]).

use crate::column::Column;
use crate::table::Schema;
use crate::types::{DataType, Key, NULL_KEY};

/// Default rows per segment: 64K, deliberately equal to the executor's
/// default morsel size so one dispatched morsel is one prunable segment.
pub const SEGMENT_ROWS: usize = 1 << 16;

/// In-place widening operations a segment tolerates before its zone map is
/// rebuilt exactly (see [`crate::table::Table::update`]).
pub(crate) const REBUILD_AFTER_OPS: u32 = 4096;

/// Deletes a segment tolerates before its zone map is rebuilt exactly.
/// Deliberately much laxer than [`REBUILD_AFTER_OPS`]: a delete never
/// *widens* the bounds (the dead row's values were already inside them), so
/// a rebuild only helps once enough live-count decay has accumulated that
/// the bounds overstate what is still selectable. Counting deletes toward
/// the widening threshold caused rebuild churn under delete-heavy bursts
/// for no tightening gain.
pub(crate) const DECAY_REBUILD_AFTER_OPS: u32 = 4 * REBUILD_AFTER_OPS;

/// Per-column statistics of one segment. Bounds cover every value the
/// segment *may* contain (they are exact right after a rebuild and only
/// widen under incremental maintenance). An integer/key range with
/// `min > max` means "no tracked value", which every range test treats as
/// matching nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneStats {
    /// The column kind is not tracked (strings, dictionaries), or tracking
    /// was invalidated by an untracked mutation path
    /// ([`crate::table::Table::column_mut`]). Matches everything.
    Untracked,
    /// Bounds of an `i32`/`i64` column.
    Int {
        /// Smallest value the segment may contain.
        min: i64,
        /// Largest value the segment may contain.
        max: i64,
    },
    /// Bounds of an `f64` column. NaN values are excluded (no ordered
    /// predicate can select a NaN, so excluding them keeps pruning sound).
    Float {
        /// Smallest value the segment may contain.
        min: f64,
        /// Largest value the segment may contain.
        max: f64,
    },
    /// Bounds of an AIR key column, plus its NULL-reference count.
    Key {
        /// Smallest non-NULL key the segment may contain.
        min: Key,
        /// Largest non-NULL key the segment may contain.
        max: Key,
        /// `NULL_KEY` entries observed (an all-NULL segment has
        /// `min > max` and can be skipped by any chain probe).
        nulls: u64,
    },
}

impl ZoneStats {
    /// The empty statistic for a column of the given type.
    pub fn new_for(dtype: &DataType) -> ZoneStats {
        match dtype {
            DataType::I32 | DataType::I64 => ZoneStats::Int { min: i64::MAX, max: i64::MIN },
            DataType::F64 => ZoneStats::Float { min: f64::INFINITY, max: f64::NEG_INFINITY },
            DataType::Key { .. } => ZoneStats::Key { min: Key::MAX, max: Key::MIN, nulls: 0 },
            DataType::Str | DataType::Dict => ZoneStats::Untracked,
        }
    }

    /// Returns `true` if no tracked value has been included (an untracked
    /// statistic is never "empty" — it matches everything).
    pub fn is_empty_range(&self) -> bool {
        match self {
            ZoneStats::Untracked => false,
            ZoneStats::Int { min, max } => min > max,
            ZoneStats::Float { min, max } => min > max,
            ZoneStats::Key { min, max, .. } => min > max,
        }
    }

    /// Widens the statistic to cover `col[row]`.
    #[inline]
    pub(crate) fn include(&mut self, col: &Column, row: usize) {
        match (self, col) {
            (ZoneStats::Untracked, _) => {}
            (ZoneStats::Int { min, max }, Column::I32(v)) => {
                let x = i64::from(v[row]);
                *min = (*min).min(x);
                *max = (*max).max(x);
            }
            (ZoneStats::Int { min, max }, Column::I64(v)) => {
                let x = v[row];
                *min = (*min).min(x);
                *max = (*max).max(x);
            }
            (ZoneStats::Float { min, max }, Column::F64(v)) => {
                // f64::min/max ignore NaN operands: NaN rows stay outside
                // the bounds, which is sound (no ordered predicate matches
                // NaN).
                let x = v[row];
                *min = min.min(x);
                *max = max.max(x);
            }
            (ZoneStats::Key { min, max, nulls }, Column::Key { keys, .. }) => {
                let k = keys[row];
                if k == NULL_KEY {
                    *nulls += 1;
                } else {
                    *min = (*min).min(k);
                    *max = (*max).max(k);
                }
            }
            (stat, _) => {
                // Type drift (should not happen — schemas are fixed): stop
                // tracking rather than prune wrongly.
                *stat = ZoneStats::Untracked;
            }
        }
    }
}

/// The zone map of one segment: per-column statistics plus the live count
/// and the bookkeeping the persistence layer and lazy rebuilds need.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentZone {
    stats: Vec<ZoneStats>,
    live: u64,
    /// Mutated since this table was loaded from / checkpointed to a
    /// snapshot — an incremental checkpoint re-encodes only dirty segments.
    dirty: bool,
    /// Widening (imprecise) operations since the last exact rebuild.
    imprecise: u32,
    /// Deletes since the last exact rebuild. Tracked separately from
    /// `imprecise`: deletes decay the live count but never widen bounds,
    /// so they answer to the (much laxer) [`DECAY_REBUILD_AFTER_OPS`]
    /// threshold instead of [`REBUILD_AFTER_OPS`].
    decayed: u32,
}

impl SegmentZone {
    /// A fresh, empty zone for a table of the given schema. New zones are
    /// born dirty: they have no on-disk representation yet.
    pub fn new(schema: &Schema) -> SegmentZone {
        SegmentZone {
            stats: schema.defs().iter().map(|d| ZoneStats::new_for(&d.dtype)).collect(),
            live: 0,
            dirty: true,
            imprecise: 0,
            decayed: 0,
        }
    }

    /// Rebuilds a zone exactly from the segment's live rows.
    pub(crate) fn rebuild(
        schema: &Schema,
        columns: &[Column],
        live: &crate::bitmap::Bitmap,
        range: std::ops::Range<usize>,
    ) -> SegmentZone {
        let mut zone = SegmentZone::new(schema);
        for row in range {
            if !live.get_or_false(row) {
                continue;
            }
            zone.live += 1;
            for (stat, col) in zone.stats.iter_mut().zip(columns) {
                stat.include(col, row);
            }
        }
        zone
    }

    /// Reconstructs a zone from persisted parts (the snapshot-v2 load path).
    /// Loaded zones are clean: their on-disk representation is the file they
    /// came from.
    pub fn from_parts(stats: Vec<ZoneStats>, live: u64) -> SegmentZone {
        SegmentZone { stats, live, dirty: false, imprecise: 0, decayed: 0 }
    }

    /// Per-column statistics, in schema order.
    pub fn stats(&self) -> &[ZoneStats] {
        &self.stats
    }

    /// The statistic of one column.
    #[inline]
    pub fn stat(&self, col: usize) -> &ZoneStats {
        &self.stats[col]
    }

    /// Live tuples in this segment.
    #[inline]
    pub fn live(&self) -> u64 {
        self.live
    }

    /// Has the segment been mutated since it was last persisted?
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    pub(crate) fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Marks the segment as needing re-persistence without touching its
    /// statistics (sealing changes the on-disk representation, not the
    /// data).
    pub(crate) fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    pub(crate) fn note_append(&mut self, columns: &[Column], row: usize) {
        self.live += 1;
        self.dirty = true;
        for (stat, col) in self.stats.iter_mut().zip(columns) {
            stat.include(col, row);
        }
    }

    /// A slot-reusing insert: the new values widen the bounds, but the dead
    /// slot's old values stay inside them — imprecise.
    pub(crate) fn note_reuse(&mut self, columns: &[Column], row: usize) -> u32 {
        self.note_append(columns, row);
        self.imprecise += 1;
        self.imprecise
    }

    /// An in-place single-column overwrite.
    pub(crate) fn note_update(&mut self, col_idx: usize, columns: &[Column], row: usize) -> u32 {
        self.dirty = true;
        self.imprecise += 1;
        self.stats[col_idx].include(&columns[col_idx], row);
        self.imprecise
    }

    pub(crate) fn note_delete(&mut self) -> u32 {
        self.live = self.live.saturating_sub(1);
        self.dirty = true;
        self.decayed += 1;
        self.decayed
    }

    /// Widening operations accumulated since the last exact rebuild.
    pub fn imprecise_ops(&self) -> u32 {
        self.imprecise
    }

    /// Deletes accumulated since the last exact rebuild.
    pub fn decayed_ops(&self) -> u32 {
        self.decayed
    }

    /// Stops tracking one column (a caller obtained raw mutable access to
    /// it, so its bounds can no longer be trusted).
    pub(crate) fn untrack_column(&mut self, col_idx: usize) {
        self.stats[col_idx] = ZoneStats::Untracked;
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Bitmap;
    use crate::table::ColumnDef;

    #[test]
    fn empty_stats_per_type() {
        assert!(ZoneStats::new_for(&DataType::I32).is_empty_range());
        assert!(ZoneStats::new_for(&DataType::F64).is_empty_range());
        assert!(ZoneStats::new_for(&DataType::Key { target: "t".into() }).is_empty_range());
        assert!(!ZoneStats::new_for(&DataType::Str).is_empty_range(), "untracked is never empty");
    }

    #[test]
    fn include_widens_int_and_float() {
        let col = Column::I32(vec![5, -3, 9]);
        let mut s = ZoneStats::new_for(&DataType::I32);
        for r in 0..3 {
            s.include(&col, r);
        }
        assert_eq!(s, ZoneStats::Int { min: -3, max: 9 });

        let col = Column::F64(vec![1.5, f64::NAN, -2.0]);
        let mut s = ZoneStats::new_for(&DataType::F64);
        for r in 0..3 {
            s.include(&col, r);
        }
        assert_eq!(s, ZoneStats::Float { min: -2.0, max: 1.5 }, "NaN stays outside the bounds");
    }

    #[test]
    fn include_counts_key_nulls() {
        let col = Column::Key { target: "d".into(), keys: vec![7, NULL_KEY, 3, NULL_KEY] };
        let mut s = ZoneStats::new_for(&DataType::Key { target: "d".into() });
        for r in 0..4 {
            s.include(&col, r);
        }
        assert_eq!(s, ZoneStats::Key { min: 3, max: 7, nulls: 2 });
    }

    #[test]
    fn rebuild_skips_dead_rows() {
        let schema = Schema::new(vec![ColumnDef::new("v", DataType::I64)]);
        let columns = vec![Column::I64(vec![10, 999, 20])];
        let mut live = Bitmap::new(3, true);
        live.set(1, false);
        let zone = SegmentZone::rebuild(&schema, &columns, &live, 0..3);
        assert_eq!(zone.live(), 2);
        assert_eq!(zone.stat(0), &ZoneStats::Int { min: 10, max: 20 });
        assert!(zone.is_dirty(), "rebuilt zones have no on-disk backing");
    }
}
