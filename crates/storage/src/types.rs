//! Fundamental scalar types of the A-Store storage model.
//!
//! A-Store treats the *array index* of a tuple as its primary key, so a row
//! identifier is simply a position ([`RowId`]). Foreign keys are stored as
//! array index references ("AIR"): plain `u32` positions into the referenced
//! table. The sentinel [`NULL_KEY`] marks an absent reference (and, in group
//! vectors, a tuple that failed predicate evaluation — the paper's `-1`).

use std::fmt;

/// A row identifier: the position of the tuple inside its array family.
///
/// A-Store never materializes a primary-key column; the index *is* the key.
pub type RowId = u32;

/// An array index reference (AIR): a foreign key stored as the array index of
/// the referenced tuple.
pub type Key = u32;

/// Sentinel for "no reference" / "filtered out" (the paper encodes it as −1).
pub const NULL_KEY: Key = u32::MAX;

/// The physical data types a column array can hold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Variable-length string stored in a dynamically allocated heap; the
    /// array holds fixed-width references (paper §2).
    Str,
    /// Dictionary-compressed string: the array holds codes that are array
    /// indexes into the dictionary (paper §2: "a dictionary can be regarded
    /// as a reference table").
    Dict,
    /// Array index reference into the named table (a foreign key).
    Key {
        /// Name of the referenced table.
        target: String,
    },
}

impl DataType {
    /// Returns `true` if the type is a reference (AIR) into another table.
    pub fn is_key(&self) -> bool {
        matches!(self, DataType::Key { .. })
    }

    /// Returns `true` if values of this type order and compare numerically.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::I32 | DataType::I64 | DataType::F64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::I32 => write!(f, "i32"),
            DataType::I64 => write!(f, "i64"),
            DataType::F64 => write!(f, "f64"),
            DataType::Str => write!(f, "str"),
            DataType::Dict => write!(f, "dict"),
            DataType::Key { target } => write!(f, "key -> {target}"),
        }
    }
}

/// A dynamically typed scalar value, used at API boundaries (inserts, result
/// sets, predicate literals). Hot paths never touch [`Value`]; they work on
/// typed column slices.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Any integer (widened to 64 bits).
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An owned string.
    Str(String),
    /// An array index reference.
    Key(Key),
    /// SQL NULL / absent.
    Null,
}

impl Value {
    /// The integer content, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Key(k) => Some(i64::from(*k)),
            _ => None,
        }
    }

    /// The float content, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string content, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Key(k) => write!(f, "#{k}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_key_detection() {
        assert!(DataType::Key { target: "date".into() }.is_key());
        assert!(!DataType::I32.is_key());
        assert!(!DataType::Str.is_key());
    }

    #[test]
    fn datatype_numeric_detection() {
        assert!(DataType::I32.is_numeric());
        assert!(DataType::I64.is_numeric());
        assert!(DataType::F64.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Dict.is_numeric());
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Key(3).as_int(), Some(3));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("abc"), Value::Str("abc".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataType::Key { target: "t".into() }.to_string(), "key -> t");
        assert_eq!(Value::Key(4).to_string(), "#4");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn null_key_is_max() {
        assert_eq!(NULL_KEY, u32::MAX);
    }
}
