//! # astore-storage
//!
//! The storage layer of **A-Store**, a main-memory OLAP engine built on
//! *virtual denormalization via array index reference* (Zhang et al.,
//! ICDE/TKDE 2016).
//!
//! A table is an **array family**: a set of equal-length arrays, one per
//! column, completely aligned so the `i`-th elements of all arrays form the
//! `i`-th tuple (paper §2). The array index *is* the primary key — no key
//! column is stored — and every foreign key column is an **array index
//! reference (AIR)**: an array of `u32` positions into the referenced
//! table. PK-FK joins thus reduce to positional array lookups.
//!
//! Provided building blocks:
//!
//! - [`column::Column`] — typed arrays (`i32`/`i64`/`f64`), heap-backed
//!   varchars ([`strings::StrColumn`]), dictionary-compressed strings
//!   ([`dictionary::DictColumn`]), and AIR key arrays;
//! - [`bitmap::Bitmap`] — predicate vectors (§4.2) and delete vectors (§4.4);
//! - [`selvec::SelVec`] — selection vectors for the vectorized column scan
//!   (§4.1);
//! - [`table::Table`] — the array family plus lazy deletion, slot reuse,
//!   in-place update and compaction (§4.4), partitioned into fixed-size
//!   segments;
//! - [`segment::SegmentZone`] — per-segment zone maps (min/max statistics,
//!   NULL/live counts) maintained incrementally, the basis of segment
//!   skipping in the scan layer;
//! - [`catalog::Database`] — named tables, AIR edge discovery, referential
//!   validation, and consolidation;
//! - [`snapshot::SharedDatabase`] — copy-on-write snapshots isolating OLAP
//!   readers from concurrent updates (§4.4).
//!
//! ## Example
//!
//! ```
//! use astore_storage::prelude::*;
//!
//! // A dimension table: the array index is the primary key.
//! let mut date = Table::new(
//!     "date",
//!     Schema::new(vec![
//!         ColumnDef::new("d_year", DataType::I32),
//!         ColumnDef::new("d_month", DataType::Dict),
//!     ]),
//! );
//! date.append_row(&[Value::Int(1997), Value::Str("May".into())]);
//! date.append_row(&[Value::Int(1998), Value::Str("June".into())]);
//!
//! // A fact table whose foreign key is an array index reference (AIR).
//! let mut lineorder = Table::new(
//!     "lineorder",
//!     Schema::new(vec![
//!         ColumnDef::new("lo_dk", DataType::Key { target: "date".into() }),
//!         ColumnDef::new("lo_revenue", DataType::I64),
//!     ]),
//! );
//! lineorder.append_row(&[Value::Key(1), Value::Int(420)]);
//!
//! let mut db = Database::new();
//! db.add_table(date);
//! db.add_table(lineorder);
//! assert!(db.validate_references().is_empty());
//!
//! // Following the AIR resolves the join positionally.
//! let (_, keys) = db.table("lineorder").unwrap().column("lo_dk").unwrap().as_key().unwrap();
//! let year = db.table("date").unwrap().column("d_year").unwrap().get(keys[0] as usize);
//! assert_eq!(year, Value::Int(1998));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod dictionary;
pub mod encoded;
pub mod segment;
pub mod selvec;
pub mod snapshot;
pub mod strings;
pub mod table;
pub mod types;

/// Convenient glob import of the commonly used names.
pub mod prelude {
    pub use crate::bitmap::Bitmap;
    pub use crate::catalog::{checked_key, AirEdge, Database};
    pub use crate::column::Column;
    pub use crate::dictionary::{DictColumn, Dictionary};
    pub use crate::encoded::{EncodedColumn, PackedInts, RleInts, SegmentEncoding};
    pub use crate::segment::{SegmentZone, ZoneStats, SEGMENT_ROWS};
    pub use crate::selvec::SelVec;
    pub use crate::snapshot::SharedDatabase;
    pub use crate::strings::{StrColumn, StrHeap, StrRef};
    pub use crate::table::{ColumnDef, Schema, Table};
    pub use crate::types::{DataType, Key, RowId, Value, NULL_KEY};
}
