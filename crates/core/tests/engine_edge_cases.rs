//! Edge-case integration tests for the execution engine: empty inputs,
//! fully deleted tables, deep snowflake chains, degenerate group spaces.

use astore_core::prelude::*;
use astore_storage::prelude::*;

fn star(n_fact: usize, n_dim: usize) -> Database {
    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            ColumnDef::new("d_cat", DataType::Dict),
            ColumnDef::new("d_flag", DataType::I32),
        ]),
    );
    for i in 0..n_dim {
        dim.append_row(&[Value::Str(format!("c{}", i % 3)), Value::Int((i % 2) as i64)]);
    }
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
            ColumnDef::new("f_v", DataType::I64),
        ]),
    );
    for i in 0..n_fact {
        fact.append_row(&[Value::Key((i % n_dim.max(1)) as u32), Value::Int(i as i64)]);
    }
    let mut db = Database::new();
    db.add_table(dim);
    db.add_table(fact);
    db
}

fn sum_by_cat() -> Query {
    Query::new()
        .root("fact")
        .group("dim", "d_cat")
        .agg(Aggregate::sum(MeasureExpr::col("f_v"), "total"))
        .order(OrderKey::asc("d_cat"))
}

#[test]
fn empty_fact_table() {
    let db = star(0, 4);
    for v in ScanVariant::ALL {
        let out = execute(&db, &sum_by_cat(), &ExecOptions::with_variant(v)).unwrap();
        assert!(out.result.is_empty(), "{}", v.paper_name());
    }
    // Zero rows can never fan out — even with the planner threshold forced
    // down, the clamp keeps an empty scan serial and says so explicitly.
    let mut popts = ExecOptions::default().threads(4);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    let par = execute(&db, &sum_by_cat(), &popts).unwrap();
    assert_eq!(par.plan.executor, ExecutorInfo::Serial { requested_threads: 4 });
    assert!(par.result.is_empty());
}

#[test]
fn single_row_everything() {
    let db = star(1, 1);
    let out = execute(&db, &sum_by_cat(), &ExecOptions::default()).unwrap();
    assert_eq!(out.result.rows, vec![vec![Value::Str("c0".into()), Value::Float(0.0)]]);
}

#[test]
fn fully_deleted_fact() {
    let mut db = star(10, 3);
    for r in 0..10 {
        db.table_mut("fact").unwrap().delete(r);
    }
    for v in ScanVariant::ALL {
        let out = execute(&db, &sum_by_cat(), &ExecOptions::with_variant(v)).unwrap();
        assert!(out.result.is_empty(), "{}", v.paper_name());
    }
}

#[test]
fn fully_deleted_dimension() {
    let mut db = star(10, 3);
    for r in 0..3 {
        db.table_mut("dim").unwrap().delete(r);
    }
    let out = execute(&db, &sum_by_cat(), &ExecOptions::default()).unwrap();
    assert!(out.result.is_empty(), "no dimension rows -> inner join empty");
    // A query that does not touch the dimension still sees the fact rows.
    let q = Query::new().root("fact").agg(Aggregate::count("n"));
    let out = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert_eq!(out.result.rows, vec![vec![Value::Int(10)]]);
}

#[test]
fn deep_snowflake_chain_five_levels() {
    // t5 <- t4 <- t3 <- t2 <- t1 <- fact, grouping on t5's label.
    let mut db = Database::new();
    let mut t5 = Table::new("t5", Schema::new(vec![ColumnDef::new("label", DataType::Dict)]));
    t5.append_row(&[Value::Str("deep0".into())]);
    t5.append_row(&[Value::Str("deep1".into())]);
    db.add_table(t5);
    for level in (1..5).rev() {
        let name = format!("t{level}");
        let target = format!("t{}", level + 1);
        let mut t =
            Table::new(&name, Schema::new(vec![ColumnDef::new("next", DataType::Key { target })]));
        for i in 0..4u32 {
            t.append_row(&[Value::Key(i % 2)]);
        }
        db.add_table(t);
    }
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_t1", DataType::Key { target: "t1".into() }),
            ColumnDef::new("f_v", DataType::I64),
        ]),
    );
    for i in 0..100u32 {
        fact.append_row(&[Value::Key(i % 4), Value::Int(1)]);
    }
    db.add_table(fact);
    assert!(db.validate_references().is_empty());

    let q = Query::new()
        .root("fact")
        .filter("t5", Pred::eq("label", "deep1"))
        .group("t5", "label")
        .agg(Aggregate::count("n"));
    let reference = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert_eq!(reference.result.rows.len(), 1);
    for v in ScanVariant::ALL {
        let out = execute(&db, &q, &ExecOptions::with_variant(v)).unwrap();
        assert!(
            out.result.same_contents(&reference.result, 1e-9),
            "{} diverged on the 5-level chain",
            v.paper_name()
        );
    }
    // Forced fan-out (tiny fixture): the 5-level AIR chase must survive the
    // morsel executor, and the executor assertion proves it actually ran.
    let mut popts = ExecOptions::default().threads(3);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    let par = execute(&db, &q, &popts).unwrap();
    assert!(par.plan.executor.is_parallel());
    assert!(par.result.same_contents(&reference.result, 1e-9));
}

#[test]
fn group_space_of_one() {
    let mut db = star(50, 5);
    // All dimension rows in the same category.
    for r in 0..5u32 {
        db.table_mut("dim").unwrap().update(r, "d_cat", &Value::Str("only".into()));
    }
    let out = execute(&db, &sum_by_cat(), &ExecOptions::default()).unwrap();
    assert_eq!(out.result.rows.len(), 1);
    assert_eq!(out.result.rows[0][0], Value::Str("only".into()));
    assert_eq!(out.result.rows[0][1], Value::Float((0..50).sum::<i64>() as f64));
}

#[test]
fn order_by_ties_and_limit_zero() {
    let db = star(30, 3);
    let mut q = sum_by_cat().limit(0);
    let out = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert!(out.result.is_empty(), "limit 0 yields nothing");
    q.limit = Some(2);
    let out = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert_eq!(out.result.rows.len(), 2);
}

#[test]
fn multiple_fk_columns_to_the_same_dimension() {
    // fact references `dim` twice (order date and commit date pattern).
    let mut db = Database::new();
    let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_v", DataType::I32)]));
    for i in 0..4 {
        dim.append_row(&[Value::Int(i)]);
    }
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_a", DataType::Key { target: "dim".into() }),
            ColumnDef::new("f_b", DataType::Key { target: "dim".into() }),
            ColumnDef::new("f_v", DataType::I64),
        ]),
    );
    for i in 0..20u32 {
        fact.append_row(&[Value::Key(i % 4), Value::Key((i + 1) % 4), Value::Int(1)]);
    }
    db.add_table(dim);
    db.add_table(fact);

    // The reference path uses the first (schema-order) edge; the query is
    // still answerable and consistent across variants.
    let q = Query::new().root("fact").filter("dim", Pred::eq("d_v", 2)).agg(Aggregate::count("n"));
    let reference = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert_eq!(reference.result.rows, vec![vec![Value::Int(5)]]);
    for v in ScanVariant::ALL {
        let out = execute(&db, &q, &ExecOptions::with_variant(v)).unwrap();
        assert!(out.result.same_contents(&reference.result, 1e-9), "{}", v.paper_name());
    }
}

#[test]
fn bitmap_and_strategy_on_snowflake_with_deletes() {
    let mut db = star(100, 10);
    db.table_mut("fact").unwrap().delete(7);
    db.table_mut("dim").unwrap().delete(2);
    let q = sum_by_cat();
    let vector = execute(&db, &q, &ExecOptions::default()).unwrap();
    let bitmap = execute(
        &db,
        &q,
        &ExecOptions { selection: SelectionStrategy::BitmapAnd, ..Default::default() },
    )
    .unwrap();
    assert!(bitmap.result.same_contents(&vector.result, 1e-9));
}

#[test]
fn sum_of_negative_measures() {
    let mut db = Database::new();
    let mut fact = Table::new("fact", Schema::new(vec![ColumnDef::new("v", DataType::I64)]));
    for v in [-5i64, 3, -7, 9] {
        fact.append_row(&[Value::Int(v)]);
    }
    db.add_table(fact);
    let q = Query::new()
        .root("fact")
        .agg(Aggregate::sum(MeasureExpr::col("v"), "s"))
        .agg(Aggregate::min(MeasureExpr::col("v"), "lo"))
        .agg(Aggregate::max(MeasureExpr::col("v"), "hi"));
    let out = execute(&db, &q, &ExecOptions::default()).unwrap();
    assert_eq!(
        out.result.rows,
        vec![vec![Value::Float(0.0), Value::Float(-7.0), Value::Float(9.0)]]
    );
}
