//! Zone-map data skipping over segmented fact tables.
//!
//! The storage layer partitions every table into fixed-size segments with
//! per-column min/max statistics (`astore_storage::segment`). This module
//! turns a query's selection into *segment-level* tests:
//!
//! * a fact-local conjunct becomes a [`ZonePred`] — an inclusive value
//!   range that a segment's bounds must intersect for any row to qualify;
//! * a dimension chain probed through a predicate vector becomes a
//!   key-range test — the segment's FK bounds are checked for *any* set
//!   bit in the composed chain bitmap ([`Bitmap::any_in_range`]).
//!
//! A [`SegmentPruner`] bundles both and answers "can segment `s` contain a
//! qualifying row?" once per segment, before the scan touches a single
//! column value. Every answer is conservative: zone bounds only ever widen
//! under incremental maintenance, so a `false` proves the segment empty of
//! matches while a `true` merely means "scan it".

use astore_storage::bitmap::Bitmap;
use astore_storage::column::Column;
use astore_storage::segment::ZoneStats;
use astore_storage::table::Table;

use crate::expr::{CmpOp, Lit, Pred};

/// An inclusive value range a segment's column bounds must intersect.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneRange {
    /// Integer range (for `i32`/`i64` columns).
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Float range (for `f64` columns). Strict bounds are relaxed to
    /// inclusive ones — a widening that can only reduce pruning.
    Float {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

/// A segment-level test compiled from one fact-local conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct ZonePred {
    /// Position of the tested column in the fact schema.
    pub col: usize,
    /// The value range a segment must overlap.
    pub range: ZoneRange,
}

fn int_of(lit: &Lit) -> Option<i64> {
    match lit {
        Lit::Int(v) => Some(*v),
        // Mirrors predicate compilation, which truncates float literals
        // against integer columns.
        Lit::Float(f) => Some(*f as i64),
        Lit::Str(_) | Lit::Param(_) => None,
    }
}

fn float_of(lit: &Lit) -> Option<f64> {
    match lit {
        Lit::Int(v) => Some(*v as f64),
        Lit::Float(f) => Some(*f),
        Lit::Str(_) | Lit::Param(_) => None,
    }
}

impl ZonePred {
    /// Compiles one conjunct into a zone test, or `None` when the conjunct
    /// cannot prune (non-range shapes, string/dictionary/key columns,
    /// unbound parameters). `None` never loses correctness — the conjunct
    /// is still evaluated row-wise inside surviving segments.
    pub fn from_conjunct(pred: &Pred, table: &Table) -> Option<ZonePred> {
        let (col_name, range) = match pred {
            Pred::Cmp { col, op, lit } => (col, Self::cmp_range(table, col, *op, lit)?),
            Pred::Between { col, lo, hi } => (col, Self::between_range(table, col, lo, hi)?),
            Pred::InList { col, lits } => (col, Self::in_range(table, col, lits)?),
            _ => return None,
        };
        Some(ZonePred { col: table.schema().position(col_name)?, range })
    }

    fn is_int_col(table: &Table, col: &str) -> Option<bool> {
        match table.column(col)? {
            Column::I32(_) | Column::I64(_) => Some(true),
            Column::F64(_) => Some(false),
            _ => None,
        }
    }

    fn is_i32_col(table: &Table, col: &str) -> bool {
        matches!(table.column(col), Some(Column::I32(_)))
    }

    fn cmp_range(table: &Table, col: &str, op: CmpOp, lit: &Lit) -> Option<ZoneRange> {
        if Self::is_int_col(table, col)? {
            let v = int_of(lit)?;
            let (lo, hi) = match op {
                CmpOp::Eq => (v, v),
                CmpOp::Ge => (v, i64::MAX),
                CmpOp::Gt => (v.checked_add(1)?, i64::MAX),
                CmpOp::Le => (i64::MIN, v),
                CmpOp::Lt => (i64::MIN, v.checked_sub(1)?),
                CmpOp::Ne => return None,
            };
            Some(ZoneRange::Int { lo, hi })
        } else {
            let v = float_of(lit)?;
            let (lo, hi) = match op {
                CmpOp::Eq => (v, v),
                // Strict float bounds relax to inclusive — sound.
                CmpOp::Ge | CmpOp::Gt => (v, f64::INFINITY),
                CmpOp::Le | CmpOp::Lt => (f64::NEG_INFINITY, v),
                CmpOp::Ne => return None,
            };
            Some(ZoneRange::Float { lo, hi })
        }
    }

    fn between_range(table: &Table, col: &str, lo: &Lit, hi: &Lit) -> Option<ZoneRange> {
        if Self::is_int_col(table, col)? {
            let (mut lo, mut hi) = (int_of(lo)?, int_of(hi)?);
            if Self::is_i32_col(table, col) {
                // Mirror predicate compilation exactly: `compile_between`
                // clamps BETWEEN bounds into the i32 domain, so an
                // out-of-range bound collapses onto i32::MIN/MAX and can
                // still match boundary values. The zone test must not be
                // tighter than the row test it stands in for.
                lo = lo.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
                hi = hi.clamp(i64::from(i32::MIN), i64::from(i32::MAX));
            }
            Some(ZoneRange::Int { lo, hi })
        } else {
            Some(ZoneRange::Float { lo: float_of(lo)?, hi: float_of(hi)? })
        }
    }

    fn in_range(table: &Table, col: &str, lits: &[Lit]) -> Option<ZoneRange> {
        // The list's envelope [min, max]: looser than the exact set but
        // enough to skip segments wholly outside it. An empty list is an
        // empty range and prunes everything (IN () matches nothing).
        if Self::is_int_col(table, col)? {
            let vs: Option<Vec<i64>> = lits.iter().map(int_of).collect();
            let vs = vs?;
            Some(ZoneRange::Int {
                lo: vs.iter().copied().min().unwrap_or(i64::MAX),
                hi: vs.iter().copied().max().unwrap_or(i64::MIN),
            })
        } else {
            let vs: Option<Vec<f64>> = lits.iter().map(float_of).collect();
            let vs = vs?;
            Some(ZoneRange::Float {
                lo: vs.iter().copied().fold(f64::INFINITY, f64::min),
                hi: vs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            })
        }
    }

    /// Can any value inside `stats` satisfy this range?
    pub fn may_match(&self, stats: &ZoneStats) -> bool {
        match (&self.range, stats) {
            (ZoneRange::Int { lo, hi }, ZoneStats::Int { min, max }) => lo <= max && hi >= min,
            (ZoneRange::Float { lo, hi }, ZoneStats::Float { min, max }) => lo <= max && hi >= min,
            // Untracked columns — and any type drift — cannot prune.
            _ => true,
        }
    }
}

/// The per-segment admission test of one execution: fact-local zone
/// predicates plus chain key-range probes, evaluated against the fact
/// table's zone maps.
#[derive(Debug)]
pub struct SegmentPruner<'a> {
    fact: &'a Table,
    preds: Vec<ZonePred>,
    /// `(fact FK column position, composed chain predicate vector)` for
    /// every chain the leaf phase materialized a bitmap for.
    chains: Vec<(usize, &'a Bitmap)>,
}

impl<'a> SegmentPruner<'a> {
    /// Builds the pruner from the fact table's selection (already bound —
    /// no parameters) and the leaf phase's materialized chain filters.
    pub fn new(
        fact: &'a Table,
        fact_pred: Option<&Pred>,
        chains: Vec<(usize, &'a Bitmap)>,
    ) -> SegmentPruner<'a> {
        let preds = fact_pred
            .map(|p| {
                p.conjuncts().iter().filter_map(|c| ZonePred::from_conjunct(c, fact)).collect()
            })
            .unwrap_or_default();
        SegmentPruner { fact, preds, chains }
    }

    /// Can segment `seg` contain a row satisfying the whole selection?
    pub fn may_match(&self, seg: usize) -> bool {
        let zone = self.fact.zone(seg);
        if zone.live() == 0 {
            return false;
        }
        for p in &self.preds {
            if !p.may_match(zone.stat(p.col)) {
                return false;
            }
        }
        for &(col, bitmap) in &self.chains {
            if let ZoneStats::Key { min, max, .. } = zone.stat(col) {
                // Empty key range = every live row's FK is NULL: the chain
                // probe fails them all. Otherwise the chain bitmap must
                // have at least one qualifying dimension row in range.
                if min > max || !bitmap.any_in_range(*min as usize, *max as usize) {
                    return false;
                }
            }
        }
        true
    }

    /// Estimated rows the scan will actually visit: the live counts of the
    /// surviving segments.
    pub fn estimated_rows(&self) -> usize {
        self.survey().live_rows()
    }

    /// Runs the admission test over every segment **once**, materializing
    /// the keep/prune decisions plus the surviving live-row count. The
    /// executor computes one survey per execution and shares it between
    /// the fan-out decision, the serial scan and the parallel dispatcher —
    /// the (chain-bitmap) range probes are never repeated.
    pub fn survey(&self) -> SegmentSurvey {
        let mut keep = Vec::with_capacity(self.fact.segment_count());
        let mut live_rows = 0usize;
        let mut pruned = 0usize;
        for seg in 0..self.fact.segment_count() {
            let k = self.may_match(seg);
            if k {
                live_rows += self.fact.zone(seg).live() as usize;
            } else {
                pruned += 1;
            }
            keep.push(k);
        }
        SegmentSurvey { keep, live_rows, pruned }
    }
}

/// The materialized keep/prune decision for every segment of one
/// execution (see [`SegmentPruner::survey`]).
#[derive(Debug)]
pub struct SegmentSurvey {
    keep: Vec<bool>,
    live_rows: usize,
    pruned: usize,
}

impl SegmentSurvey {
    /// Should segment `seg` be scanned? Out-of-range segments (appended
    /// concurrently — cannot happen under the executor's snapshot) read as
    /// kept, the conservative answer.
    #[inline]
    pub fn keep(&self, seg: usize) -> bool {
        self.keep.get(seg).copied().unwrap_or(true)
    }

    /// Live rows across the surviving segments.
    pub fn live_rows(&self) -> usize {
        self.live_rows
    }

    /// Segments the survey pruned.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// `true` if every segment survived (the scan can run flat).
    pub fn all_kept(&self) -> bool {
        self.pruned == 0
    }
}

/// Fraction of the fact table's segments a single conjunct may match
/// (1.0 when the conjunct cannot prune). The optimizer folds this into
/// predicate ordering: a conjunct that zone-eliminates most segments is
/// worth evaluating first inside the survivors too.
pub fn conjunct_zone_survival(conjunct: &Pred, fact: &Table) -> f64 {
    let total = fact.segment_count();
    if total == 0 {
        return 1.0;
    }
    match ZonePred::from_conjunct(conjunct, fact) {
        Some(zp) => {
            let kept = (0..total).filter(|&s| zp.may_match(fact.zone(s).stat(zp.col))).count();
            kept as f64 / total as f64
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::prelude::*;

    /// fact(f_v i64, f_f f64, f_dim key->dim) with 3 segments of 4 rows:
    /// f_v = row * 10, f_dim = row / 4 (segment-clustered keys).
    fn fact_table() -> Table {
        let mut t = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_v", DataType::I64),
                ColumnDef::new("f_f", DataType::F64),
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
            ]),
        );
        t.set_segment_rows(4);
        for i in 0..12i64 {
            t.append_row(&[
                Value::Int(i * 10),
                Value::Float(i as f64 / 2.0),
                Value::Key((i / 4) as u32),
            ]);
        }
        t
    }

    #[test]
    fn cmp_ranges_prune_int_segments() {
        let t = fact_table();
        // f_v >= 80 → only segment 2 (values 80..=110).
        let zp = ZonePred::from_conjunct(&Pred::cmp("f_v", CmpOp::Ge, 80), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![2]);
        // f_v < 40 → only segment 0.
        let zp = ZonePred::from_conjunct(&Pred::cmp("f_v", CmpOp::Lt, 40), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![0]);
        // Eq on a boundary value.
        let zp = ZonePred::from_conjunct(&Pred::eq("f_v", 70), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![1]);
    }

    #[test]
    fn between_and_in_prune() {
        let t = fact_table();
        let zp = ZonePred::from_conjunct(&Pred::between("f_f", 2.25, 3.0), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![1], "floats 2.25..3.0 live in segment 1 (2.0..=3.5)");
        let zp = ZonePred::from_conjunct(&Pred::in_list("f_v", vec![90, 100]), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![2]);
        // Empty IN list prunes everything.
        let zp = ZonePred::from_conjunct(&Pred::in_list("f_v", Vec::<i64>::new()), &t).unwrap();
        assert!((0..t.segment_count()).all(|s| !zp.may_match(t.zone(s).stat(zp.col))));
    }

    #[test]
    fn i32_between_clamps_exactly_like_predicate_compilation() {
        // `compile_between` clamps out-of-range BETWEEN bounds into the
        // i32 domain, so `v BETWEEN 3e9 AND 4e9` still matches i32::MAX
        // rows. The zone test must keep such segments (regression: an
        // unclamped zone range pruned them, diverging from the flat scan).
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("v", DataType::I32)]));
        for v in [0i64, 5, i64::from(i32::MAX)] {
            t.append_row(&[Value::Int(v)]);
        }
        let pred = Pred::between("v", 3_000_000_000i64, 4_000_000_000i64);
        let compiled = pred.compile(&t);
        let row_hits = (0..3).filter(|&r| compiled.eval(r)).count();
        assert_eq!(row_hits, 1, "the i32::MAX row matches the clamped range");
        let zp = ZonePred::from_conjunct(&pred, &t).unwrap();
        assert!(zp.may_match(t.zone(0).stat(zp.col)), "zone test must not out-prune the rows");
        // Below-range bounds clamp symmetrically.
        let pred = Pred::between("v", -4_000_000_000i64, -3_000_000_000i64);
        let zp = ZonePred::from_conjunct(&pred, &t).unwrap();
        let compiled = pred.compile(&t);
        assert_eq!(
            (0..3).any(|r| compiled.eval(r)),
            zp.may_match(t.zone(0).stat(zp.col)),
            "zone and row tests agree on the below-range clamp"
        );
    }

    #[test]
    fn unprunable_shapes_return_none() {
        let t = fact_table();
        assert!(ZonePred::from_conjunct(&Pred::cmp("f_v", CmpOp::Ne, 10), &t).is_none());
        assert!(ZonePred::from_conjunct(&Pred::Const(true), &t).is_none());
        assert!(
            ZonePred::from_conjunct(&Pred::eq("f_dim", 1), &t).is_none(),
            "key columns are not zone-tested"
        );
        assert!(ZonePred::from_conjunct(
            &Pred::Or(vec![Pred::eq("f_v", 1), Pred::eq("f_v", 2)]),
            &t
        )
        .is_none());
    }

    #[test]
    fn chain_key_range_prunes_clustered_segments() {
        let t = fact_table();
        // Chain bitmap over 3 dimension rows: only dim row 2 qualifies →
        // only segment 2 (keys all = 2) survives.
        let mut bm = Bitmap::new(3, false);
        bm.set(2, true);
        let dim_col = t.schema().position("f_dim").unwrap();
        let pruner = SegmentPruner::new(&t, None, vec![(dim_col, &bm)]);
        let kept: Vec<usize> = (0..t.segment_count()).filter(|&s| pruner.may_match(s)).collect();
        assert_eq!(kept, vec![2]);
        assert_eq!(pruner.estimated_rows(), 4);
    }

    #[test]
    fn fully_deleted_segment_is_pruned() {
        let mut t = fact_table();
        for r in 4..8 {
            t.delete(r);
        }
        let pruner = SegmentPruner::new(&t, None, vec![]);
        let kept: Vec<usize> = (0..t.segment_count()).filter(|&s| pruner.may_match(s)).collect();
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn widened_bounds_stay_sound() {
        let mut t = fact_table();
        // Move one value of segment 0 into "segment 2 territory": the zone
        // widens and segment 0 must now survive an f_v >= 80 probe.
        t.update(1, "f_v", &Value::Int(95));
        let zp = ZonePred::from_conjunct(&Pred::cmp("f_v", CmpOp::Ge, 80), &t).unwrap();
        let kept: Vec<usize> =
            (0..t.segment_count()).filter(|&s| zp.may_match(t.zone(s).stat(zp.col))).collect();
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn survival_fraction() {
        let t = fact_table();
        let s = conjunct_zone_survival(&Pred::cmp("f_v", CmpOp::Ge, 80), &t);
        assert!((s - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(conjunct_zone_survival(&Pred::cmp("f_v", CmpOp::Ne, 1), &t), 1.0);
    }
}
