//! The query execution engine (paper §3–§4): the three-phase universal-table
//! scan with the paper's five ablation variants.
//!
//! | Variant | scan | predicate vectors | array aggregation |
//! |---|---|---|---|
//! | `AIRScan_R`     | row-wise    | no  | no (hash) |
//! | `AIRScan_R_P`   | row-wise    | yes | no (hash) |
//! | `AIRScan_C`     | column-wise | no  | no (hash) |
//! | `AIRScan_C_P`   | column-wise | yes | no (hash) |
//! | `AIRScan_C_P_G` | column-wise | yes | yes       |
//!
//! Every execution runs the same three phases and reports per-phase wall
//! time (the Fig. 10 breakdown):
//!
//! 1. **Leaf processing** — evaluate dimension predicates into predicate
//!    vectors, compose snowflake chains, build group vectors;
//! 2. **Fact scan** — evaluate fact-local predicates and probe the chains
//!    to produce the selection vector, then identify each surviving tuple's
//!    aggregation cell (the Measure Index);
//! 3. **Aggregation** — scan the measure columns through the Measure Index
//!    into the multidimensional aggregation array (or hash table).

use std::sync::Arc;
use std::time::{Duration, Instant};

use astore_obs::{SpanId, TraceBuf};
use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::selvec::SelVec;
use astore_storage::types::{Key, RowId, Value, NULL_KEY};

use crate::agg::{AggTable, Grouper};
use crate::filter::{build_chain_filter, participating_chains, ChainSpec, FactPred};
use crate::graph::JoinGraph;
use crate::groupvec::{build_group_vector, label_at, DictRef, FactGrouper, GroupDict, GroupVector};
use crate::optimizer::{AggStrategy, OptimizerConfig};
use crate::query::{AggFunc, Query};
use crate::result::QueryResult;
use crate::scan::{select_bitmap_and, select_columnwise, select_rowwise, ChainCheck, DirectCheck};
use crate::universal::{bind_root, BindError, Universal};
use crate::zone::{SegmentPruner, SegmentSurvey};

/// The five scan variants of the paper's §6.3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanVariant {
    /// `AIRScan_R`: row-wise scan, no predicate vectors, hash aggregation.
    RowWise,
    /// `AIRScan_R_P`: row-wise scan with predicate vectors.
    RowWisePredVec,
    /// `AIRScan_C`: column-wise vector scan, no predicate vectors.
    ColumnWise,
    /// `AIRScan_C_P`: column-wise scan with predicate vectors.
    ColumnWisePredVec,
    /// `AIRScan_C_P_G`: the full system — column-wise scan, predicate
    /// vectors, and array-based column-wise aggregation.
    Full,
}

impl ScanVariant {
    /// All variants, in the paper's Table 6 order.
    pub const ALL: [ScanVariant; 5] = [
        ScanVariant::RowWise,
        ScanVariant::RowWisePredVec,
        ScanVariant::ColumnWise,
        ScanVariant::ColumnWisePredVec,
        ScanVariant::Full,
    ];

    /// The paper's name for the variant.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ScanVariant::RowWise => "AIRScan_R",
            ScanVariant::RowWisePredVec => "AIRScan_R_P",
            ScanVariant::ColumnWise => "AIRScan_C",
            ScanVariant::ColumnWisePredVec => "AIRScan_C_P",
            ScanVariant::Full => "AIRScan_C_P_G",
        }
    }

    /// Column-wise selection-vector scan?
    pub fn column_wise(&self) -> bool {
        !matches!(self, ScanVariant::RowWise | ScanVariant::RowWisePredVec)
    }

    /// Pre-built predicate vectors?
    pub fn use_predvec(&self) -> bool {
        matches!(
            self,
            ScanVariant::RowWisePredVec | ScanVariant::ColumnWisePredVec | ScanVariant::Full
        )
    }

    /// Group vectors + dense aggregation array?
    pub fn array_agg(&self) -> bool {
        matches!(self, ScanVariant::Full)
    }
}

/// How the column-wise variants materialize the selection (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// A-Store's selection vector, refined predicate by predicate so later
    /// predicates skip already-failed tuples (the default).
    #[default]
    VectorRefine,
    /// The conventional alternative the paper argues against: each
    /// predicate scans its whole column into a bitmap, bitmaps are ANDed.
    /// Kept as an ablation comparator.
    BitmapAnd,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Scan variant (default: the full system).
    pub variant: ScanVariant,
    /// Requested worker threads (1 = serial). This is a *request*: the
    /// planner clamps the fan-out so small scans stay serial (see
    /// [`OptimizerConfig::plan_threads`]); [`PlanInfo::executor`] reports
    /// what actually ran.
    pub threads: usize,
    /// Maximum rows per morsel handed to a worker by the morsel dispatcher
    /// (§5). The dispatcher shrinks morsels below this cap on small tables
    /// so every worker still sees several morsels.
    pub morsel_rows: usize,
    /// Optimizer tunables.
    pub optimizer: OptimizerConfig,
    /// Overrides the optimizer's aggregation-strategy decision.
    pub force_agg: Option<AggStrategy>,
    /// Selection materialization for column-wise variants.
    pub selection: SelectionStrategy,
    /// Zone-map data skipping: consult per-segment statistics to skip whole
    /// fact-table segments before evaluating predicates (default on).
    /// Disabling it reproduces the pre-segmentation flat scan — the
    /// ablation baseline of the `scan_pruning` bench and differential.
    pub pruning: bool,
    /// Encoded-segment scans: let seedable fact predicates run directly on
    /// sealed segments' compressed form (bit-packed / RLE kernels) instead
    /// of the flat arrays (default on). Disabling reproduces the flat
    /// columnar scan on identical data — the compression ablation of the
    /// encoded differential.
    pub encoded: bool,
    /// Span buffer for this execution (`None` = tracing off). When set, the
    /// executor records one span per phase — bind, leaf processing,
    /// optimize (with per-segment prune-decision events), fact scan (with
    /// per-morsel spans under the parallel executor), aggregation/merge —
    /// all parented under a root `execute` span. When `None`, the
    /// instrumentation reduces to an `Option` branch per phase.
    pub trace: Option<Arc<TraceBuf>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            variant: ScanVariant::Full,
            threads: 1,
            morsel_rows: crate::parallel::DEFAULT_MORSEL_ROWS,
            optimizer: OptimizerConfig::default(),
            force_agg: None,
            selection: SelectionStrategy::default(),
            pruning: true,
            encoded: true,
            trace: None,
        }
    }
}

impl ExecOptions {
    /// Options for a specific variant, defaults otherwise.
    pub fn with_variant(variant: ScanVariant) -> Self {
        ExecOptions { variant, ..Default::default() }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the morsel-size cap (rows per dispatched morsel).
    pub fn morsel_rows(mut self, n: usize) -> Self {
        self.morsel_rows = n.max(1);
        self
    }

    /// Enables or disables zone-map segment skipping.
    pub fn pruning(mut self, on: bool) -> Self {
        self.pruning = on;
        self
    }

    /// Enables or disables predicate evaluation on encoded segments.
    pub fn encoded(mut self, on: bool) -> Self {
        self.encoded = on;
        self
    }

    /// Attaches a span buffer; the execution records per-phase spans into
    /// it.
    pub fn trace(mut self, buf: Arc<TraceBuf>) -> Self {
        self.trace = Some(buf);
        self
    }
}

/// Wall-clock time per execution phase (the Fig. 10 breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: leaf-table processing (predicate vectors + group vectors).
    pub leaf: Duration,
    /// Phase 2: fact scan — selection and Measure Index generation.
    pub scan: Duration,
    /// Phase 3: measure-column aggregation.
    pub agg: Duration,
    /// End-to-end, including binding and result assembly.
    pub total: Duration,
}

/// Which executor actually ran a query.
///
/// [`ExecOptions::threads`] is a request, not a promise: the planner keeps
/// small scans serial and clamps the fan-out to the row count, and a server
/// core budget may have granted fewer threads than configured. Benches and
/// tests assert on this instead of trusting the request — a silent serial
/// fallback is a measurement bug waiting to happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorInfo {
    /// Single-threaded three-phase execution.
    Serial {
        /// Threads the caller requested (`> 1` means the planner clamped
        /// the fan-out back to serial).
        requested_threads: usize,
    },
    /// Morsel-driven parallel execution (§5).
    Parallel {
        /// Worker threads actually spawned.
        threads: usize,
        /// Threads the caller requested.
        requested_threads: usize,
        /// Morsels the shared dispatcher handed out.
        morsels: usize,
        /// Rows per morsel (the last morsel may be shorter).
        morsel_rows: usize,
    },
}

impl ExecutorInfo {
    /// Did the morsel-driven parallel executor run?
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecutorInfo::Parallel { .. })
    }

    /// Worker threads that actually executed the scan.
    pub fn threads(&self) -> usize {
        match self {
            ExecutorInfo::Serial { .. } => 1,
            ExecutorInfo::Parallel { threads, .. } => *threads,
        }
    }
}

impl std::fmt::Display for ExecutorInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorInfo::Serial { requested_threads: 1 } => write!(f, "serial"),
            ExecutorInfo::Serial { requested_threads } => {
                write!(f, "serial (clamped from {requested_threads} requested)")
            }
            ExecutorInfo::Parallel { threads, morsels, morsel_rows, .. } => {
                write!(f, "parallel ({threads} threads, {morsels} morsels x {morsel_rows} rows)")
            }
        }
    }
}

/// What the optimizer decided and what the scan saw — for tests, harnesses
/// and EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct PlanInfo {
    /// The bound root (fact) table.
    pub root: String,
    /// The executor that actually ran (serial vs morsel-driven parallel).
    pub executor: ExecutorInfo,
    /// Chains probed via predicate vectors.
    pub predvec_chains: usize,
    /// Chains evaluated by direct AIR chasing.
    pub direct_chains: usize,
    /// The aggregation strategy used.
    pub agg_strategy: AggStrategy,
    /// Fact-table segments the scan actually visited.
    pub segments_scanned: usize,
    /// Fact-table segments skipped whole by zone-map pruning (their
    /// columns were never touched).
    pub segments_pruned: usize,
    /// Tuples surviving selection.
    pub selected_rows: usize,
    /// Non-empty groups produced.
    pub groups: usize,
}

/// A completed execution.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// The result rows.
    pub result: QueryResult,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Plan diagnostics.
    pub plan: PlanInfo,
}

/// Executes a SPJGA query against a database.
///
/// This is the primary entry point of A-Store. The query is bound once and
/// phase 1 (leaf processing) runs once; its composed chain filters feed the
/// [`SegmentPruner`], whose surviving-row estimate drives the planner's
/// fan-out decision ([`OptimizerConfig::plan_threads`]): with
/// `opts.threads > 1` *and* enough surviving rows to amortize worker spawn,
/// the scan is driven by the segment-aligned morsel dispatcher (§5);
/// otherwise execution is serial. [`PlanInfo::executor`] reports which path
/// ran, and [`PlanInfo::segments_pruned`] how much of the fact table was
/// never touched.
pub fn execute(db: &Database, query: &Query, opts: &ExecOptions) -> Result<ExecOutput, BindError> {
    let t_start = Instant::now();
    let trace = opts.trace.as_deref();
    // The root span id is reserved up front so every phase span can link to
    // it; its interval is recorded last, once the total is known.
    let root_span = trace.map(|t| t.alloc());
    if query.has_params() {
        return Err(BindError::UnboundParams(query.param_count()));
    }
    let graph = JoinGraph::build(db);
    let root = bind_root(&graph, query.root.as_deref(), &query.referenced_tables())?;
    let u = Universal::new(db, &graph, &root)?;
    if let Some(t) = trace {
        let start = t.us_since_epoch(t_start);
        t.add("bind", root_span, start, t.now_us().saturating_sub(start), vec![]);
    }

    // Phase 1 (leaf processing) is shared by both executors; it runs before
    // the fan-out decision so the pruner can use the chain filters.
    let t_leaf = Instant::now();
    let leaf = prepare_leaf(&u, query, opts)?;
    let leaf_time = t_leaf.elapsed();
    if let Some(t) = trace {
        t.add(
            "phase1_leaf",
            root_span,
            t.us_since_epoch(t_leaf),
            leaf_time.as_micros() as u64,
            vec![
                ("chains", leaf.chains.len() as i64),
                ("predvec_chains", leaf.filters.iter().filter(|f| f.is_some()).count() as i64),
            ],
        );
    }
    // The per-segment admission tests run exactly once, into a survey that
    // the fan-out decision, the serial scan and the parallel dispatcher all
    // share.
    let t_opt = Instant::now();
    let survey = build_pruner(&u, query, &leaf, opts).map(|p| p.survey());

    // The fan-out decision sees what the scan will actually visit: live
    // rows of the surviving segments, not raw slots (with pruning disabled,
    // the pre-segmentation behaviour — raw slot count — is preserved).
    let est_rows = match &survey {
        Some(s) => s.live_rows(),
        None => u.root_table().num_slots(),
    };
    let threads = opts.optimizer.plan_threads(est_rows, opts.threads);
    if let Some(t) = trace {
        let opt_span = t.alloc();
        // One point event per segment decision, nested under `optimize` —
        // the EXPLAIN ANALYZE rendering of "which segments were skipped".
        if let Some(s) = &survey {
            for seg in 0..u.root_table().segment_count() {
                t.event(
                    "segment_prune",
                    Some(opt_span),
                    vec![("segment", seg as i64), ("kept", i64::from(s.keep(seg)))],
                );
            }
        }
        let start = t.us_since_epoch(t_opt);
        t.record(
            opt_span,
            "optimize",
            root_span,
            start,
            t.now_us().saturating_sub(start),
            vec![("est_rows", est_rows as i64), ("threads", threads as i64)],
        );
    }
    if threads > 1 {
        crate::parallel::execute_parallel(
            &u,
            query,
            opts,
            threads,
            &leaf,
            leaf_time,
            survey.as_ref(),
            t_start,
            root_span,
        )
    } else {
        execute_serial(&u, query, opts, &leaf, leaf_time, survey.as_ref(), t_start, root_span)
    }
}

/// Builds the segment pruner for an execution: fact-local zone predicates
/// plus a key-range test per materialized chain filter. `None` when data
/// skipping is disabled.
pub(crate) fn build_pruner<'a>(
    u: &Universal<'a>,
    query: &Query,
    leaf: &'a LeafArtifacts,
    opts: &ExecOptions,
) -> Option<SegmentPruner<'a>> {
    if !opts.pruning {
        return None;
    }
    let fact = u.root_table();
    let chains = leaf
        .chains
        .iter()
        .zip(&leaf.filters)
        .filter_map(|(chain, filter)| {
            let bitmap = filter.as_ref()?;
            Some((fact.schema().position(&chain.fact_key_col)?, bitmap))
        })
        .collect();
    Some(SegmentPruner::new(fact, query.selection_on(u.root()), chains))
}

#[allow(clippy::too_many_arguments)]
fn execute_serial(
    u: &Universal<'_>,
    query: &Query,
    opts: &ExecOptions,
    leaf: &LeafArtifacts,
    leaf_time: Duration,
    survey: Option<&SegmentSurvey>,
    t_start: Instant,
    root_span: Option<SpanId>,
) -> Result<ExecOutput, BindError> {
    let trace = opts.trace.as_deref();
    let t_scan = Instant::now();
    let n = u.root_table().num_slots();
    let fact_preds = compile_fact_preds(u, query, opts);
    let mut chain_checks = build_chain_checks(u, query, leaf)?;
    let mut sa = scan_phase(u, query, opts, leaf, &fact_preds, &mut chain_checks, 0..n, survey)?;
    let scan_time = t_scan.elapsed();
    if let Some(t) = trace {
        t.add(
            "phase2_scan",
            root_span,
            t.us_since_epoch(t_scan),
            scan_time.as_micros() as u64,
            vec![
                ("selected_rows", sa.selected as i64),
                ("segments_scanned", sa.segments_scanned as i64),
                ("segments_pruned", sa.segments_pruned as i64),
            ],
        );
    }

    let t_agg = Instant::now();
    aggregate_phase(u, query, &mut sa);
    let agg_time = t_agg.elapsed();
    if let Some(t) = trace {
        t.add(
            "phase3_agg",
            root_span,
            t.us_since_epoch(t_agg),
            agg_time.as_micros() as u64,
            vec![("groups", sa.agg.occupied() as i64)],
        );
    }

    let mut result = build_result(query, &sa.agg, &sa.dicts);
    result.order_and_limit(&query.order_by, query.limit);

    let plan = PlanInfo {
        root: u.root().to_owned(),
        executor: ExecutorInfo::Serial { requested_threads: opts.threads },
        predvec_chains: leaf.filters.iter().filter(|f| f.is_some()).count(),
        direct_chains: leaf.filters.iter().filter(|f| f.is_none()).count(),
        agg_strategy: sa.strategy,
        segments_scanned: sa.segments_scanned,
        segments_pruned: sa.segments_pruned,
        selected_rows: sa.selected,
        groups: sa.agg.occupied(),
    };
    let total = t_start.elapsed();
    if let (Some(t), Some(id)) = (trace, root_span) {
        let start = t.us_since_epoch(t_start);
        t.record(
            id,
            "execute",
            None,
            start,
            t.now_us().saturating_sub(start),
            vec![("selected_rows", plan.selected_rows as i64), ("groups", plan.groups as i64)],
        );
    }
    Ok(ExecOutput {
        result,
        timings: PhaseTimings { leaf: leaf_time, scan: scan_time, agg: agg_time, total },
        plan,
    })
}

/// Artifacts of the leaf-processing phase, shared read-only by all workers
/// (§5: "we centralize the evaluation of the leaf tables").
pub(crate) struct LeafArtifacts {
    /// The dimension chains the query touches.
    pub chains: Vec<ChainSpec>,
    /// Composed predicate vector per chain (`None` = direct probing).
    pub filters: Vec<Option<Bitmap>>,
    /// Group vector per grouping column (`None` for root-table grouping
    /// columns and for non-`_G` variants).
    pub group_vectors: Vec<Option<GroupVector>>,
}

/// Phase 1: leaf-table processing.
pub(crate) fn prepare_leaf(
    u: &Universal<'_>,
    query: &Query,
    opts: &ExecOptions,
) -> Result<LeafArtifacts, BindError> {
    let chains = participating_chains(u.graph(), u.root(), query)?;

    let mut filters: Vec<Option<Bitmap>> = Vec::with_capacity(chains.len());
    for chain in &chains {
        let dim_rows = u.db().table(&chain.dim_table).map(|t| t.num_slots()).unwrap_or(0);
        let use_vec = opts.variant.use_predvec()
            && chain.has_predicates
            && opts.optimizer.use_predicate_vector(dim_rows);
        if use_vec {
            filters.push(Some(build_chain_filter(u.db(), u.graph(), query, chain)));
        } else {
            filters.push(None);
        }
    }

    let mut group_vectors: Vec<Option<GroupVector>> = Vec::with_capacity(query.group_by.len());
    for g in &query.group_by {
        if !opts.variant.array_agg() || g.table == u.root() {
            group_vectors.push(None);
            continue;
        }
        // Find the chain this grouping column hangs off, to reuse its
        // composed filter for null-ing out filtered dimension rows.
        let path = u.graph().path(u.root(), &g.table).ok_or_else(|| BindError::Unreachable {
            root: u.root().into(),
            table: g.table.clone(),
        })?;
        let key_col = &path.steps[0].key_column;
        let filter = chains
            .iter()
            .position(|c| &c.fact_key_col == key_col)
            .and_then(|i| filters[i].as_ref());
        group_vectors.push(Some(build_group_vector(u.db(), u.graph(), u.root(), g, filter)?));
    }

    Ok(LeafArtifacts { chains, filters, group_vectors })
}

/// Builds the per-chain selection checks for the fact scan.
pub(crate) fn build_chain_checks<'a>(
    u: &Universal<'a>,
    query: &Query,
    leaf: &'a LeafArtifacts,
) -> Result<Vec<ChainCheck<'a>>, BindError> {
    let fact = u.root_table();
    let mut out = Vec::new();
    for (chain, filter) in leaf.chains.iter().zip(&leaf.filters) {
        let (_, keys) = fact
            .column(&chain.fact_key_col)
            .expect("chain key column exists")
            .as_key()
            .expect("chain key column is a key");
        if let Some(bitmap) = filter {
            out.push(ChainCheck::PredVec { keys, bitmap });
            continue;
        }
        // Direct probing: one check per table that carries a predicate or
        // has deleted tuples. Order nearest-first so cheap hops run first.
        let mut checks: Vec<DirectCheck<'a>> = Vec::new();
        let mut tables: Vec<&String> = chain.tables.iter().collect();
        tables.sort_by_key(|t| u.graph().path(u.root(), t).map(|p| p.len()).unwrap_or(usize::MAX));
        for t in tables {
            let table = u.db().table(t).ok_or_else(|| BindError::NoTable(t.clone()))?;
            let pred = query.selection_on(t).map(|p| p.compile(table));
            let live = table.has_deletes().then(|| table.live_bitmap());
            if pred.is_none() && live.is_none() {
                continue;
            }
            checks.push(DirectCheck { hops: u.hops_to(t)?, live, pred });
        }
        if !checks.is_empty() {
            out.push(ChainCheck::Direct { checks });
        }
    }
    Ok(out)
}

/// What a grouping column reads from during the fact scan.
enum GroupSource<'a> {
    /// Probe a pre-built group vector through a fact FK column (`_G`).
    DimVec { keys: &'a [Key], gv: &'a GroupVector },
    /// Intern values of a root-table column on the fly.
    Fact(FactGrouper<'a>),
    /// Chase the AIR chain and intern the label per row (non-`_G`).
    Resolved { rc: crate::universal::ResolvedCol<'a>, live: Option<&'a Bitmap>, dict: GroupDict },
}

/// Artifacts of the fact-scan phase: the Measure Index plus the aggregation
/// table it addresses.
pub(crate) struct ScanArtifacts<'a> {
    /// Row ids of tuples that survived selection *and* grouping.
    pub mi_rows: Vec<u32>,
    /// Their aggregation cells (the Measure Index).
    pub mi_cells: Vec<u32>,
    /// The aggregation table (cells registered, accumulators empty).
    pub agg: AggTable,
    /// Group dictionaries, one per grouping column. Shared leaf dictionaries
    /// are borrowed, not cloned — a worker draining many morsels produces
    /// one `ScanArtifacts` per morsel.
    pub dicts: Vec<DictRef<'a>>,
    /// Tuples surviving selection (before group-null drops).
    pub selected: usize,
    /// The aggregation strategy in effect.
    pub strategy: AggStrategy,
    /// Segments this scan visited.
    pub segments_scanned: usize,
    /// Segments this scan skipped whole via zone maps.
    pub segments_pruned: usize,
}

/// Compiles the fact-local predicates and orders them most-selective-first
/// (§4.1). With pruning enabled, the ordering key blends a prefix-sample
/// estimate with the zone-map survival fraction (the share of segments the
/// conjunct may match): a conjunct that zone-eliminates most of the table
/// is cheap *and* selective inside the survivors, so it runs first. With
/// `opts.pruning` off, zone maps are not consulted at all — the flat-scan
/// ablation baseline reproduces the pre-segmentation ordering exactly.
/// Hoisted out of [`scan_phase`] so the cost is paid once per execution,
/// not once per morsel; the compiled predicates are shared read-only by
/// every worker.
pub(crate) fn compile_fact_preds<'a>(
    u: &Universal<'a>,
    query: &Query,
    opts: &ExecOptions,
) -> Vec<FactPred<'a>> {
    use crate::expr::Pred;
    let fact = u.root_table();
    let conjuncts = query.selection_on(u.root()).map(|p| p.conjuncts()).unwrap_or_default();
    // Each conjunct compiles, then derives its encoded-scan seed from the
    // compiled form — literal coercions included — when the fact column is
    // resolvable and encoded scans are enabled.
    let seed_col = |c: &Pred| -> Option<usize> {
        if !opts.encoded {
            return None;
        }
        match c {
            Pred::Cmp { col, .. } | Pred::Between { col, .. } | Pred::InList { col, .. } => {
                fact.schema().position(col)
            }
            _ => None,
        }
    };
    let wrap = |c: &&Pred| -> FactPred<'a> {
        let p = c.compile(fact);
        match seed_col(c) {
            Some(col) => FactPred::seeded(p, col),
            None => FactPred::unseeded(p),
        }
    };
    let mut fact_preds: Vec<FactPred<'a>> = conjuncts.iter().map(wrap).collect();
    if fact_preds.len() > 1 {
        let n = fact.num_slots();
        let mut keyed: Vec<(f64, FactPred<'a>)> = fact_preds
            .drain(..)
            .zip(&conjuncts)
            .map(|(p, c)| {
                let sampled = p.pred.sampled_selectivity(n, 1024);
                if !opts.pruning {
                    return (sampled, p);
                }
                let zoned = crate::zone::conjunct_zone_survival(c, fact);
                (sampled.min(zoned), p)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        fact_preds = keyed.into_iter().map(|(_, p)| p).collect();
    }
    fact_preds
}

/// Phase 2: the fact scan over `range` — selection, then grouping into the
/// Measure Index.
///
/// With a [`SegmentSurvey`], pruned segments are skipped *before* any
/// predicate touches their columns; `None` scans the range flat (the
/// parallel path prunes at dispatch time, so workers pass `None`). When
/// every overlapping segment survives, the range is scanned in one flat
/// pass — no per-segment re-materialization cost for unselective queries.
/// Otherwise sub-ranges stay in ascending row order, so the concatenated
/// selection vector — and therefore every float accumulation order
/// downstream — is identical to a flat scan over the surviving rows.
///
/// `fact_preds` ([`compile_fact_preds`]) and `chain_checks`
/// ([`build_chain_checks`]) are built by the caller: once per execution for
/// the serial path, once per *worker* for the parallel path, so a worker
/// claiming dozens of morsels pays the setup once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_phase<'a>(
    u: &Universal<'a>,
    query: &Query,
    opts: &ExecOptions,
    leaf: &'a LeafArtifacts,
    fact_preds: &[FactPred<'a>],
    chain_checks: &mut [ChainCheck<'a>],
    range: std::ops::Range<usize>,
    survey: Option<&SegmentSurvey>,
) -> Result<ScanArtifacts<'a>, BindError> {
    let fact = u.root_table();

    let seg_rows = fact.segment_rows();
    let (seg_lo, seg_hi) = if range.is_empty() {
        (0, 0)
    } else {
        (range.start / seg_rows, range.end.div_ceil(seg_rows))
    };
    let mut segments_scanned = 0usize;
    let mut segments_pruned = 0usize;
    let select = |sub: std::ops::Range<usize>, chain_checks: &mut [ChainCheck<'a>]| {
        if !opts.variant.column_wise() {
            select_rowwise(fact, sub, fact_preds, chain_checks)
        } else {
            match opts.selection {
                SelectionStrategy::VectorRefine => {
                    select_columnwise(fact, sub, fact_preds, chain_checks)
                }
                SelectionStrategy::BitmapAnd => {
                    select_bitmap_and(fact, sub, fact_preds, chain_checks)
                }
            }
        }
    };
    let sv = match survey {
        Some(s) if !(seg_lo..seg_hi).all(|seg| s.keep(seg)) => {
            let mut rows: Vec<RowId> = Vec::new();
            for seg in seg_lo..seg_hi {
                if s.keep(seg) {
                    segments_scanned += 1;
                    let seg_start = seg * seg_rows;
                    let sub = range.start.max(seg_start)..range.end.min(seg_start + seg_rows);
                    rows.extend_from_slice(select(sub, chain_checks).rows());
                } else {
                    segments_pruned += 1;
                }
            }
            SelVec::from_rows(rows)
        }
        _ => {
            segments_scanned = seg_hi - seg_lo;
            select(range, chain_checks)
        }
    };
    let selected = sv.len();

    // Grouping sources.
    let mut sources: Vec<GroupSource<'_>> = Vec::with_capacity(query.group_by.len());
    for (gi, g) in query.group_by.iter().enumerate() {
        if g.table == u.root() {
            let col = fact
                .column(&g.column)
                .ok_or_else(|| BindError::NoColumn(g.table.clone(), g.column.clone()))?;
            sources.push(GroupSource::Fact(FactGrouper::new(col)));
        } else if let Some(gv) = leaf.group_vectors[gi].as_ref() {
            let (_, keys) = fact
                .column(&gv.fact_key_col)
                .expect("group vector key column exists")
                .as_key()
                .expect("group vector key column is a key");
            sources.push(GroupSource::DimVec { keys, gv });
        } else {
            let rc = u.resolve(g)?;
            let live = rc.table.has_deletes().then(|| rc.table.live_bitmap());
            sources.push(GroupSource::Resolved { rc, live, dict: GroupDict::new() });
        }
    }

    // Column-wise code pass: one pass per grouping column (§4.3).
    let rows = sv.rows();
    let mut dim_codes: Vec<Vec<Key>> = Vec::with_capacity(sources.len());
    for src in &mut sources {
        let mut codes = vec![NULL_KEY; rows.len()];
        match src {
            GroupSource::DimVec { keys, gv } => {
                for (i, &r) in rows.iter().enumerate() {
                    codes[i] = gv.probe(keys[r as usize]);
                }
            }
            GroupSource::Fact(fg) => {
                for (i, &r) in rows.iter().enumerate() {
                    codes[i] = fg.code_for(r as usize);
                }
            }
            GroupSource::Resolved { rc, live, dict } => {
                for (i, &r) in rows.iter().enumerate() {
                    if let Some(row) = rc.locate(r as usize) {
                        if live.is_none_or(|bm| bm.get_or_false(row)) {
                            codes[i] = dict.intern(label_at(rc.column, row));
                        }
                    }
                }
            }
        }
        dim_codes.push(codes);
    }

    // Radices are final once the code pass is done.
    let radices: Vec<u32> = sources
        .iter()
        .map(|s| match s {
            GroupSource::DimVec { gv, .. } => gv.dict.len() as u32,
            GroupSource::Fact(fg) => fg.dict.len() as u32,
            GroupSource::Resolved { dict, .. } => dict.len() as u32,
        })
        .collect();

    let strategy = opts.force_agg.unwrap_or_else(|| {
        if opts.variant.array_agg() {
            opts.optimizer.agg_strategy(&radices)
        } else {
            AggStrategy::HashTable
        }
    });
    let grouper = if query.group_by.is_empty() {
        Grouper::Scalar
    } else {
        match strategy {
            AggStrategy::DenseArray => Grouper::dense(radices),
            AggStrategy::HashTable => Grouper::hash(query.group_by.len()),
        }
    };
    let funcs: Vec<AggFunc> = query.aggregates.iter().map(|a| a.func).collect();
    let mut agg = AggTable::new(grouper, &funcs);

    // Measure Index: cell per surviving tuple; tuples with a NULL group
    // coordinate are dropped (the paper's −1 entries).
    let mut mi_rows = Vec::with_capacity(rows.len());
    let mut mi_cells = Vec::with_capacity(rows.len());
    let dims = dim_codes.len();
    let mut coords = vec![0 as Key; dims];
    'rows: for (i, &r) in rows.iter().enumerate() {
        for d in 0..dims {
            let c = dim_codes[d][i];
            if c == NULL_KEY {
                continue 'rows;
            }
            coords[d] = c;
        }
        let cell = agg.register(&coords);
        mi_rows.push(r);
        mi_cells.push(cell);
    }

    // Collect the group dictionaries for result decoding. Leaf dictionaries
    // stay borrowed; only scan-built dictionaries are moved out.
    let dicts: Vec<DictRef<'a>> = sources
        .into_iter()
        .map(|s| match s {
            GroupSource::DimVec { gv, .. } => DictRef::Shared(&gv.dict),
            GroupSource::Fact(fg) => DictRef::Owned(fg.dict),
            GroupSource::Resolved { dict, .. } => DictRef::Owned(dict),
        })
        .collect();

    Ok(ScanArtifacts {
        mi_rows,
        mi_cells,
        agg,
        dicts,
        selected,
        strategy,
        segments_scanned,
        segments_pruned,
    })
}

/// Phase 3: measure-column aggregation, driven column-wise by the Measure
/// Index — "only the parts of the measure columns referred by the Measure
/// Index need to be accessed" (§4.3).
pub(crate) fn aggregate_phase(u: &Universal<'_>, query: &Query, sa: &mut ScanArtifacts<'_>) {
    let fact = u.root_table();
    for (j, aggdef) in query.aggregates.iter().enumerate() {
        match (&aggdef.expr, aggdef.func) {
            (None, AggFunc::Count) | (None, _) => {
                let st = sa.agg.state_mut(j);
                for &cell in &sa.mi_cells {
                    st.update(cell, 0.0);
                }
            }
            (Some(expr), _) => {
                let cm = expr.compile(fact);
                let st = sa.agg.state_mut(j);
                for (&r, &cell) in sa.mi_rows.iter().zip(&sa.mi_cells) {
                    st.update(cell, cm.eval(r as usize));
                }
            }
        }
    }
}

/// Assembles the result rows from the aggregation table.
pub(crate) fn build_result(query: &Query, agg: &AggTable, dicts: &[DictRef<'_>]) -> QueryResult {
    let columns = query.output_names();
    let cells = agg.emit();
    let mut rows = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut row: Vec<Value> = Vec::with_capacity(columns.len());
        for (d, &coord) in cell.coords.iter().enumerate() {
            row.push(dicts[d].label(coord).to_value());
        }
        for (a, &(sum, count)) in cell.accs.iter().enumerate() {
            row.push(agg_output(query.aggregates[a].func, sum, count));
        }
        rows.push(row);
    }
    QueryResult { columns, rows }
}

/// Converts a raw accumulator into the output value of an aggregate.
pub fn agg_output(func: AggFunc, sum: f64, count: u64) -> Value {
    match func {
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => Value::Float(sum),
        AggFunc::Count => Value::Int(count as i64),
        AggFunc::Avg => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(sum / count as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, MeasureExpr, Pred};
    use crate::query::{Aggregate, OrderKey};
    use astore_storage::prelude::*;

    /// A small star: lineorder(custkey, datekey, revenue, discount),
    /// customer(c_nation dict, c_region dict), date(d_year i32).
    fn star_db() -> Database {
        let mut db = Database::new();

        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Dict),
                ColumnDef::new("c_region", DataType::Dict),
            ]),
        );
        let custs =
            [("CHINA", "ASIA"), ("JAPAN", "ASIA"), ("BRAZIL", "AMERICA"), ("CANADA", "AMERICA")];
        for (n, r) in custs {
            customer.append_row(&[Value::Str(n.into()), Value::Str(r.into())]);
        }

        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1992, 1993, 1994] {
            date.append_row(&[Value::Int(y)]);
        }

        let mut fact = Table::new(
            "lineorder",
            Schema::new(vec![
                ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
                ColumnDef::new("lo_datekey", DataType::Key { target: "date".into() }),
                ColumnDef::new("lo_revenue", DataType::I64),
                ColumnDef::new("lo_discount", DataType::I32),
            ]),
        );
        // (cust, date, revenue, discount)
        let rows: [(u32, u32, i64, i32); 8] = [
            (0, 0, 100, 1),
            (1, 0, 200, 2),
            (2, 1, 300, 3),
            (3, 1, 400, 1),
            (0, 2, 500, 2),
            (1, 2, 600, 3),
            (2, 0, 700, 1),
            (0, 1, 800, 2),
        ];
        for (c, d, r, disc) in rows {
            fact.append_row(&[
                Value::Key(c),
                Value::Key(d),
                Value::Int(r),
                Value::Int(i64::from(disc)),
            ]);
        }

        db.add_table(customer);
        db.add_table(date);
        db.add_table(fact);
        db
    }

    fn asia_by_year() -> Query {
        Query::new()
            .filter("customer", Pred::eq("c_region", "ASIA"))
            .group("date", "d_year")
            .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "revenue"))
            .order(OrderKey::asc("d_year"))
    }

    /// Expected: ASIA customers are 0 and 1.
    /// year 1992: rows 0 (100) + 1 (200) = 300
    /// year 1993: row 7 (800) = 800
    /// year 1994: rows 4 (500) + 5 (600) = 1100
    fn expected_asia_by_year() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1992), Value::Float(300.0)],
            vec![Value::Int(1993), Value::Float(800.0)],
            vec![Value::Int(1994), Value::Float(1100.0)],
        ]
    }

    #[test]
    fn full_variant_executes_star_query() {
        let db = star_db();
        let out = execute(&db, &asia_by_year(), &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows, expected_asia_by_year());
        assert_eq!(out.plan.root, "lineorder");
        assert_eq!(out.plan.selected_rows, 5);
        assert_eq!(out.plan.groups, 3);
        assert_eq!(out.plan.agg_strategy, AggStrategy::DenseArray);
        assert_eq!(out.plan.predvec_chains, 1);
    }

    #[test]
    fn all_variants_agree() {
        let db = star_db();
        let q = asia_by_year();
        let reference = execute(&db, &q, &ExecOptions::default()).unwrap();
        for v in ScanVariant::ALL {
            let out = execute(&db, &q, &ExecOptions::with_variant(v)).unwrap();
            assert!(
                out.result.same_contents(&reference.result, 1e-9),
                "variant {} diverged:\n{:?}\nvs\n{:?}",
                v.paper_name(),
                out.result.rows,
                reference.result.rows
            );
        }
    }

    #[test]
    fn non_full_variants_use_hash_aggregation() {
        let db = star_db();
        let out = execute(
            &db,
            &asia_by_year(),
            &ExecOptions::with_variant(ScanVariant::ColumnWisePredVec),
        )
        .unwrap();
        assert_eq!(out.plan.agg_strategy, AggStrategy::HashTable);
    }

    #[test]
    fn fact_local_predicates_and_fact_grouping() {
        let db = star_db();
        // select lo_discount, count(*), sum(lo_revenue) group by lo_discount
        // where lo_revenue >= 300
        let q = Query::new()
            .filter("lineorder", Pred::cmp("lo_revenue", CmpOp::Ge, 300))
            .group("lineorder", "lo_discount")
            .agg(Aggregate::count("n"))
            .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "rev"))
            .order(OrderKey::asc("lo_discount"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(
            out.result.rows,
            vec![
                vec![Value::Int(1), Value::Int(2), Value::Float(1100.0)], // rows 3,6
                vec![Value::Int(2), Value::Int(2), Value::Float(1300.0)], // rows 4,7
                vec![Value::Int(3), Value::Int(2), Value::Float(900.0)],  // rows 2,5
            ]
        );
    }

    #[test]
    fn count_star_without_group_by() {
        let db = star_db();
        let q = Query::new()
            .root("lineorder")
            .filter("date", Pred::eq("d_year", 1992))
            .agg(Aggregate::count("n"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn empty_selection_yields_no_rows() {
        let db = star_db();
        let q = Query::new()
            .root("lineorder")
            .filter("date", Pred::eq("d_year", 2099))
            .group("customer", "c_nation")
            .agg(Aggregate::count("n"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.plan.selected_rows, 0);
    }

    #[test]
    fn min_max_avg() {
        let db = star_db();
        let q = Query::new()
            .root("lineorder")
            .group("customer", "c_region")
            .agg(Aggregate::min(MeasureExpr::col("lo_revenue"), "lo"))
            .agg(Aggregate::max(MeasureExpr::col("lo_revenue"), "hi"))
            .agg(Aggregate::avg(MeasureExpr::col("lo_revenue"), "avg"))
            .order(OrderKey::asc("c_region"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        // AMERICA: rows 2,3,6 -> min 300 max 700 avg 466.67
        // ASIA: rows 0,1,4,5,7 -> min 100 max 800 avg 440
        assert_eq!(out.result.rows.len(), 2);
        assert_eq!(out.result.rows[0][0], Value::Str("AMERICA".into()));
        assert_eq!(out.result.rows[0][1], Value::Float(300.0));
        assert_eq!(out.result.rows[0][2], Value::Float(700.0));
        let Value::Float(avg) = out.result.rows[0][3] else { panic!() };
        assert!((avg - 1400.0 / 3.0).abs() < 1e-9);
        assert_eq!(out.result.rows[1][1], Value::Float(100.0));
        assert_eq!(out.result.rows[1][2], Value::Float(800.0));
        assert_eq!(out.result.rows[1][3], Value::Float(440.0));
    }

    #[test]
    fn measure_expression_sum() {
        let db = star_db();
        // sum(lo_revenue * (1 - lo_discount/10)) over ASIA
        let expr = MeasureExpr::Mul(
            Box::new(MeasureExpr::col("lo_revenue")),
            Box::new(MeasureExpr::Sub(
                Box::new(MeasureExpr::Const(1.0)),
                Box::new(MeasureExpr::Mul(
                    Box::new(MeasureExpr::col("lo_discount")),
                    Box::new(MeasureExpr::Const(0.1)),
                )),
            )),
        );
        let q = Query::new()
            .filter("customer", Pred::eq("c_region", "ASIA"))
            .agg(Aggregate::sum(expr, "disc_rev"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        // rows 0,1,4,5,7: 100*.9 + 200*.8 + 500*.8 + 600*.7 + 800*.8 = 1710
        assert_eq!(out.result.rows, vec![vec![Value::Float(1710.0)]]);
    }

    #[test]
    fn forced_hash_agg_matches_dense() {
        let db = star_db();
        let q = asia_by_year();
        let dense = execute(&db, &q, &ExecOptions::default()).unwrap();
        let hashed = execute(
            &db,
            &q,
            &ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() },
        )
        .unwrap();
        assert_eq!(hashed.plan.agg_strategy, AggStrategy::HashTable);
        assert!(dense.result.same_contents(&hashed.result, 1e-9));
    }

    #[test]
    fn deletes_respected_in_all_variants() {
        let mut db = star_db();
        db.table_mut("lineorder").unwrap().delete(0);
        db.table_mut("customer").unwrap().delete(1); // JAPAN gone
        let q = asia_by_year();
        let reference = execute(&db, &q, &ExecOptions::default()).unwrap();
        // Remaining ASIA rows: 4 (500, y1994), 7 (800, y1993).
        assert_eq!(
            reference.result.rows,
            vec![
                vec![Value::Int(1993), Value::Float(800.0)],
                vec![Value::Int(1994), Value::Float(500.0)],
            ]
        );
        for v in ScanVariant::ALL {
            let out = execute(&db, &q, &ExecOptions::with_variant(v)).unwrap();
            assert!(
                out.result.same_contents(&reference.result, 1e-9),
                "variant {} diverged on deletes",
                v.paper_name()
            );
        }
    }

    #[test]
    fn bitmap_and_selection_matches_vector_refine() {
        let db = star_db();
        let q = asia_by_year();
        let vector = execute(&db, &q, &ExecOptions::default()).unwrap();
        let bitmap = execute(
            &db,
            &q,
            &ExecOptions { selection: SelectionStrategy::BitmapAnd, ..Default::default() },
        )
        .unwrap();
        assert!(bitmap.result.same_contents(&vector.result, 1e-9));
        assert_eq!(bitmap.plan.selected_rows, vector.plan.selected_rows);
    }

    #[test]
    fn timings_are_populated() {
        let db = star_db();
        let out = execute(&db, &asia_by_year(), &ExecOptions::default()).unwrap();
        assert!(out.timings.total >= out.timings.agg);
    }

    #[test]
    fn bind_error_for_unknown_table() {
        let db = star_db();
        let q = Query::new().filter("ghost", Pred::eq("x", 1)).agg(Aggregate::count("n"));
        assert!(execute(&db, &q, &ExecOptions::default()).is_err());
    }
}
