//! # astore-core
//!
//! **A-Store**: a main-memory OLAP engine built on *virtual denormalization
//! via array index reference (AIR)*, reproducing Zhang et al. (ICDE/TKDE
//! 2016).
//!
//! The engine executes SPJGA (Select-Project-Join-Group-Aggregate) queries
//! over star and snowflake schemas without running a single join operator:
//! foreign keys are array indexes into dimension tables (see
//! `astore-storage`), so the whole schema forms a *virtual universal table*
//! that is simply scanned. Execution is three phases (paper §3):
//!
//! 1. **Scan & filter** — a vectorized column scan of the fact table,
//!    probing per-dimension *predicate vectors* (§4.2) through the foreign
//!    keys;
//! 2. **Grouping** — *group vectors* map dimension rows to group ids; the
//!    per-tuple aggregation cell goes into the *Measure Index* (§4.3);
//! 3. **Aggregation** — measure columns are scanned through the Measure
//!    Index into a dense multidimensional aggregation array (or a hash
//!    table when the array would be too sparse).
//!
//! Multicore execution (§5) is morsel-driven: a shared atomic cursor hands
//! out fixed-size fact-table row ranges to a pool of workers that share the
//! phase-1 artifacts read-only and merge partial aggregates at the group
//! label level (see [`parallel`]).
//!
//! ## Quick example
//!
//! ```
//! use astore_storage::prelude::*;
//! use astore_core::prelude::*;
//!
//! // Schema: lineorder -> date (AIR foreign key).
//! let mut date = Table::new("date", Schema::new(vec![
//!     ColumnDef::new("d_year", DataType::I32),
//! ]));
//! for y in [1992, 1993] { date.append_row(&[Value::Int(y)]); }
//!
//! let mut lineorder = Table::new("lineorder", Schema::new(vec![
//!     ColumnDef::new("lo_dk", DataType::Key { target: "date".into() }),
//!     ColumnDef::new("lo_revenue", DataType::I64),
//! ]));
//! for (d, r) in [(0u32, 10i64), (1, 20), (0, 30)] {
//!     lineorder.append_row(&[Value::Key(d), Value::Int(r)]);
//! }
//!
//! let mut db = Database::new();
//! db.add_table(date);
//! db.add_table(lineorder);
//!
//! // SELECT d_year, SUM(lo_revenue) FROM lineorder, date
//! // WHERE lo_dk = d_datekey GROUP BY d_year ORDER BY d_year;
//! let q = Query::new()
//!     .group("date", "d_year")
//!     .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "revenue"))
//!     .order(OrderKey::asc("d_year"));
//! let out = execute(&db, &q, &ExecOptions::default()).unwrap();
//! assert_eq!(out.result.rows.len(), 2);
//! assert_eq!(out.result.rows[0], vec![Value::Int(1992), Value::Float(40.0)]);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the one sanctioned exception is the SSE2 wide path
// of the packed-segment scan kernel in `filter.rs`, which carries a scoped
// `#[allow(unsafe_code)]` and a SAFETY argument. Everything else stays safe.
#![deny(unsafe_code)]

pub mod agg;
pub mod air_join;
pub mod analyze;
pub mod exec;
pub mod expr;
pub mod filter;
pub mod graph;
pub mod groupvec;
pub mod optimizer;
pub mod parallel;
pub mod query;
pub mod result;
pub mod scan;
pub mod universal;
pub mod zone;

/// Convenient glob import of the engine's public surface.
pub mod prelude {
    pub use crate::analyze::render_analyze;
    pub use crate::exec::{
        execute, ExecOptions, ExecOutput, ExecutorInfo, PhaseTimings, PlanInfo, ScanVariant,
        SelectionStrategy,
    };
    pub use crate::expr::{CmpOp, Lit, MeasureExpr, Pred};
    pub use crate::graph::JoinGraph;
    pub use crate::optimizer::{AggStrategy, OptimizerConfig};
    pub use crate::parallel::{MorselDispatcher, DEFAULT_MORSEL_ROWS};
    pub use crate::query::{AggFunc, Aggregate, ColRef, OrderKey, Query, SortOrder};
    pub use crate::result::QueryResult;
    pub use crate::universal::{BindError, Universal};
    pub use crate::zone::{SegmentPruner, SegmentSurvey, ZonePred, ZoneRange};
}
