//! SPJGA query descriptions (paper §3).
//!
//! A-Store "only deals with Selection-Projection-Join-Grouping-Aggregation
//! (SPJGA) queries on star/snowflake schemas". A [`Query`] captures exactly
//! that: per-table selections, grouping columns, aggregates over measure
//! expressions, and an order-by — joins are *implicit*, given by the AIR
//! edges of the schema (the join graph), which is the whole point of
//! virtual denormalization.

use crate::expr::{MeasureExpr, Pred};

/// A reference to a column of some table in the schema. The engine resolves
/// the AIR chain from the query's root table automatically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Convenience constructor.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef { table: table.into(), column: column.into() }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)` (or `COUNT(expr)`, which for non-null columns is the same)
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
}

/// One output aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The measure expression over the root table's columns (ignored for
    /// `COUNT(*)`, where it may be `None`).
    pub expr: Option<MeasureExpr>,
    /// Output column name.
    pub alias: String,
}

impl Aggregate {
    /// `SUM(expr) AS alias`.
    pub fn sum(expr: MeasureExpr, alias: impl Into<String>) -> Self {
        Aggregate { func: AggFunc::Sum, expr: Some(expr), alias: alias.into() }
    }

    /// `COUNT(*) AS alias`.
    pub fn count(alias: impl Into<String>) -> Self {
        Aggregate { func: AggFunc::Count, expr: None, alias: alias.into() }
    }

    /// `MIN(expr) AS alias`.
    pub fn min(expr: MeasureExpr, alias: impl Into<String>) -> Self {
        Aggregate { func: AggFunc::Min, expr: Some(expr), alias: alias.into() }
    }

    /// `MAX(expr) AS alias`.
    pub fn max(expr: MeasureExpr, alias: impl Into<String>) -> Self {
        Aggregate { func: AggFunc::Max, expr: Some(expr), alias: alias.into() }
    }

    /// `AVG(expr) AS alias`.
    pub fn avg(expr: MeasureExpr, alias: impl Into<String>) -> Self {
        Aggregate { func: AggFunc::Avg, expr: Some(expr), alias: alias.into() }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key: either an output group column or an aggregate alias.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Name of the output column to sort by (a group column's output name or
    /// an aggregate alias).
    pub output: String,
    /// Direction.
    pub order: SortOrder,
}

impl OrderKey {
    /// Ascending key.
    pub fn asc(output: impl Into<String>) -> Self {
        OrderKey { output: output.into(), order: SortOrder::Asc }
    }

    /// Descending key.
    pub fn desc(output: impl Into<String>) -> Self {
        OrderKey { output: output.into(), order: SortOrder::Desc }
    }
}

/// A complete SPJGA query.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// The root (fact) table. If `None`, the engine binds the single root
    /// that covers all referenced tables.
    pub root: Option<String>,
    /// Selection predicates, grouped per table (conjoined across tables).
    pub selections: Vec<(String, Pred)>,
    /// Grouping columns (possibly empty for a global aggregate).
    pub group_by: Vec<ColRef>,
    /// Output aggregates (at least one for a meaningful SPJGA query).
    pub aggregates: Vec<Aggregate>,
    /// Result ordering.
    pub order_by: Vec<OrderKey>,
    /// Optional row limit applied after sorting.
    pub limit: Option<usize>,
}

impl Query {
    /// Starts building a query.
    pub fn new() -> Self {
        Query::default()
    }

    /// Sets the root (fact) table explicitly.
    pub fn root(mut self, table: impl Into<String>) -> Self {
        self.root = Some(table.into());
        self
    }

    /// Adds a selection predicate on `table` (conjoined with any existing
    /// predicate on the same table).
    pub fn filter(mut self, table: impl Into<String>, pred: Pred) -> Self {
        let table = table.into();
        if let Some((_, existing)) = self.selections.iter_mut().find(|(t, _)| *t == table) {
            let prev = std::mem::replace(existing, Pred::Const(true));
            *existing = prev.and(pred);
        } else {
            self.selections.push((table, pred));
        }
        self
    }

    /// Adds a grouping column.
    pub fn group(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.group_by.push(ColRef::new(table, column));
        self
    }

    /// Adds an aggregate.
    pub fn agg(mut self, agg: Aggregate) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Adds an order-by key.
    pub fn order(mut self, key: OrderKey) -> Self {
        self.order_by.push(key);
        self
    }

    /// Sets the row limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Predicate on a given table, if any.
    pub fn selection_on(&self, table: &str) -> Option<&Pred> {
        self.selections.iter().find(|(t, _)| t == table).map(|(_, p)| p)
    }

    /// All tables this query touches (selections, group-by; the root if
    /// set). Deduplicated, unordered.
    pub fn referenced_tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.selections.iter().map(|(t, _)| t.as_str()).collect();
        out.extend(self.group_by.iter().map(|c| c.table.as_str()));
        if let Some(r) = &self.root {
            out.push(r);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Is this query still a template (any unbound parameter slot left)?
    /// Early-exits on the first slot; the executor's per-query guard.
    pub fn has_params(&self) -> bool {
        self.selections.iter().any(|(_, p)| p.has_params())
    }

    /// Number of parameter slots this query template carries: one more than
    /// the highest [`crate::expr::Lit::Param`] index referenced anywhere in
    /// its selections (0 for a fully concrete query).
    pub fn param_count(&self) -> usize {
        self.selections
            .iter()
            .flat_map(|(_, p)| p.param_slots())
            .map(|i| usize::from(i) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Substitutes every parameter slot with the corresponding literal,
    /// returning a concrete, executable clone of this template. The plan
    /// structure (root, join chains, grouping, aggregates) is reused as-is —
    /// this is the cheap bind-per-execute step that replaces re-planning.
    ///
    /// Errors if `params` does not cover every referenced slot; extra
    /// parameters are an error too, so a caller cannot silently pass values
    /// the query never reads.
    pub fn bind_params(&self, params: &[crate::expr::Lit]) -> Result<Query, String> {
        let expected = self.param_count();
        if params.len() != expected {
            return Err(format!("statement takes {expected} parameter(s), {} given", params.len()));
        }
        let mut bound = self.clone();
        for (_, pred) in &mut bound.selections {
            *pred = pred.bind_params(params)?;
        }
        Ok(bound)
    }

    /// Output column names, group columns first, then aggregate aliases —
    /// the shape of the produced [`crate::result::QueryResult`].
    pub fn output_names(&self) -> Vec<String> {
        self.group_by
            .iter()
            .map(|c| c.column.clone())
            .chain(self.aggregates.iter().map(|a| a.alias.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    /// The paper's Q1 (SSB Q-like) as a builder chain.
    fn paper_q1() -> Query {
        Query::new()
            .filter("customer", Pred::eq("c_region", "ASIA"))
            .filter("supplier", Pred::eq("s_region", "ASIA"))
            .filter("date", Pred::between("d_year", 1992, 1997))
            .group("customer", "c_nation")
            .group("supplier", "s_nation")
            .group("date", "d_year")
            .agg(Aggregate::sum(MeasureExpr::col("lo_revenue"), "revenue"))
            .order(OrderKey::asc("d_year"))
            .order(OrderKey::desc("revenue"))
    }

    #[test]
    fn builder_accumulates() {
        let q = paper_q1();
        assert_eq!(q.selections.len(), 3);
        assert_eq!(q.group_by.len(), 3);
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.root.is_none());
        assert!(q.limit.is_none());
    }

    #[test]
    fn filter_conjoins_same_table() {
        let q = Query::new()
            .filter("date", Pred::cmp("d_year", CmpOp::Ge, 1992))
            .filter("date", Pred::cmp("d_year", CmpOp::Le, 1997));
        assert_eq!(q.selections.len(), 1);
        let p = q.selection_on("date").unwrap();
        assert_eq!(p.conjuncts().len(), 2);
    }

    #[test]
    fn referenced_tables_deduplicated() {
        let q = paper_q1().root("lineorder");
        assert_eq!(q.referenced_tables(), vec!["customer", "date", "lineorder", "supplier"]);
    }

    #[test]
    fn output_names_groups_then_aggs() {
        let q = paper_q1();
        assert_eq!(q.output_names(), vec!["c_nation", "s_nation", "d_year", "revenue"]);
    }

    #[test]
    fn aggregate_constructors() {
        assert_eq!(Aggregate::count("n").func, AggFunc::Count);
        assert!(Aggregate::count("n").expr.is_none());
        assert_eq!(Aggregate::min(MeasureExpr::col("x"), "m").func, AggFunc::Min);
        assert_eq!(Aggregate::max(MeasureExpr::col("x"), "m").func, AggFunc::Max);
        assert_eq!(Aggregate::avg(MeasureExpr::col("x"), "m").func, AggFunc::Avg);
    }

    #[test]
    fn colref_display() {
        assert_eq!(ColRef::new("t", "c").to_string(), "t.c");
    }
}
