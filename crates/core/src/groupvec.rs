//! Group vectors and group dictionaries (paper §4.3).
//!
//! "In most cases, grouping columns are located in leaf tables. Thus, when
//! we use the leaf tables to generate the predicate filters, we generate a
//! set of group vectors as well. A group vector is used to determine the
//! group each tuple belongs to. … dictionary compression is applied to
//! encode each group vector. … the null value is encoded as −1 and the
//! group IDs are encoded as the array indexes of the dictionary."
//!
//! A [`GroupVector`] lives on the *first-level* dimension of a chain (for
//! snowflakes the group value is chased down the chain once per dimension
//! row, not once per fact row). Grouping columns on the fact table itself
//! use a [`FactGrouper`] that interns codes during the fact scan.

use std::collections::HashMap;

use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::column::Column;
use astore_storage::types::{Key, Value, NULL_KEY};

use crate::graph::JoinGraph;
use crate::query::ColRef;
use crate::universal::BindError;

/// A group label: the distinct value a group is keyed on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupLabel {
    /// Integer-valued grouping column.
    Int(i64),
    /// String-valued grouping column.
    Str(String),
}

impl GroupLabel {
    /// Converts to a result [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            GroupLabel::Int(v) => Value::Int(*v),
            GroupLabel::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// The dictionary of one grouping column: group id -> label (paper: "a
/// dictionary array is used to store the group IDs").
#[derive(Debug, Clone, Default)]
pub struct GroupDict {
    labels: Vec<GroupLabel>,
    index: HashMap<GroupLabel, Key>,
}

impl GroupDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        GroupDict::default()
    }

    /// Interns a label, returning its stable group id.
    pub fn intern(&mut self, label: GroupLabel) -> Key {
        if let Some(&c) = self.index.get(&label) {
            return c;
        }
        let c = self.labels.len() as Key;
        self.index.insert(label.clone(), c);
        self.labels.push(label);
        c
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if no group was interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of group `id`.
    pub fn label(&self, id: Key) -> &GroupLabel {
        &self.labels[id as usize]
    }

    /// All labels, ordered by group id.
    pub fn labels(&self) -> &[GroupLabel] {
        &self.labels
    }
}

/// A group dictionary held by reference or by value.
///
/// The fact scan's dictionaries come in two flavours: pre-built leaf
/// dictionaries (group vectors, probed read-only by every worker and every
/// morsel) and scan-built dictionaries (fact-local or chain-resolved
/// grouping columns). Borrowing the former matters under morsel-driven
/// execution, where cloning a shared dictionary once per claimed morsel
/// would turn a read-only probe structure into per-morsel allocation work.
#[derive(Debug)]
pub enum DictRef<'a> {
    /// A shared, pre-built dictionary (leaf group vectors).
    Shared(&'a GroupDict),
    /// A dictionary built during the scan itself.
    Owned(GroupDict),
}

impl std::ops::Deref for DictRef<'_> {
    type Target = GroupDict;

    fn deref(&self) -> &GroupDict {
        match self {
            DictRef::Shared(d) => d,
            DictRef::Owned(d) => d,
        }
    }
}

/// Reads a grouping value from a column as a [`GroupLabel`].
///
/// # Panics
/// Panics for float columns (grouping on floats is not meaningful in the
/// SPJGA model) — integers, strings and dictionary strings are supported.
#[inline]
pub fn label_at(column: &Column, row: usize) -> GroupLabel {
    if let Some(v) = column.int_at(row) {
        GroupLabel::Int(v)
    } else if let Some(s) = column.str_at(row) {
        GroupLabel::Str(s.to_owned())
    } else {
        panic!("cannot group by column of type {}", column.dtype());
    }
}

/// A dictionary-compressed group vector over a first-level dimension.
#[derive(Debug, Clone)]
pub struct GroupVector {
    /// The fact AIR column used to probe this vector.
    pub fact_key_col: String,
    /// Per dimension slot: the group id, or [`NULL_KEY`] when the dimension
    /// row is filtered out / its snowflake chain is broken (paper's −1).
    pub codes: Vec<Key>,
    /// The group dictionary.
    pub dict: GroupDict,
}

impl GroupVector {
    /// Probes the vector with a fact foreign key.
    #[inline]
    pub fn probe(&self, fk: Key) -> Key {
        if fk == NULL_KEY || fk as usize >= self.codes.len() {
            NULL_KEY
        } else {
            self.codes[fk as usize]
        }
    }
}

/// Builds the group vector for a dimension grouping column.
///
/// * `colref` — the grouping column (on a leaf table);
/// * `filter` — the chain's composed predicate filter over the first-level
///   dimension (rows failing it get code −1, so aggregation never touches
///   them), or `None` when the chain has no predicates (liveness only).
pub fn build_group_vector(
    db: &Database,
    graph: &JoinGraph,
    root: &str,
    colref: &ColRef,
    filter: Option<&Bitmap>,
) -> Result<GroupVector, BindError> {
    let path = graph
        .path(root, &colref.table)
        .ok_or_else(|| BindError::Unreachable { root: root.into(), table: colref.table.clone() })?;
    assert!(!path.steps.is_empty(), "group column on the root table needs FactGrouper");
    let fact_key_col = path.steps[0].key_column.clone();
    let first_dim_name = &path.steps[0].to_table;
    let first_dim =
        db.table(first_dim_name).ok_or_else(|| BindError::NoTable(first_dim_name.clone()))?;

    // Hop arrays *within* the dimension chain (first-level dim -> target).
    let mut hops: Vec<&[Key]> = Vec::with_capacity(path.steps.len() - 1);
    for step in &path.steps[1..] {
        let t = db
            .table(&step.from_table)
            .ok_or_else(|| BindError::NoTable(step.from_table.clone()))?;
        let col = t
            .column(&step.key_column)
            .ok_or_else(|| BindError::NoColumn(step.from_table.clone(), step.key_column.clone()))?;
        hops.push(col.as_key().expect("path step is a key column").1);
    }
    let target_table =
        db.table(&colref.table).ok_or_else(|| BindError::NoTable(colref.table.clone()))?;
    let column = target_table
        .column(&colref.column)
        .ok_or_else(|| BindError::NoColumn(colref.table.clone(), colref.column.clone()))?;

    let n = first_dim.num_slots();
    let mut dict = GroupDict::new();
    let mut codes = vec![NULL_KEY; n];
    #[allow(clippy::needless_range_loop)] // slot indexes three parallel structures
    for slot in 0..n {
        let passes = match filter {
            Some(bm) => bm.get_or_false(slot),
            None => first_dim.is_live(slot as Key),
        };
        if !passes {
            continue;
        }
        // Chase the chain to the grouping column's row.
        let mut row = slot;
        let mut alive = true;
        for keys in &hops {
            match keys.get(row).copied() {
                Some(k) if k != NULL_KEY => row = k as usize,
                _ => {
                    alive = false;
                    break;
                }
            }
        }
        if !alive {
            continue;
        }
        codes[slot] = dict.intern(label_at(column, row));
    }
    Ok(GroupVector { fact_key_col, codes, dict })
}

/// Grouping on a root-table column: codes are interned during the fact scan
/// itself (there is no smaller table to pre-compute a vector on).
#[derive(Debug)]
pub struct FactGrouper<'a> {
    column: &'a Column,
    /// The dictionary grows as the scan encounters new values.
    pub dict: GroupDict,
    /// Fast path: for dictionary-compressed fact columns, maps storage codes
    /// to group ids directly (storage code space is dense and small).
    dict_code_map: Vec<Key>,
}

impl<'a> FactGrouper<'a> {
    /// Creates a grouper over a root-table column.
    pub fn new(column: &'a Column) -> Self {
        let dict_code_map = match column {
            Column::Dict(dc) => vec![NULL_KEY; dc.dict().len()],
            _ => Vec::new(),
        };
        FactGrouper { column, dict: GroupDict::new(), dict_code_map }
    }

    /// The group id of `row`'s value, interning new values.
    #[inline]
    pub fn code_for(&mut self, row: usize) -> Key {
        if let Column::Dict(dc) = self.column {
            let sc = dc.code(row) as usize;
            let cached = self.dict_code_map[sc];
            if cached != NULL_KEY {
                return cached;
            }
            let id = self.dict.intern(GroupLabel::Str(dc.get(row).to_owned()));
            self.dict_code_map[sc] = id;
            return id;
        }
        self.dict.intern(label_at(self.column, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::query::Query;
    use astore_storage::prelude::*;

    fn db() -> Database {
        let mut db = Database::new();
        let mut nation =
            Table::new("nation", Schema::new(vec![ColumnDef::new("n_name", DataType::Dict)]));
        for n in ["BRAZIL", "CANADA", "CHINA"] {
            nation.append_row(&[Value::Str(n.into())]);
        }
        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Key { target: "nation".into() }),
                ColumnDef::new("c_seg", DataType::Dict),
            ]),
        );
        customer.append_row(&[Value::Key(1), Value::Str("A".into())]); // CANADA
        customer.append_row(&[Value::Key(2), Value::Str("B".into())]); // CHINA
        customer.append_row(&[Value::Key(0), Value::Str("A".into())]); // BRAZIL
        customer.append_row(&[Value::Key(NULL_KEY), Value::Str("A".into())]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_cust", DataType::Key { target: "customer".into() }),
                ColumnDef::new("f_disc", DataType::I32),
            ]),
        );
        for (c, d) in [(0u32, 1), (1, 2), (2, 1), (3, 3)] {
            fact.append_row(&[Value::Key(c), Value::Int(d)]);
        }
        db.add_table(nation);
        db.add_table(customer);
        db.add_table(fact);
        db
    }

    #[test]
    fn group_dict_intern_is_stable() {
        let mut d = GroupDict::new();
        let a = d.intern(GroupLabel::Str("x".into()));
        let b = d.intern(GroupLabel::Int(5));
        assert_eq!(d.intern(GroupLabel::Str("x".into())), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.label(a), &GroupLabel::Str("x".into()));
        assert_eq!(d.label(b).to_value(), Value::Int(5));
    }

    #[test]
    fn direct_dimension_group_vector() {
        let db = db();
        let g = JoinGraph::build(&db);
        let gv =
            build_group_vector(&db, &g, "fact", &ColRef::new("customer", "c_seg"), None).unwrap();
        assert_eq!(gv.fact_key_col, "f_cust");
        assert_eq!(gv.codes.len(), 4);
        // Codes are dictionary-compressed: A=0 (first seen), B=1.
        assert_eq!(gv.codes, vec![0, 1, 0, 0]);
        assert_eq!(gv.dict.len(), 2);
    }

    #[test]
    fn snowflake_group_vector_chases_chain() {
        let db = db();
        let g = JoinGraph::build(&db);
        let gv =
            build_group_vector(&db, &g, "fact", &ColRef::new("nation", "n_name"), None).unwrap();
        // Vector lives on customer (first-level dim), labels come from nation.
        assert_eq!(gv.codes.len(), 4);
        let labels: Vec<&GroupLabel> = gv.codes.iter().take(3).map(|&c| gv.dict.label(c)).collect();
        assert_eq!(
            labels,
            vec![
                &GroupLabel::Str("CANADA".into()),
                &GroupLabel::Str("CHINA".into()),
                &GroupLabel::Str("BRAZIL".into())
            ]
        );
        // Customer 3 has a broken chain: NULL code.
        assert_eq!(gv.codes[3], NULL_KEY);
    }

    #[test]
    fn filter_nulls_out_failing_rows() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new().filter("customer", Pred::eq("c_seg", "A"));
        let bm = q.selection_on("customer").unwrap().eval_bitmap(db.table("customer").unwrap());
        let gv = build_group_vector(&db, &g, "fact", &ColRef::new("nation", "n_name"), Some(&bm))
            .unwrap();
        assert_eq!(gv.codes[1], NULL_KEY, "customer 1 is segment B");
        assert_ne!(gv.codes[0], NULL_KEY);
        assert_ne!(gv.codes[2], NULL_KEY);
        // Only the labels of passing rows are interned (paper: group vector
        // built from tuples passing predicate evaluation).
        assert_eq!(gv.dict.len(), 2);
    }

    #[test]
    fn probe_handles_null_and_out_of_range() {
        let db = db();
        let g = JoinGraph::build(&db);
        let gv =
            build_group_vector(&db, &g, "fact", &ColRef::new("customer", "c_seg"), None).unwrap();
        assert_eq!(gv.probe(NULL_KEY), NULL_KEY);
        assert_eq!(gv.probe(1000), NULL_KEY);
        assert_eq!(gv.probe(1), 1);
    }

    #[test]
    fn dict_ref_derefs_shared_and_owned() {
        let mut owned = GroupDict::new();
        owned.intern(GroupLabel::Int(7));
        let shared = owned.clone();
        assert_eq!(DictRef::Shared(&shared).label(0), &GroupLabel::Int(7));
        assert_eq!(DictRef::Owned(owned).len(), 1);
    }

    #[test]
    fn fact_grouper_interns_integer_values() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let mut fg = FactGrouper::new(fact.column("f_disc").unwrap());
        let codes: Vec<Key> = (0..4).map(|r| fg.code_for(r)).collect();
        assert_eq!(codes, vec![0, 1, 0, 2]);
        assert_eq!(fg.dict.label(0), &GroupLabel::Int(1));
        assert_eq!(fg.dict.label(2), &GroupLabel::Int(3));
    }

    #[test]
    fn fact_grouper_dict_column_fast_path() {
        let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("c", DataType::Dict)]));
        for v in ["x", "y", "x", "z", "y"] {
            t.append_row(&[Value::Str(v.into())]);
        }
        let mut fg = FactGrouper::new(t.column("c").unwrap());
        let codes: Vec<Key> = (0..5).map(|r| fg.code_for(r)).collect();
        assert_eq!(codes, vec![0, 1, 0, 2, 1]);
        assert_eq!(fg.dict.label(2), &GroupLabel::Str("z".into()));
    }
}
