//! Join graphs and reference paths (paper §3).
//!
//! "The structure of join can be modeled as a directed graph, where the
//! vertexes represent the tables and the edges represent the array index
//! references. … A vertex without incoming edges is known as a root of the
//! join graph. … Each leaf table can be reached from the root table through
//! a chain of array index references."
//!
//! A [`JoinGraph`] is derived from the AIR columns of a
//! [`astore_storage::catalog::Database`]; [`RefPath`] materializes the chain
//! of key columns from the root to any reachable table.

use std::collections::{HashMap, VecDeque};

use astore_storage::catalog::Database;

/// One hop of a reference path: follow `key_column` of `from_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Table the hop starts from.
    pub from_table: String,
    /// The AIR column to follow.
    pub key_column: String,
    /// Table the hop lands in.
    pub to_table: String,
}

/// A chain of AIR hops from the root table to a target table. An empty path
/// denotes the root itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefPath {
    /// The hops, in traversal order.
    pub steps: Vec<PathStep>,
}

impl RefPath {
    /// The table this path ends at, or `None` for the empty (root) path.
    pub fn target(&self) -> Option<&str> {
        self.steps.last().map(|s| s.to_table.as_str())
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for the root path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The join graph of a database: tables as vertexes, AIR columns as edges.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Adjacency: table -> outgoing (key_column, target_table).
    out_edges: HashMap<String, Vec<(String, String)>>,
    /// In-degree per table.
    in_degree: HashMap<String, usize>,
    /// All table names, in catalog order.
    tables: Vec<String>,
    /// Shortest reference path from each root to each reachable table,
    /// keyed by (root, table).
    paths: HashMap<(String, String), RefPath>,
    /// Root tables (no incoming AIR edge but at least one outgoing, or
    /// isolated tables).
    roots: Vec<String>,
}

impl JoinGraph {
    /// Builds the join graph of `db` from its AIR edges.
    pub fn build(db: &Database) -> Self {
        let tables: Vec<String> = db.table_names().to_vec();
        let mut out_edges: HashMap<String, Vec<(String, String)>> = HashMap::new();
        let mut in_degree: HashMap<String, usize> = tables.iter().map(|t| (t.clone(), 0)).collect();
        for t in &tables {
            out_edges.entry(t.clone()).or_default();
        }
        for e in db.edges() {
            out_edges
                .entry(e.from_table.clone())
                .or_default()
                .push((e.column.clone(), e.to_table.clone()));
            *in_degree.entry(e.to_table.clone()).or_insert(0) += 1;
        }

        let roots: Vec<String> = tables
            .iter()
            .filter(|t| in_degree.get(*t).copied().unwrap_or(0) == 0)
            .cloned()
            .collect();

        // BFS from every root records the shortest AIR chain to each
        // reachable table (shortest = fewest random lookups per fact tuple).
        let mut paths: HashMap<(String, String), RefPath> = HashMap::new();
        for root in &roots {
            let mut queue = VecDeque::new();
            paths.insert((root.clone(), root.clone()), RefPath::default());
            queue.push_back(root.clone());
            while let Some(t) = queue.pop_front() {
                let base = paths[&(root.clone(), t.clone())].clone();
                for (col, target) in out_edges.get(&t).into_iter().flatten() {
                    let key = (root.clone(), target.clone());
                    if paths.contains_key(&key) {
                        continue;
                    }
                    let mut p = base.clone();
                    p.steps.push(PathStep {
                        from_table: t.clone(),
                        key_column: col.clone(),
                        to_table: target.clone(),
                    });
                    paths.insert(key, p);
                    queue.push_back(target.clone());
                }
            }
        }

        JoinGraph { out_edges, in_degree, tables, paths, roots }
    }

    /// The root tables (fact tables in a star/snowflake schema).
    pub fn roots(&self) -> &[String] {
        &self.roots
    }

    /// Returns `true` if the graph is single-rooted (the common OLAP case,
    /// Fig. 4 of the paper).
    pub fn is_single_rooted(&self) -> bool {
        self.roots.len() == 1
    }

    /// Tables reachable from `root` (excluding the root itself): the leaf
    /// (dimension) tables of that root.
    pub fn leaves_of(&self, root: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .paths
            .keys()
            .filter(|(r, t)| r == root && t != root)
            .map(|(_, t)| t.as_str())
            .collect();
        out.sort_unstable();
        out
    }

    /// The reference path from `root` to `table` (empty for `table == root`),
    /// or `None` if unreachable.
    pub fn path(&self, root: &str, table: &str) -> Option<&RefPath> {
        self.paths.get(&(root.to_owned(), table.to_owned()))
    }

    /// Outgoing AIR edges of a table: `(key_column, target_table)` pairs.
    pub fn out_edges(&self, table: &str) -> &[(String, String)] {
        self.out_edges.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// In-degree of a table.
    pub fn in_degree(&self, table: &str) -> usize {
        self.in_degree.get(table).copied().unwrap_or(0)
    }

    /// All tables.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Picks the root able to reach every table mentioned in `needed`,
    /// preferring a single-rooted match. This is how queries that do not
    /// name their fact table get bound.
    pub fn root_covering<'a>(&'a self, needed: &[&str]) -> Option<&'a str> {
        self.roots
            .iter()
            .find(|r| needed.iter().all(|t| self.path(r, t).is_some()))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::prelude::*;

    /// lineitem -> orders -> customer -> nation -> region (paper Fig. 3),
    /// plus lineitem -> part.
    fn snowflake() -> Database {
        let mut db = Database::new();
        let mk = |name: &str, cols: Vec<ColumnDef>| Table::new(name, Schema::new(cols));
        db.add_table(mk("region", vec![ColumnDef::new("r_name", DataType::Str)]));
        db.add_table(mk(
            "nation",
            vec![
                ColumnDef::new("n_name", DataType::Str),
                ColumnDef::new("n_regionkey", DataType::Key { target: "region".into() }),
            ],
        ));
        db.add_table(mk(
            "customer",
            vec![ColumnDef::new("c_nationkey", DataType::Key { target: "nation".into() })],
        ));
        db.add_table(mk(
            "orders",
            vec![
                ColumnDef::new("o_custkey", DataType::Key { target: "customer".into() }),
                ColumnDef::new("o_price", DataType::I64),
            ],
        ));
        db.add_table(mk("part", vec![ColumnDef::new("p_name", DataType::Str)]));
        db.add_table(mk(
            "lineitem",
            vec![
                ColumnDef::new("l_orderkey", DataType::Key { target: "orders".into() }),
                ColumnDef::new("l_partkey", DataType::Key { target: "part".into() }),
                ColumnDef::new("l_extendedprice", DataType::F64),
            ],
        ));
        db
    }

    #[test]
    fn single_root_is_the_fact_table() {
        let g = JoinGraph::build(&snowflake());
        assert_eq!(g.roots(), &["lineitem".to_string()]);
        assert!(g.is_single_rooted());
    }

    #[test]
    fn leaves_are_all_dimensions() {
        let g = JoinGraph::build(&snowflake());
        assert_eq!(g.leaves_of("lineitem"), vec!["customer", "nation", "orders", "part", "region"]);
    }

    #[test]
    fn reference_path_chains_match_paper_figure3() {
        let g = JoinGraph::build(&snowflake());
        let p = g.path("lineitem", "region").unwrap();
        let chain: Vec<&str> = p.steps.iter().map(|s| s.to_table.as_str()).collect();
        assert_eq!(chain, vec!["orders", "customer", "nation", "region"]);
        let cols: Vec<&str> = p.steps.iter().map(|s| s.key_column.as_str()).collect();
        assert_eq!(cols, vec!["l_orderkey", "o_custkey", "c_nationkey", "n_regionkey"]);
        assert_eq!(p.target(), Some("region"));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn root_path_is_empty() {
        let g = JoinGraph::build(&snowflake());
        let p = g.path("lineitem", "lineitem").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.target(), None);
    }

    #[test]
    fn unreachable_table_has_no_path() {
        let mut db = snowflake();
        db.add_table(Table::new("island", Schema::new(vec![ColumnDef::new("x", DataType::I32)])));
        let g = JoinGraph::build(&db);
        assert!(g.path("lineitem", "island").is_none());
        // The island is itself a root (no incoming edges).
        assert!(g.roots().contains(&"island".to_string()));
    }

    #[test]
    fn in_degree_and_out_edges() {
        let g = JoinGraph::build(&snowflake());
        assert_eq!(g.in_degree("region"), 1);
        assert_eq!(g.in_degree("lineitem"), 0);
        assert_eq!(g.out_edges("lineitem").len(), 2);
        assert_eq!(g.out_edges("region").len(), 0);
    }

    #[test]
    fn root_covering_picks_reaching_root() {
        let g = JoinGraph::build(&snowflake());
        assert_eq!(g.root_covering(&["region", "part"]), Some("lineitem"));
        assert_eq!(g.root_covering(&["lineitem"]), Some("lineitem"));
        let mut db = snowflake();
        db.add_table(Table::new("island", Schema::new(vec![ColumnDef::new("x", DataType::I32)])));
        let g = JoinGraph::build(&db);
        assert_eq!(g.root_covering(&["island"]), Some("island"));
        assert_eq!(g.root_covering(&["island", "region"]), None);
    }

    #[test]
    fn shortest_path_is_preferred_on_diamonds() {
        // fact -> a -> dim, fact -> dim: the direct edge must win.
        let mut db = Database::new();
        db.add_table(Table::new("dim", Schema::new(vec![ColumnDef::new("v", DataType::I32)])));
        db.add_table(Table::new(
            "a",
            Schema::new(vec![ColumnDef::new("a_dim", DataType::Key { target: "dim".into() })]),
        ));
        db.add_table(Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_a", DataType::Key { target: "a".into() }),
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
            ]),
        ));
        let g = JoinGraph::build(&db);
        assert_eq!(g.path("fact", "dim").unwrap().len(), 1);
    }
}
