//! Scan-and-filter machinery (paper §3 phase 1, §4.1, §4.2).
//!
//! Two scan disciplines are provided, matching the paper's ablation (§6.3):
//!
//! * **row-wise** ([`select_rowwise`]): every tuple is evaluated against all
//!   predicates in one pass over the fact table;
//! * **column-wise** ([`select_columnwise`]): a [`SelVec`] is refined one
//!   predicate at a time, most selective first, so later predicates touch
//!   only surviving tuples.
//!
//! Dimension predicates appear as [`ChainCheck`]s: either a probe of a
//! pre-built predicate vector (§4.2) or a direct AIR chase that evaluates
//! the dimension predicates per fact row (the fallback when the filter
//! would not fit the cache budget, and the mode of the `_P`-less variants).

use astore_storage::bitmap::Bitmap;
use astore_storage::encoded::EncodedColumn;
use astore_storage::selvec::SelVec;
use astore_storage::table::Table;
use astore_storage::types::{Key, RowId, NULL_KEY};

use crate::expr::CompiledPred;
use crate::filter::{FactPred, PackedRangeTest};

/// A per-fact-row liveness + predicate check against one table of a
/// dimension chain, evaluated by chasing the AIR hops.
pub struct DirectCheck<'a> {
    /// AIR hop arrays from the fact table to the checked table.
    pub hops: Vec<&'a [Key]>,
    /// Live bitmap of the checked table, present only when it has deletes.
    pub live: Option<&'a Bitmap>,
    /// Compiled predicate on the checked table, if the query has one.
    pub pred: Option<CompiledPred<'a>>,
}

impl DirectCheck<'_> {
    /// Evaluates the check for one fact row.
    #[inline]
    pub fn eval(&self, fact_row: usize) -> bool {
        let mut row = fact_row;
        for keys in &self.hops {
            let k = keys[row];
            if k == NULL_KEY {
                return false;
            }
            row = k as usize;
        }
        if let Some(live) = self.live {
            if !live.get_or_false(row) {
                return false;
            }
        }
        match &self.pred {
            Some(p) => p.eval(row),
            None => true,
        }
    }
}

/// The selection test for one dimension chain.
pub enum ChainCheck<'a> {
    /// Probe the chain's composed predicate vector through the fact FK
    /// column (paper §4.2).
    PredVec {
        /// The fact FK column's key array.
        keys: &'a [Key],
        /// Composed predicate vector over the first-level dimension.
        bitmap: &'a Bitmap,
    },
    /// Chase the chain and evaluate predicates per fact row.
    Direct {
        /// One check per predicate-bearing (or delete-bearing) table.
        checks: Vec<DirectCheck<'a>>,
    },
}

impl ChainCheck<'_> {
    /// Evaluates the chain check for one fact row.
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        match self {
            ChainCheck::PredVec { keys, bitmap } => {
                // NULL_KEY maps far out of range and reads as false.
                bitmap.get_or_false(keys[row] as usize)
            }
            ChainCheck::Direct { checks } => checks.iter().all(|c| c.eval(row)),
        }
    }

    /// Rough selectivity estimate for check ordering (predicate vectors
    /// expose their density; direct probes are pessimistically 1.0 so they
    /// run last, on the fewest rows).
    pub fn estimated_selectivity(&self) -> f64 {
        match self {
            ChainCheck::PredVec { bitmap, .. } => {
                if bitmap.is_empty() {
                    0.0
                } else {
                    bitmap.count_ones() as f64 / bitmap.len() as f64
                }
            }
            ChainCheck::Direct { .. } => 1.0,
        }
    }
}

/// The initial selection vector over a row range, honouring deletes.
pub fn initial_selvec(fact: &Table, range: std::ops::Range<usize>) -> SelVec {
    if fact.has_deletes() {
        let live = fact.live_bitmap();
        SelVec::from_rows(range.filter(|&r| live.get_or_false(r)).map(|r| r as RowId).collect())
    } else {
        SelVec::from_rows(range.map(|r| r as RowId).collect())
    }
}

/// Emits the rows of one sealed segment whose encoded column value falls
/// in `[lo, hi]`, restricted to absolute rows `[start, end)`, ascending.
///
/// Bit-packed columns go through the SWAR kernel
/// ([`crate::filter::packed_range_mask`], two words at a time on the wide
/// path): the logical range is mapped onto the segment's code domain once
/// ([`astore_storage::encoded::PackedInts::code_bounds`]), then every word
/// is tested without decoding a single value. RLE runs accept or reject
/// wholesale — one comparison covers the entire run.
fn scan_encoded(
    enc: &EncodedColumn,
    lo: i64,
    hi: i64,
    seg_start: usize,
    start: usize,
    end: usize,
    mut emit: impl FnMut(usize),
) {
    match enc {
        EncodedColumn::Rle(rle) => {
            let (off0, off1) = (start - seg_start, end - seg_start);
            let mut run_start = 0usize;
            for (i, &e) in rle.ends().iter().enumerate() {
                let run_end = e as usize;
                if run_start >= off1 {
                    break;
                }
                if rle.values()[i] >= lo && rle.values()[i] <= hi {
                    for off in run_start.max(off0)..run_end.min(off1) {
                        emit(seg_start + off);
                    }
                }
                run_start = run_end;
            }
        }
        EncodedColumn::Packed(p) => {
            let Some((clo, chi)) = p.code_bounds(lo, hi) else { return };
            let test = PackedRangeTest::new(clo, chi, p.width() as usize, p.lanes());
            let (off0, off1) = (start - seg_start, end - seg_start);
            let lanes = p.lanes();
            let w0 = off0 / lanes;
            let w1 = off1.div_ceil(lanes).min(p.words().len());
            let mut emit_mask = |wi: usize, mask: u64| {
                test.lanes_set(mask, |lane| {
                    let off = wi * lanes + lane;
                    // Boundary words: clamp to the scanned sub-range (and,
                    // in the last word, to rows that exist — tail lanes are
                    // zero-coded padding).
                    if off >= off0 && off < off1 {
                        emit(seg_start + off);
                    }
                });
            };
            let words = &p.words()[w0..w1];
            let mut wi = w0;
            let mut pairs = words.chunks_exact(2);
            for pair in &mut pairs {
                let [m0, m1] = test.mask2([pair[0], pair[1]]);
                emit_mask(wi, m0);
                emit_mask(wi + 1, m1);
                wi += 2;
            }
            for &word in pairs.remainder() {
                emit_mask(wi, test.mask(word));
                wi += 1;
            }
        }
    }
}

/// Builds the initial selection vector from one seeded predicate: sealed
/// segments are scanned in encoded form ([`scan_encoded`]); unsealed (or
/// never-encoded) segments fall back to row-wise evaluation of the same
/// predicate. Rows come out ascending either way, so the result is
/// indistinguishable from `initial_selvec` + `refine` — just cheaper.
///
/// A sealed segment may carry a write delta (see
/// [`astore_storage::table::SegmentDelta`]): *stale* rows whose encoded
/// value was superseded by a write-through are skipped in the encoded pass
/// and re-evaluated against the flat arrays (which are always current), and
/// rows appended past the seal's coverage (the *overhang*) are evaluated
/// flat as well. Stale hits interleave with encoded hits, so the segment's
/// slice is re-sorted when any landed.
fn seeded_selvec(fact: &Table, range: std::ops::Range<usize>, fp: &FactPred<'_>) -> SelVec {
    let seed = fp.seed.as_ref().expect("caller verified the seed");
    let has_deletes = fact.has_deletes();
    let live = fact.live_bitmap();
    let seg_rows = fact.segment_rows();
    let mut rows: Vec<RowId> = Vec::new();
    let mut r = range.start;
    while r < range.end {
        let seg = r / seg_rows;
        let seg_start = seg * seg_rows;
        let sub_end = range.end.min(seg_start + seg_rows);
        let enc = fact.encoding(seg).and_then(|e| e.cols.get(seed.col).and_then(Option::as_ref));
        match enc {
            Some(enc) => {
                let mark = rows.len();
                let stale = fact.segment_stale(seg);
                let enc_end = (seg_start + enc.len()).min(sub_end);
                if r < enc_end {
                    scan_encoded(enc, seed.lo, seed.hi, seg_start, r, enc_end, |row| {
                        if (!has_deletes || live.get_or_false(row))
                            && stale.binary_search(&((row - seg_start) as u32)).is_err()
                        {
                            rows.push(row as RowId);
                        }
                    });
                }
                // Stale rows: the flat value superseded the encoded one.
                let mut delta_hits = false;
                for &off in stale {
                    let row = seg_start + off as usize;
                    if row >= r
                        && row < enc_end
                        && (!has_deletes || live.get_or_false(row))
                        && fp.pred.eval(row)
                    {
                        rows.push(row as RowId);
                        delta_hits = true;
                    }
                }
                // Overhang appended past the seal's coverage: always flat.
                for row in enc_end.max(r)..sub_end {
                    if has_deletes && !live.get_or_false(row) {
                        continue;
                    }
                    if fp.pred.eval(row) {
                        rows.push(row as RowId);
                    }
                }
                if delta_hits {
                    rows[mark..].sort_unstable();
                }
            }
            None => {
                for row in r..sub_end {
                    if has_deletes && !live.get_or_false(row) {
                        continue;
                    }
                    if fp.pred.eval(row) {
                        rows.push(row as RowId);
                    }
                }
            }
        }
        r = sub_end;
    }
    SelVec::from_rows(rows)
}

/// Column-wise vector-based scan (§4.1): refine per fact-local predicate
/// (already ordered most-selective-first by the caller), then per chain
/// check (predicate vectors before direct probes).
///
/// When the fact table carries sealed-segment encodings and a predicate is
/// seedable, the *first* seeded predicate builds the initial selection
/// vector directly from the encoded form instead of refining a full range
/// — the remaining predicates then refine only its survivors.
pub fn select_columnwise(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[FactPred<'_>],
    chains: &mut [ChainCheck<'_>],
) -> SelVec {
    let seed_idx = fact_preds
        .iter()
        .position(|p| p.seed.is_some())
        .filter(|_| fact.encodings().iter().any(Option::is_some));
    let mut sv = match seed_idx {
        Some(i) => seeded_selvec(fact, range, &fact_preds[i]),
        None => initial_selvec(fact, range),
    };
    for (i, p) in fact_preds.iter().enumerate() {
        if Some(i) == seed_idx {
            continue;
        }
        if sv.is_empty() {
            break;
        }
        sv.refine(|r| p.pred.eval(r as usize));
    }
    // Predicate vectors first (cheap, cache-resident), ordered densest-last.
    chains.sort_by(|a, b| {
        a.estimated_selectivity()
            .partial_cmp(&b.estimated_selectivity())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for c in chains.iter() {
        if sv.is_empty() {
            break;
        }
        sv.refine(|r| c.eval(r as usize));
    }
    sv
}

/// The full-materialization alternative of §4.1: "Some systems choose to
/// scan and evaluate each column independently. The result of each scan is
/// a bitmap … then the scan results of all the columns are combined through
/// bitwise AND." Every predicate touches the *whole* column — no skipping —
/// which is exactly the memory-bandwidth cost the selection-vector scan
/// avoids. Kept as an ablation comparator.
pub fn select_bitmap_and(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[FactPred<'_>],
    chains: &[ChainCheck<'_>],
) -> SelVec {
    let (lo, hi) = (range.start, range.end);
    let n = hi - lo;
    let mut acc = if fact.has_deletes() {
        let live = fact.live_bitmap();
        Bitmap::from_fn(n, |i| live.get_or_false(lo + i))
    } else {
        Bitmap::new(n, true)
    };
    for p in fact_preds {
        // Full column scan into an intermediate bitmap, then AND.
        let bm = Bitmap::from_fn(n, |i| p.pred.eval(lo + i));
        acc.and_assign(&bm);
    }
    for c in chains {
        let bm = Bitmap::from_fn(n, |i| c.eval(lo + i));
        acc.and_assign(&bm);
    }
    SelVec::from_rows(acc.iter_ones().map(|i| (lo + i) as RowId).collect())
}

/// Row-wise scan (the `AIRScan_R*` variants): all predicates evaluated per
/// tuple in a single pass.
pub fn select_rowwise(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[FactPred<'_>],
    chains: &[ChainCheck<'_>],
) -> SelVec {
    let has_deletes = fact.has_deletes();
    let live = fact.live_bitmap();
    let mut rows = Vec::new();
    for r in range {
        if has_deletes && !live.get_or_false(r) {
            continue;
        }
        if fact_preds.iter().all(|p| p.pred.eval(r)) && chains.iter().all(|c| c.eval(r)) {
            rows.push(r as RowId);
        }
    }
    SelVec::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred};
    use astore_storage::prelude::*;

    /// fact(f_dim key -> dim, f_v i32), dim(d_flag i32).
    fn db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_flag", DataType::I32)]));
        for f in [0, 1, 0, 1] {
            dim.append_row(&[Value::Int(f)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I32),
            ]),
        );
        for (d, v) in [(0u32, 10), (1, 20), (2, 30), (3, 40), (NULL_KEY, 50), (1, 60)] {
            fact.append_row(&[Value::Key(d), Value::Int(v)]);
        }
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn initial_selvec_full_range() {
        let db = db();
        let fact = db.table("fact").unwrap();
        assert_eq!(initial_selvec(fact, 0..6).len(), 6);
        assert_eq!(initial_selvec(fact, 2..4).rows(), &[2, 3]);
    }

    #[test]
    fn initial_selvec_skips_deleted() {
        let mut db = db();
        db.table_mut("fact").unwrap().delete(1);
        let fact = db.table("fact").unwrap();
        assert_eq!(initial_selvec(fact, 0..6).rows(), &[0, 2, 3, 4, 5]);
    }

    #[test]
    fn predvec_chain_check() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let check = ChainCheck::PredVec { keys, bitmap: &bm };
        // fact rows pointing at dims 1 or 3 pass; NULL_KEY fails.
        let hits: Vec<usize> = (0..6).filter(|&r| check.eval(r)).collect();
        assert_eq!(hits, vec![1, 3, 5]);
        assert!((check.estimated_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_chain_check_equivalent_to_predvec() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let direct = ChainCheck::Direct {
            checks: vec![DirectCheck {
                hops: vec![keys],
                live: None,
                pred: Some(Pred::eq("d_flag", 1).compile(dim)),
            }],
        };
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let pv = ChainCheck::PredVec { keys, bitmap: &bm };
        for r in 0..6 {
            assert_eq!(direct.eval(r), pv.eval(r), "row {r}");
        }
        assert_eq!(direct.estimated_selectivity(), 1.0);
    }

    #[test]
    fn direct_check_respects_dimension_deletes() {
        let mut db = db();
        db.table_mut("dim").unwrap().delete(1);
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let check = ChainCheck::Direct {
            checks: vec![DirectCheck {
                hops: vec![keys],
                live: Some(dim.live_bitmap()),
                pred: Some(Pred::eq("d_flag", 1).compile(dim)),
            }],
        };
        let hits: Vec<usize> = (0..6).filter(|&r| check.eval(r)).collect();
        assert_eq!(hits, vec![3], "rows pointing at deleted dim 1 drop out");
    }

    #[test]
    fn all_three_scan_disciplines_agree() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let fact_pred = FactPred::unseeded(Pred::cmp("f_v", CmpOp::Lt, 60).compile(fact));

        let mut chains = vec![ChainCheck::PredVec { keys, bitmap: &bm }];
        let col = select_columnwise(fact, 0..6, std::slice::from_ref(&fact_pred), &mut chains);
        let row = select_rowwise(fact, 0..6, std::slice::from_ref(&fact_pred), &chains);
        let bma = select_bitmap_and(fact, 0..6, std::slice::from_ref(&fact_pred), &chains);
        assert_eq!(col, row);
        assert_eq!(col, bma);
        assert_eq!(col.rows(), &[1, 3]);
    }

    #[test]
    fn bitmap_and_respects_subranges_and_deletes() {
        let mut db = db();
        db.table_mut("fact").unwrap().delete(3);
        let fact = db.table("fact").unwrap();
        let p = FactPred::unseeded(Pred::cmp("f_v", CmpOp::Ge, 20).compile(fact));
        let sv = select_bitmap_and(fact, 1..5, std::slice::from_ref(&p), &[]);
        assert_eq!(sv.rows(), &[1, 2, 4]);
    }

    #[test]
    fn empty_short_circuit() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let p = FactPred::unseeded(Pred::cmp("f_v", CmpOp::Gt, 1000).compile(fact));
        let sv = select_columnwise(fact, 0..6, std::slice::from_ref(&p), &mut []);
        assert!(sv.is_empty());
    }

    /// The encoded seeded scan must produce exactly the rows the row-wise
    /// predicate accepts, across segment seals, sub-ranges, deletes, and
    /// every seedable predicate/column shape.
    #[test]
    fn seeded_scan_matches_rowwise_eval() {
        let mut db = Database::new();
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_flag", DataType::I32)]));
        for f in 0..8 {
            dim.append_row(&[Value::Int(f)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_i", DataType::I32),
                ColumnDef::new("f_l", DataType::I64),
                ColumnDef::new("f_d", DataType::Dict),
            ]),
        );
        fact.set_segment_rows(64);
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..300u64 {
            let key = if next() % 10 == 0 { NULL_KEY } else { (next() % 8) as u32 };
            fact.append_row(&[
                Value::Key(key),
                Value::Int((next() % 50) as i64 - 25),
                // Clustered: long runs so at least one column RLE-encodes.
                Value::Int((i / 64) as i64),
                Value::Str(format!("m{}", next() % 6)),
            ]);
        }
        // Deletes so live filtering participates.
        for r in [3u32, 64, 65, 130, 299] {
            fact.delete(r);
        }
        let sealed = fact.seal_segments();
        assert!(sealed > 0);
        assert!(fact.encodings().iter().any(Option::is_some));

        // Post-seal write-throughs: updates and a reuse-insert go to the
        // stale delta, appends become unsealed overhang — the seals must
        // survive and the seeded scan must keep agreeing with row-wise.
        fact.update(10, "f_i", &Value::Int(23));
        fact.update(70, "f_l", &Value::Int(9));
        fact.update(131, "f_d", &Value::Str("m3".into()));
        fact.update(200, "f_dim", &Value::Key(7));
        let reused =
            fact.insert(&[Value::Key(2), Value::Int(-3), Value::Int(4), Value::Str("m1".into())]);
        assert_eq!(reused, 299, "free list reuses the last deleted slot");
        for i in 0..20u64 {
            fact.append_row(&[
                Value::Key((i % 8) as u32),
                Value::Int(i as i64 - 10),
                Value::Int(5),
                Value::Str("m2".into()),
            ]);
        }
        assert!(fact.encoding(0).is_some(), "write-through keeps the seal");
        assert!(!fact.segment_stale(0).is_empty());
        assert!(fact.delta_rows() > 0);
        db.add_table(dim);
        db.add_table(fact);
        let fact = db.table("fact").unwrap();

        let preds = [
            Pred::cmp("f_i", CmpOp::Ge, 0),
            Pred::cmp("f_i", CmpOp::Lt, -10),
            Pred::between("f_i", -5, 5),
            Pred::cmp("f_l", CmpOp::Eq, 2),
            Pred::between("f_l", 1, 3),
            Pred::eq("f_d", "m3"),
            Pred::eq("f_d", "absent"),
            Pred::cmp("f_dim", CmpOp::Le, 3),
            Pred::cmp("f_dim", CmpOp::Gt, 6), // catches NULL_KEY as largest
            Pred::between("f_i", 100, 200),   // empty
        ];
        let cols = ["f_i", "f_i", "f_i", "f_l", "f_l", "f_d", "f_d", "f_dim", "f_dim", "f_i"];
        for (p, col) in preds.iter().zip(cols) {
            let compiled = p.clone().compile(fact);
            let colpos = fact.schema().position(col).unwrap();
            let fp = FactPred::seeded(compiled, colpos);
            assert!(fp.seed.is_some(), "{p:?} should seed");
            let n = fact.num_slots();
            for range in
                [0..n, 0..64, 10..200, 64..128, 130..131, 299..300, 150..150, 290..n, 300..n]
            {
                let enc =
                    select_columnwise(fact, range.clone(), std::slice::from_ref(&fp), &mut []);
                let flat = select_rowwise(fact, range, std::slice::from_ref(&fp), &[]);
                assert_eq!(enc, flat, "{p:?}");
            }
        }
    }
}
