//! Scan-and-filter machinery (paper §3 phase 1, §4.1, §4.2).
//!
//! Two scan disciplines are provided, matching the paper's ablation (§6.3):
//!
//! * **row-wise** ([`select_rowwise`]): every tuple is evaluated against all
//!   predicates in one pass over the fact table;
//! * **column-wise** ([`select_columnwise`]): a [`SelVec`] is refined one
//!   predicate at a time, most selective first, so later predicates touch
//!   only surviving tuples.
//!
//! Dimension predicates appear as [`ChainCheck`]s: either a probe of a
//! pre-built predicate vector (§4.2) or a direct AIR chase that evaluates
//! the dimension predicates per fact row (the fallback when the filter
//! would not fit the cache budget, and the mode of the `_P`-less variants).

use astore_storage::bitmap::Bitmap;
use astore_storage::selvec::SelVec;
use astore_storage::table::Table;
use astore_storage::types::{Key, RowId, NULL_KEY};

use crate::expr::CompiledPred;

/// A per-fact-row liveness + predicate check against one table of a
/// dimension chain, evaluated by chasing the AIR hops.
pub struct DirectCheck<'a> {
    /// AIR hop arrays from the fact table to the checked table.
    pub hops: Vec<&'a [Key]>,
    /// Live bitmap of the checked table, present only when it has deletes.
    pub live: Option<&'a Bitmap>,
    /// Compiled predicate on the checked table, if the query has one.
    pub pred: Option<CompiledPred<'a>>,
}

impl DirectCheck<'_> {
    /// Evaluates the check for one fact row.
    #[inline]
    pub fn eval(&self, fact_row: usize) -> bool {
        let mut row = fact_row;
        for keys in &self.hops {
            let k = keys[row];
            if k == NULL_KEY {
                return false;
            }
            row = k as usize;
        }
        if let Some(live) = self.live {
            if !live.get_or_false(row) {
                return false;
            }
        }
        match &self.pred {
            Some(p) => p.eval(row),
            None => true,
        }
    }
}

/// The selection test for one dimension chain.
pub enum ChainCheck<'a> {
    /// Probe the chain's composed predicate vector through the fact FK
    /// column (paper §4.2).
    PredVec {
        /// The fact FK column's key array.
        keys: &'a [Key],
        /// Composed predicate vector over the first-level dimension.
        bitmap: &'a Bitmap,
    },
    /// Chase the chain and evaluate predicates per fact row.
    Direct {
        /// One check per predicate-bearing (or delete-bearing) table.
        checks: Vec<DirectCheck<'a>>,
    },
}

impl ChainCheck<'_> {
    /// Evaluates the chain check for one fact row.
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        match self {
            ChainCheck::PredVec { keys, bitmap } => {
                // NULL_KEY maps far out of range and reads as false.
                bitmap.get_or_false(keys[row] as usize)
            }
            ChainCheck::Direct { checks } => checks.iter().all(|c| c.eval(row)),
        }
    }

    /// Rough selectivity estimate for check ordering (predicate vectors
    /// expose their density; direct probes are pessimistically 1.0 so they
    /// run last, on the fewest rows).
    pub fn estimated_selectivity(&self) -> f64 {
        match self {
            ChainCheck::PredVec { bitmap, .. } => {
                if bitmap.is_empty() {
                    0.0
                } else {
                    bitmap.count_ones() as f64 / bitmap.len() as f64
                }
            }
            ChainCheck::Direct { .. } => 1.0,
        }
    }
}

/// The initial selection vector over a row range, honouring deletes.
pub fn initial_selvec(fact: &Table, range: std::ops::Range<usize>) -> SelVec {
    if fact.has_deletes() {
        let live = fact.live_bitmap();
        SelVec::from_rows(range.filter(|&r| live.get_or_false(r)).map(|r| r as RowId).collect())
    } else {
        SelVec::from_rows(range.map(|r| r as RowId).collect())
    }
}

/// Column-wise vector-based scan (§4.1): refine per fact-local predicate
/// (already ordered most-selective-first by the caller), then per chain
/// check (predicate vectors before direct probes).
pub fn select_columnwise(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[CompiledPred<'_>],
    chains: &mut [ChainCheck<'_>],
) -> SelVec {
    let mut sv = initial_selvec(fact, range);
    for p in fact_preds {
        if sv.is_empty() {
            break;
        }
        sv.refine(|r| p.eval(r as usize));
    }
    // Predicate vectors first (cheap, cache-resident), ordered densest-last.
    chains.sort_by(|a, b| {
        a.estimated_selectivity()
            .partial_cmp(&b.estimated_selectivity())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for c in chains.iter() {
        if sv.is_empty() {
            break;
        }
        sv.refine(|r| c.eval(r as usize));
    }
    sv
}

/// The full-materialization alternative of §4.1: "Some systems choose to
/// scan and evaluate each column independently. The result of each scan is
/// a bitmap … then the scan results of all the columns are combined through
/// bitwise AND." Every predicate touches the *whole* column — no skipping —
/// which is exactly the memory-bandwidth cost the selection-vector scan
/// avoids. Kept as an ablation comparator.
pub fn select_bitmap_and(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[CompiledPred<'_>],
    chains: &[ChainCheck<'_>],
) -> SelVec {
    let (lo, hi) = (range.start, range.end);
    let n = hi - lo;
    let mut acc = if fact.has_deletes() {
        let live = fact.live_bitmap();
        Bitmap::from_fn(n, |i| live.get_or_false(lo + i))
    } else {
        Bitmap::new(n, true)
    };
    for p in fact_preds {
        // Full column scan into an intermediate bitmap, then AND.
        let bm = Bitmap::from_fn(n, |i| p.eval(lo + i));
        acc.and_assign(&bm);
    }
    for c in chains {
        let bm = Bitmap::from_fn(n, |i| c.eval(lo + i));
        acc.and_assign(&bm);
    }
    SelVec::from_rows(acc.iter_ones().map(|i| (lo + i) as RowId).collect())
}

/// Row-wise scan (the `AIRScan_R*` variants): all predicates evaluated per
/// tuple in a single pass.
pub fn select_rowwise(
    fact: &Table,
    range: std::ops::Range<usize>,
    fact_preds: &[CompiledPred<'_>],
    chains: &[ChainCheck<'_>],
) -> SelVec {
    let has_deletes = fact.has_deletes();
    let live = fact.live_bitmap();
    let mut rows = Vec::new();
    for r in range {
        if has_deletes && !live.get_or_false(r) {
            continue;
        }
        if fact_preds.iter().all(|p| p.eval(r)) && chains.iter().all(|c| c.eval(r)) {
            rows.push(r as RowId);
        }
    }
    SelVec::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Pred};
    use astore_storage::prelude::*;

    /// fact(f_dim key -> dim, f_v i32), dim(d_flag i32).
    fn db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_flag", DataType::I32)]));
        for f in [0, 1, 0, 1] {
            dim.append_row(&[Value::Int(f)]);
        }
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I32),
            ]),
        );
        for (d, v) in [(0u32, 10), (1, 20), (2, 30), (3, 40), (NULL_KEY, 50), (1, 60)] {
            fact.append_row(&[Value::Key(d), Value::Int(v)]);
        }
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn initial_selvec_full_range() {
        let db = db();
        let fact = db.table("fact").unwrap();
        assert_eq!(initial_selvec(fact, 0..6).len(), 6);
        assert_eq!(initial_selvec(fact, 2..4).rows(), &[2, 3]);
    }

    #[test]
    fn initial_selvec_skips_deleted() {
        let mut db = db();
        db.table_mut("fact").unwrap().delete(1);
        let fact = db.table("fact").unwrap();
        assert_eq!(initial_selvec(fact, 0..6).rows(), &[0, 2, 3, 4, 5]);
    }

    #[test]
    fn predvec_chain_check() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let check = ChainCheck::PredVec { keys, bitmap: &bm };
        // fact rows pointing at dims 1 or 3 pass; NULL_KEY fails.
        let hits: Vec<usize> = (0..6).filter(|&r| check.eval(r)).collect();
        assert_eq!(hits, vec![1, 3, 5]);
        assert!((check.estimated_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn direct_chain_check_equivalent_to_predvec() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let direct = ChainCheck::Direct {
            checks: vec![DirectCheck {
                hops: vec![keys],
                live: None,
                pred: Some(Pred::eq("d_flag", 1).compile(dim)),
            }],
        };
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let pv = ChainCheck::PredVec { keys, bitmap: &bm };
        for r in 0..6 {
            assert_eq!(direct.eval(r), pv.eval(r), "row {r}");
        }
        assert_eq!(direct.estimated_selectivity(), 1.0);
    }

    #[test]
    fn direct_check_respects_dimension_deletes() {
        let mut db = db();
        db.table_mut("dim").unwrap().delete(1);
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let check = ChainCheck::Direct {
            checks: vec![DirectCheck {
                hops: vec![keys],
                live: Some(dim.live_bitmap()),
                pred: Some(Pred::eq("d_flag", 1).compile(dim)),
            }],
        };
        let hits: Vec<usize> = (0..6).filter(|&r| check.eval(r)).collect();
        assert_eq!(hits, vec![3], "rows pointing at deleted dim 1 drop out");
    }

    #[test]
    fn all_three_scan_disciplines_agree() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let dim = db.table("dim").unwrap();
        let bm = Pred::eq("d_flag", 1).eval_bitmap(dim);
        let (_, keys) = fact.column("f_dim").unwrap().as_key().unwrap();
        let fact_pred = Pred::cmp("f_v", CmpOp::Lt, 60).compile(fact);

        let mut chains = vec![ChainCheck::PredVec { keys, bitmap: &bm }];
        let col = select_columnwise(fact, 0..6, std::slice::from_ref(&fact_pred), &mut chains);
        let row = select_rowwise(fact, 0..6, std::slice::from_ref(&fact_pred), &chains);
        let bma = select_bitmap_and(fact, 0..6, std::slice::from_ref(&fact_pred), &chains);
        assert_eq!(col, row);
        assert_eq!(col, bma);
        assert_eq!(col.rows(), &[1, 3]);
    }

    #[test]
    fn bitmap_and_respects_subranges_and_deletes() {
        let mut db = db();
        db.table_mut("fact").unwrap().delete(3);
        let fact = db.table("fact").unwrap();
        let p = Pred::cmp("f_v", CmpOp::Ge, 20).compile(fact);
        let sv = select_bitmap_and(fact, 1..5, std::slice::from_ref(&p), &[]);
        assert_eq!(sv.rows(), &[1, 2, 4]);
    }

    #[test]
    fn empty_short_circuit() {
        let db = db();
        let fact = db.table("fact").unwrap();
        let p = Pred::cmp("f_v", CmpOp::Gt, 1000).compile(fact);
        let sv = select_columnwise(fact, 0..6, std::slice::from_ref(&p), &mut []);
        assert!(sv.is_empty());
    }
}
