//! The virtual universal table (paper §3).
//!
//! "Given a SPJGA query Q, we reserve only the join operations of Q … the
//! result of the remaining query is the universal table of Q. … A-Store
//! never materializes the universal table before the scan. The array index
//! references have already linked all the tables together, forming a
//! virtual denormalization."
//!
//! [`Universal`] binds a database + join graph + root table and resolves
//! any [`ColRef`] into a [`ResolvedCol`]: the chain of AIR arrays to chase
//! from a fact row, plus the target column. Chasing is a handful of
//! positional array lookups — the paper's "scan-and-address" join.

use astore_storage::catalog::Database;
use astore_storage::column::Column;
use astore_storage::table::Table;
use astore_storage::types::{Key, NULL_KEY};

use crate::graph::JoinGraph;
use crate::query::ColRef;

/// Errors raised while binding a query to a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The referenced table does not exist.
    NoTable(String),
    /// The referenced column does not exist.
    NoColumn(String, String),
    /// No reference path from the root to the table.
    Unreachable {
        /// The root table.
        root: String,
        /// The unreachable table.
        table: String,
    },
    /// No root table covers all referenced tables.
    NoRoot(Vec<String>),
    /// The query is still a template: it carries this many unbound
    /// parameter slots and must go through `Query::bind_params` first.
    UnboundParams(usize),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::NoTable(t) => write!(f, "table {t:?} does not exist"),
            BindError::NoColumn(t, c) => write!(f, "column {t:?}.{c:?} does not exist"),
            BindError::Unreachable { root, table } => {
                write!(f, "table {table:?} is not reachable from root {root:?}")
            }
            BindError::NoRoot(tables) => {
                write!(f, "no single root table reaches all of {tables:?}")
            }
            BindError::UnboundParams(n) => {
                write!(f, "query template has {n} unbound parameter(s); bind them first")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// A bound view of the virtually denormalized schema, rooted at one fact
/// table.
pub struct Universal<'a> {
    db: &'a Database,
    graph: &'a JoinGraph,
    root: String,
}

impl<'a> Universal<'a> {
    /// Binds a universal table rooted at `root`.
    pub fn new(db: &'a Database, graph: &'a JoinGraph, root: &str) -> Result<Self, BindError> {
        if db.table(root).is_none() {
            return Err(BindError::NoTable(root.to_owned()));
        }
        Ok(Universal { db, graph, root: root.to_owned() })
    }

    /// The root (fact) table name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The root table.
    pub fn root_table(&self) -> &'a Table {
        self.db.table(&self.root).expect("root checked at bind time")
    }

    /// The database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The join graph.
    pub fn graph(&self) -> &'a JoinGraph {
        self.graph
    }

    /// The AIR hop arrays along the path `root -> table`, in traversal
    /// order. Empty for the root itself.
    pub fn hops_to(&self, table: &str) -> Result<Vec<&'a [Key]>, BindError> {
        let path = self.graph.path(&self.root, table).ok_or_else(|| BindError::Unreachable {
            root: self.root.clone(),
            table: table.into(),
        })?;
        let mut hops = Vec::with_capacity(path.steps.len());
        for step in &path.steps {
            let t = self
                .db
                .table(&step.from_table)
                .ok_or_else(|| BindError::NoTable(step.from_table.clone()))?;
            let col = t.column(&step.key_column).ok_or_else(|| {
                BindError::NoColumn(step.from_table.clone(), step.key_column.clone())
            })?;
            let (_, keys) = col.as_key().unwrap_or_else(|| {
                panic!("{}.{} is not a key column", step.from_table, step.key_column)
            });
            hops.push(keys);
        }
        Ok(hops)
    }

    /// Resolves a column reference into its AIR chain + target column.
    pub fn resolve(&self, col: &ColRef) -> Result<ResolvedCol<'a>, BindError> {
        let table =
            self.db.table(&col.table).ok_or_else(|| BindError::NoTable(col.table.clone()))?;
        let column = table
            .column(&col.column)
            .ok_or_else(|| BindError::NoColumn(col.table.clone(), col.column.clone()))?;
        let hops = self.hops_to(&col.table)?;
        Ok(ResolvedCol { hops, table, column })
    }
}

/// A column of the universal table: the chain of AIR arrays from the root
/// plus the physical column it lands on.
pub struct ResolvedCol<'a> {
    /// AIR hop arrays, in traversal order (empty if the column lives on the
    /// root table).
    pub hops: Vec<&'a [Key]>,
    /// The table the column lives on.
    pub table: &'a Table,
    /// The physical column.
    pub column: &'a Column,
}

impl ResolvedCol<'_> {
    /// Chases the AIR chain from a root row to the row holding this column's
    /// value. Returns `None` if any hop is [`NULL_KEY`] or out of range —
    /// the virtual-denormalization analogue of a failed join match.
    #[inline]
    pub fn locate(&self, root_row: usize) -> Option<usize> {
        let mut row = root_row;
        for keys in &self.hops {
            let k = *keys.get(row)?;
            if k == NULL_KEY {
                return None;
            }
            row = k as usize;
        }
        Some(row)
    }

    /// Number of AIR hops (0 = root column).
    pub fn depth(&self) -> usize {
        self.hops.len()
    }

    /// Returns `true` if the column lives on the root table (no chasing
    /// needed — the scan is purely sequential).
    pub fn is_root_local(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Resolves the root table for a query: the explicit root if given, else the
/// unique root covering all referenced tables.
pub fn bind_root(
    graph: &JoinGraph,
    explicit: Option<&str>,
    referenced: &[&str],
) -> Result<String, BindError> {
    if let Some(r) = explicit {
        return Ok(r.to_owned());
    }
    graph
        .root_covering(referenced)
        .map(str::to_owned)
        .ok_or_else(|| BindError::NoRoot(referenced.iter().map(|s| s.to_string()).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::prelude::*;

    /// fact -> mid -> dim, with concrete data so chasing can be verified.
    fn chain_db() -> Database {
        let mut db = Database::new();
        let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_name", DataType::Str)]));
        dim.append_row(&[Value::Str("alpha".into())]);
        dim.append_row(&[Value::Str("beta".into())]);

        let mut mid = Table::new(
            "mid",
            Schema::new(vec![
                ColumnDef::new("m_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("m_v", DataType::I32),
            ]),
        );
        mid.append_row(&[Value::Key(1), Value::Int(10)]);
        mid.append_row(&[Value::Key(0), Value::Int(20)]);
        mid.append_row(&[Value::Key(NULL_KEY), Value::Int(30)]);

        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_mid", DataType::Key { target: "mid".into() }),
                ColumnDef::new("f_m", DataType::I64),
            ]),
        );
        fact.append_row(&[Value::Key(0), Value::Int(100)]);
        fact.append_row(&[Value::Key(2), Value::Int(200)]);
        fact.append_row(&[Value::Key(1), Value::Int(300)]);
        db.add_table(dim);
        db.add_table(mid);
        db.add_table(fact);
        db
    }

    #[test]
    fn resolve_root_column_has_no_hops() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        let u = Universal::new(&db, &g, "fact").unwrap();
        let r = u.resolve(&ColRef::new("fact", "f_m")).unwrap();
        assert!(r.is_root_local());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.locate(1), Some(1));
        assert_eq!(r.column.int_at(1), Some(200));
    }

    #[test]
    fn resolve_chases_two_hops() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        let u = Universal::new(&db, &g, "fact").unwrap();
        let r = u.resolve(&ColRef::new("dim", "d_name")).unwrap();
        assert_eq!(r.depth(), 2);
        // fact row 0 -> mid 0 -> dim 1 = "beta"
        let dim_row = r.locate(0).unwrap();
        assert_eq!(r.column.str_at(dim_row), Some("beta"));
        // fact row 2 -> mid 1 -> dim 0 = "alpha"
        assert_eq!(r.column.str_at(r.locate(2).unwrap()), Some("alpha"));
    }

    #[test]
    fn null_key_breaks_the_chain() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        let u = Universal::new(&db, &g, "fact").unwrap();
        let r = u.resolve(&ColRef::new("dim", "d_name")).unwrap();
        // fact row 1 -> mid 2 -> NULL
        assert_eq!(r.locate(1), None);
    }

    #[test]
    fn bind_errors() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        assert!(matches!(Universal::new(&db, &g, "ghost"), Err(BindError::NoTable(_))));
        let u = Universal::new(&db, &g, "fact").unwrap();
        assert!(matches!(u.resolve(&ColRef::new("dim", "ghost")), Err(BindError::NoColumn(..))));
        // "dim" cannot reach "fact".
        let udim = Universal::new(&db, &g, "dim").unwrap();
        assert!(matches!(
            udim.resolve(&ColRef::new("fact", "f_m")),
            Err(BindError::Unreachable { .. })
        ));
    }

    #[test]
    fn bind_root_explicit_and_inferred() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        assert_eq!(bind_root(&g, Some("fact"), &[]).unwrap(), "fact");
        assert_eq!(bind_root(&g, None, &["dim", "mid"]).unwrap(), "fact");
        assert!(matches!(bind_root(&g, None, &["nonexistent"]), Err(BindError::NoRoot(_))));
    }

    #[test]
    fn hops_to_root_is_empty() {
        let db = chain_db();
        let g = JoinGraph::build(&db);
        let u = Universal::new(&db, &g, "fact").unwrap();
        assert!(u.hops_to("fact").unwrap().is_empty());
        assert_eq!(u.hops_to("dim").unwrap().len(), 2);
    }

    #[test]
    fn bind_error_display() {
        let e = BindError::Unreachable { root: "f".into(), table: "d".into() };
        assert!(e.to_string().contains("not reachable"));
        assert!(BindError::NoTable("x".into()).to_string().contains("does not exist"));
    }
}
