//! Raw AIR join kernels (paper §6.1, Table 2 / Fig. 8).
//!
//! With array indexes as primary keys, a PK-FK equi-join is a gather: for
//! each fact tuple, the foreign key *is* the position of its dimension
//! match. These kernels are the unit the paper benchmarks against the NPO
//! and PRO hash joins and sort-merge join (implemented in
//! `astore-baseline`). Following the microbenchmark convention of Balkesen
//! et al. \[7\], a join "materializes" by summing the matched payloads, so
//! the kernel cost includes one dimension-side memory access per tuple.

use astore_storage::bitmap::Bitmap;
use astore_storage::types::{Key, NULL_KEY};

/// Inner-join cardinality: counts fact tuples whose key addresses a valid
/// dimension slot.
pub fn air_join_count(keys: &[Key], dim_rows: usize) -> u64 {
    let n = dim_rows as u64;
    let mut matches = 0u64;
    for &k in keys {
        // NULL_KEY is u32::MAX and compares >= any realistic dimension size.
        matches += u64::from((k as u64) < n);
    }
    matches
}

/// Join with payload materialization: sums the `i64` dimension payload of
/// every matched tuple. Returns `(matches, payload_sum)`.
pub fn air_join_sum(keys: &[Key], payload: &[i64]) -> (u64, i64) {
    let n = payload.len();
    let mut matches = 0u64;
    let mut sum = 0i64;
    for &k in keys {
        let idx = k as usize;
        if idx < n {
            matches += 1;
            sum = sum.wrapping_add(payload[idx]);
        }
    }
    (matches, sum)
}

/// Join with `i32` payload (dimension attributes are commonly 32-bit).
pub fn air_join_sum_i32(keys: &[Key], payload: &[i32]) -> (u64, i64) {
    let n = payload.len();
    let mut matches = 0u64;
    let mut sum = 0i64;
    for &k in keys {
        let idx = k as usize;
        if idx < n {
            matches += 1;
            sum = sum.wrapping_add(i64::from(payload[idx]));
        }
    }
    (matches, sum)
}

/// Gathers the matched payloads into an output vector (fully materializing
/// join, for result-size-sensitive comparisons).
pub fn air_gather_i32(keys: &[Key], payload: &[i32]) -> Vec<i32> {
    let n = payload.len();
    let mut out = Vec::with_capacity(keys.len());
    for &k in keys {
        let idx = k as usize;
        if idx < n {
            out.push(payload[idx]);
        }
    }
    out
}

/// Semi-join through a predicate vector: counts fact tuples whose dimension
/// match passes the filter (the star-join primitive of §4.2).
pub fn air_semijoin_count(keys: &[Key], filter: &Bitmap) -> u64 {
    let mut matches = 0u64;
    for &k in keys {
        matches += u64::from(k != NULL_KEY && filter.get_or_false(k as usize));
    }
    matches
}

/// Multi-way star-join count: a tuple survives iff every foreign key passes
/// its predicate vector — the kernel behind the paper's §6.1.3 star-join
/// microbenchmark.
pub fn air_starjoin_count(fks: &[(&[Key], &Bitmap)], fact_rows: usize) -> u64 {
    let mut matches = 0u64;
    'rows: for r in 0..fact_rows {
        for (keys, filter) in fks {
            let k = keys[r];
            if k == NULL_KEY || !filter.get_or_false(k as usize) {
                continue 'rows;
            }
        }
        matches += 1;
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_join_skips_null_and_out_of_range() {
        let keys = [0, 1, 2, NULL_KEY, 99];
        assert_eq!(air_join_count(&keys, 3), 3);
        assert_eq!(air_join_count(&keys, 100), 4);
        assert_eq!(air_join_count(&[], 10), 0);
    }

    #[test]
    fn sum_join_gathers_payloads() {
        let keys = [2, 0, 2, NULL_KEY];
        let payload = [10i64, 20, 30];
        let (m, s) = air_join_sum(&keys, &payload);
        assert_eq!(m, 3);
        assert_eq!(s, 30 + 10 + 30);
    }

    #[test]
    fn sum_join_i32() {
        let keys = [1, 1, 0];
        let payload = [5i32, -7];
        let (m, s) = air_join_sum_i32(&keys, &payload);
        assert_eq!(m, 3);
        assert_eq!(s, -7 - 7 + 5);
    }

    #[test]
    fn gather_preserves_order() {
        let keys = [1, 0, NULL_KEY, 1];
        let payload = [100i32, 200];
        assert_eq!(air_gather_i32(&keys, &payload), vec![200, 100, 200]);
    }

    #[test]
    fn semijoin_counts_filtered_matches() {
        let keys = [0, 1, 2, 3, NULL_KEY];
        let filter = Bitmap::from_fn(4, |i| i % 2 == 0);
        assert_eq!(air_semijoin_count(&keys, &filter), 2);
    }

    #[test]
    fn starjoin_requires_all_dimensions() {
        let k1: Vec<Key> = vec![0, 1, 0, 1];
        let k2: Vec<Key> = vec![0, 0, 1, 1];
        let f1 = Bitmap::from_fn(2, |i| i == 0); // only dim1 row 0 passes
        let f2 = Bitmap::from_fn(2, |_| true); // all dim2 rows pass
        let fks: Vec<(&[Key], &Bitmap)> = vec![(&k1, &f1), (&k2, &f2)];
        assert_eq!(air_starjoin_count(&fks, 4), 2); // rows 0 and 2
    }

    #[test]
    fn join_sum_matches_count() {
        let keys: Vec<Key> = (0..1000).map(|i| i % 64).collect();
        let payload: Vec<i64> = (0..64).collect();
        let (m, _) = air_join_sum(&keys, &payload);
        assert_eq!(m, air_join_count(&keys, 64));
    }
}
