//! `EXPLAIN ANALYZE` rendering: the executed plan annotated with actual
//! times, rows, and per-segment decisions.
//!
//! The report is assembled from two sources the executor already produces:
//! the [`PlanInfo`](crate::exec::PlanInfo)/[`PhaseTimings`](crate::exec::PhaseTimings) in the
//! [`ExecOutput`], and the span tree a [`TraceBuf`] collected while the
//! query ran. Rendering is plain text, one line per entry, so every layer
//! (CLI, server frame, tests) shares the same format.

use std::collections::HashMap;

use astore_obs::{Span, SpanId, TraceBuf};

use crate::exec::ExecOutput;

/// Children rendered per parent before the tree is elided with a
/// `(+N more)` line — keeps a thousand-morsel scan readable.
const MAX_CHILDREN_SHOWN: usize = 32;

/// Renders an `EXPLAIN ANALYZE` report: plan summary lines followed by the
/// indented span tree.
pub fn render_analyze(out: &ExecOutput, trace: &TraceBuf) -> Vec<String> {
    let mut lines = plan_lines(out);
    let dropped = trace.dropped();
    let spans = trace.spans();
    if dropped > 0 {
        lines.push(format!("trace: {} spans ({dropped} dropped at cap)", spans.len()));
    } else {
        lines.push(format!("trace: {} spans", spans.len()));
    }
    lines.extend(render_span_tree(&spans));
    lines
}

/// The plan-summary lines of the report (everything except the span tree).
pub fn plan_lines(out: &ExecOutput) -> Vec<String> {
    let p = &out.plan;
    let t = &out.timings;
    vec![
        format!("root: {}  executor: {}", p.root, p.executor),
        format!(
            "phases: leaf={}us scan={}us agg={}us total={}us",
            t.leaf.as_micros(),
            t.scan.as_micros(),
            t.agg.as_micros(),
            t.total.as_micros()
        ),
        format!(
            "segments: scanned={} pruned={}  chains: predvec={} direct={}",
            p.segments_scanned, p.segments_pruned, p.predvec_chains, p.direct_chains
        ),
        format!(
            "rows: selected={} groups={}  agg: {:?}",
            p.selected_rows, p.groups, p.agg_strategy
        ),
    ]
}

/// Renders a span forest as indented `name start..end` lines with attrs.
pub fn render_span_tree(spans: &[Span]) -> Vec<String> {
    let mut children: HashMap<Option<SpanId>, Vec<&Span>> = HashMap::new();
    let ids: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    for s in spans {
        // A child whose parent was dropped at the cap renders at the root.
        let parent = s.parent.filter(|p| ids.contains(p));
        children.entry(parent).or_default().push(s);
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| (s.start_us, s.id.0));
    }
    let mut lines = Vec::new();
    walk(&children, None, 1, &mut lines);
    lines
}

fn walk(
    children: &HashMap<Option<SpanId>, Vec<&Span>>,
    parent: Option<SpanId>,
    depth: usize,
    lines: &mut Vec<String>,
) {
    // Depth bound: the executor nests three levels; anything deeper means a
    // malformed parent link, which should not hang the renderer.
    if depth > 8 {
        return;
    }
    let Some(kids) = children.get(&parent) else { return };
    for (i, s) in kids.iter().enumerate() {
        if i == MAX_CHILDREN_SHOWN {
            lines.push(format!(
                "{}… (+{} more {})",
                "  ".repeat(depth),
                kids.len() - MAX_CHILDREN_SHOWN,
                s.name
            ));
            break;
        }
        let mut line = format!("{}{} {}..{}us", "  ".repeat(depth), s.name, s.start_us, s.end_us());
        for (k, v) in &s.attrs {
            line.push_str(&format!(" {k}={v}"));
        }
        lines.push(line);
        walk(children, Some(s.id), depth + 1, lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use crate::expr::Pred;
    use crate::query::{Aggregate, Query};
    use astore_storage::prelude::*;
    use std::sync::Arc;

    fn small_db() -> Database {
        let mut dim =
            Table::new("dim", Schema::new(vec![ColumnDef::new("d_name", DataType::Dict)]));
        dim.append_row(&[Value::Str("a".into())]);
        dim.append_row(&[Value::Str("b".into())]);
        let mut fact = Table::new(
            "fact",
            Schema::new(vec![
                ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
                ColumnDef::new("f_v", DataType::I64),
            ]),
        );
        for i in 0..100 {
            fact.append_row(&[Value::Key((i % 2) as u32), Value::Int(i)]);
        }
        let mut db = Database::new();
        db.add_table(dim);
        db.add_table(fact);
        db
    }

    #[test]
    fn traced_execution_renders_a_report() {
        let db = small_db();
        let q = Query::new()
            .filter("dim", Pred::eq("d_name", "a"))
            .group("dim", "d_name")
            .agg(Aggregate::count("n"));
        let trace = Arc::new(TraceBuf::new());
        let opts = ExecOptions::default().trace(trace.clone());
        let out = execute(&db, &q, &opts).unwrap();
        let lines = render_analyze(&out, &trace);
        let text = lines.join("\n");
        assert!(text.contains("root: fact"), "{text}");
        assert!(text.contains("phases: leaf="), "{text}");
        assert!(text.contains("segments: scanned="), "{text}");
        assert!(text.contains("execute "), "{text}");
        assert!(text.contains("phase2_scan"), "{text}");
        assert!(text.contains("segment_prune"), "{text}");
    }

    #[test]
    fn untraced_execution_records_nothing() {
        let db = small_db();
        let q = Query::new().root("fact").agg(Aggregate::count("n"));
        let out = execute(&db, &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.result.rows.len(), 1);
        // No trace attached — plan lines still render on their own.
        let lines = plan_lines(&out);
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn long_sibling_runs_are_elided() {
        let trace = TraceBuf::new();
        let root = trace.alloc();
        for i in 0..(MAX_CHILDREN_SHOWN + 5) {
            trace.add("morsel", Some(root), i as u64, 1, vec![]);
        }
        trace.record(root, "scan", None, 0, 1000, vec![]);
        let lines = render_span_tree(&trace.spans());
        let shown = lines.iter().filter(|l| l.contains("morsel ")).count();
        assert_eq!(shown, MAX_CHILDREN_SHOWN);
        assert!(lines.iter().any(|l| l.contains("(+5 more morsel)")), "{lines:?}");
    }
}
