//! Array-based column-wise aggregation (paper §4.3).
//!
//! "A-Store … chooses to use a multidimensional array instead of a hash
//! table to collect aggregation results. … Each element of the
//! multidimensional array corresponds to a group. … the array index of each
//! tuple's group will be identified and stored in a Measure Index. … As the
//! addressing mechanism of arrays is faster than that of hash tables, our
//! array based aggregation can outperform hash based aggregation
//! remarkably."
//!
//! When "the resulting aggregation array can be too sparse", the same
//! Measure-Index machinery runs against a hash table instead
//! ([`Grouper::Hash`]); the optimizer makes that call (§4.3, last
//! paragraph).

use std::collections::HashMap;

use astore_storage::types::Key;

use crate::query::AggFunc;

/// Sentinel cell id for tuples that failed grouping (the paper's −1 in the
/// Measure Index).
pub const NO_CELL: i64 = -1;

/// Maps per-dimension group codes to a flat cell id.
#[derive(Debug)]
pub enum Grouper {
    /// No GROUP BY: a single cell.
    Scalar,
    /// The dense multidimensional aggregation array: cell = mixed-radix
    /// flattening of the group coordinates, one radix per grouping column
    /// (= its group dictionary size).
    Dense {
        /// Per-dimension radices.
        radices: Vec<u32>,
        /// Product of radices.
        n_cells: usize,
    },
    /// Sparse fallback: group coordinates (≤ 4 dimensions, 32 bits each)
    /// packed into a `u128` hash key.
    Hash {
        /// Packed-coordinates -> cell id.
        map: HashMap<u128, u32>,
        /// Reverse map: cell id -> packed coordinates.
        keys: Vec<u128>,
        /// Number of grouping dimensions.
        dims: usize,
    },
    /// Sparse fallback for more than 4 grouping dimensions.
    HashWide {
        /// Coordinates -> cell id.
        map: HashMap<Vec<Key>, u32>,
        /// Reverse map.
        keys: Vec<Vec<Key>>,
    },
}

impl Grouper {
    /// Builds the dense array grouper.
    ///
    /// # Panics
    /// Panics if the radix product overflows `usize` (the optimizer must
    /// prevent this by falling back to hashing).
    pub fn dense(radices: Vec<u32>) -> Self {
        let n_cells = radices
            .iter()
            .try_fold(1usize, |acc, &r| acc.checked_mul(r as usize))
            .expect("aggregation array too large; use hash fallback");
        Grouper::Dense { radices, n_cells }
    }

    /// Builds the hash fallback for `dims` grouping columns.
    pub fn hash(dims: usize) -> Self {
        if dims <= 4 {
            Grouper::Hash { map: HashMap::new(), keys: Vec::new(), dims }
        } else {
            Grouper::HashWide { map: HashMap::new(), keys: Vec::new() }
        }
    }

    /// Resolves the cell id for group coordinates, allocating it if the
    /// grouper is sparse. Coordinates must already be valid (no
    /// [`astore_storage::types::NULL_KEY`]).
    #[inline]
    pub fn cell(&mut self, coords: &[Key]) -> u32 {
        match self {
            Grouper::Scalar => 0,
            Grouper::Dense { radices, .. } => {
                debug_assert_eq!(coords.len(), radices.len());
                let mut cell = 0usize;
                for (&c, &r) in coords.iter().zip(radices.iter()) {
                    debug_assert!(c < r, "group code {c} out of radix {r}");
                    cell = cell * r as usize + c as usize;
                }
                cell as u32
            }
            Grouper::Hash { map, keys, dims } => {
                debug_assert_eq!(coords.len(), *dims);
                let mut packed = 0u128;
                for &c in coords {
                    packed = (packed << 32) | u128::from(c);
                }
                *map.entry(packed).or_insert_with(|| {
                    keys.push(packed);
                    (keys.len() - 1) as u32
                })
            }
            Grouper::HashWide { map, keys } => {
                if let Some(&c) = map.get(coords) {
                    return c;
                }
                let id = keys.len() as u32;
                keys.push(coords.to_vec());
                map.insert(coords.to_vec(), id);
                id
            }
        }
    }

    /// Current number of addressable cells.
    pub fn num_cells(&self) -> usize {
        match self {
            Grouper::Scalar => 1,
            Grouper::Dense { n_cells, .. } => *n_cells,
            Grouper::Hash { keys, .. } => keys.len(),
            Grouper::HashWide { keys, .. } => keys.len(),
        }
    }

    /// Recovers the group coordinates of a cell (for result emission).
    pub fn coords_of(&self, cell: u32) -> Vec<Key> {
        match self {
            Grouper::Scalar => Vec::new(),
            Grouper::Dense { radices, .. } => {
                let mut cell = cell as usize;
                let mut coords = vec![0 as Key; radices.len()];
                for (i, &r) in radices.iter().enumerate().rev() {
                    coords[i] = (cell % r as usize) as Key;
                    cell /= r as usize;
                }
                coords
            }
            Grouper::Hash { keys, dims, .. } => {
                let mut packed = keys[cell as usize];
                let mut coords = vec![0 as Key; *dims];
                for i in (0..*dims).rev() {
                    coords[i] = (packed & 0xFFFF_FFFF) as Key;
                    packed >>= 32;
                }
                coords
            }
            Grouper::HashWide { keys, .. } => keys[cell as usize].clone(),
        }
    }

    /// Returns `true` for the dense-array strategy.
    pub fn is_dense(&self) -> bool {
        matches!(self, Grouper::Dense { .. } | Grouper::Scalar)
    }
}

/// The accumulator state of one aggregate across all cells.
#[derive(Debug, Clone)]
pub struct AggState {
    /// The aggregate function.
    pub func: AggFunc,
    /// Sum / min / max storage.
    sum: Vec<f64>,
    /// Count storage (COUNT and AVG).
    count: Vec<u64>,
}

impl AggState {
    /// Creates the state, pre-sized to `cells` (for dense groupers; hash
    /// groupers grow on demand).
    pub fn new(func: AggFunc, cells: usize) -> Self {
        let init = Self::init_value(func);
        AggState { func, sum: vec![init; cells], count: vec![0; cells] }
    }

    fn init_value(func: AggFunc) -> f64 {
        match func {
            AggFunc::Min => f64::INFINITY,
            AggFunc::Max => f64::NEG_INFINITY,
            _ => 0.0,
        }
    }

    /// Grows to cover `cells` cells.
    pub fn ensure(&mut self, cells: usize) {
        if self.sum.len() < cells {
            self.sum.resize(cells, Self::init_value(self.func));
            self.count.resize(cells, 0);
        }
    }

    /// Folds one measure value into a cell.
    #[inline]
    pub fn update(&mut self, cell: u32, v: f64) {
        let c = cell as usize;
        match self.func {
            AggFunc::Sum => self.sum[c] += v,
            AggFunc::Count => self.count[c] += 1,
            AggFunc::Min => {
                if v < self.sum[c] {
                    self.sum[c] = v;
                }
            }
            AggFunc::Max => {
                if v > self.sum[c] {
                    self.sum[c] = v;
                }
            }
            AggFunc::Avg => {
                self.sum[c] += v;
                self.count[c] += 1;
            }
        }
    }

    /// The raw accumulator pair of a cell.
    pub fn acc(&self, cell: u32) -> (f64, u64) {
        (self.sum[cell as usize], self.count[cell as usize])
    }

    /// Merges another accumulator pair into a cell (parallel merge path).
    pub fn merge_acc(&mut self, cell: u32, acc: (f64, u64)) {
        let c = cell as usize;
        match self.func {
            AggFunc::Sum => self.sum[c] += acc.0,
            AggFunc::Count => self.count[c] += acc.1,
            AggFunc::Min => {
                if acc.0 < self.sum[c] {
                    self.sum[c] = acc.0;
                }
            }
            AggFunc::Max => {
                if acc.0 > self.sum[c] {
                    self.sum[c] = acc.0;
                }
            }
            AggFunc::Avg => {
                self.sum[c] += acc.0;
                self.count[c] += acc.1;
            }
        }
    }

    /// The final output value of a cell.
    pub fn value(&self, cell: u32) -> f64 {
        let c = cell as usize;
        match self.func {
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => self.sum[c],
            AggFunc::Count => self.count[c] as f64,
            AggFunc::Avg => {
                if self.count[c] == 0 {
                    f64::NAN
                } else {
                    self.sum[c] / self.count[c] as f64
                }
            }
        }
    }
}

/// The aggregation table: a grouper plus one [`AggState`] per output
/// aggregate plus per-cell hit counts (to emit only non-empty cells of a
/// dense array).
#[derive(Debug)]
pub struct AggTable {
    /// Cell addressing.
    pub grouper: Grouper,
    /// One state per aggregate.
    pub states: Vec<AggState>,
    hits: Vec<u64>,
}

/// One emitted group: its coordinates and per-aggregate accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCell {
    /// Group coordinates (one per grouping column).
    pub coords: Vec<Key>,
    /// Raw `(sum, count)` accumulators, one per aggregate.
    pub accs: Vec<(f64, u64)>,
    /// Number of contributing tuples.
    pub hits: u64,
}

impl AggTable {
    /// Creates an aggregation table.
    pub fn new(grouper: Grouper, funcs: &[AggFunc]) -> Self {
        let cells = if grouper.is_dense() { grouper.num_cells() } else { 0 };
        let states = funcs.iter().map(|&f| AggState::new(f, cells)).collect();
        AggTable { grouper, states, hits: vec![0; cells] }
    }

    /// Registers a tuple's group, returning its cell id. Called once per
    /// selected tuple in the grouping phase; the returned id goes into the
    /// Measure Index.
    #[inline]
    pub fn register(&mut self, coords: &[Key]) -> u32 {
        let cell = self.grouper.cell(coords);
        let needed = cell as usize + 1;
        if self.hits.len() < needed {
            self.hits.resize(needed, 0);
            for s in &mut self.states {
                s.ensure(needed);
            }
        }
        self.hits[cell as usize] += 1;
        cell
    }

    /// Folds a measure value into aggregate `agg` at `cell` (aggregation
    /// phase, driven column-wise by the Measure Index).
    #[inline]
    pub fn update(&mut self, agg: usize, cell: u32, v: f64) {
        self.states[agg].update(cell, v);
    }

    /// Direct state access for tight per-aggregate loops.
    pub fn state_mut(&mut self, agg: usize) -> &mut AggState {
        &mut self.states[agg]
    }

    /// Emits all non-empty cells.
    pub fn emit(&self) -> Vec<GroupCell> {
        let mut out = Vec::new();
        for (cell, &h) in self.hits.iter().enumerate() {
            if h == 0 {
                continue;
            }
            let cell = cell as u32;
            out.push(GroupCell {
                coords: self.grouper.coords_of(cell),
                accs: self.states.iter().map(|s| s.acc(cell)).collect(),
                hits: h,
            });
        }
        out
    }

    /// Number of non-empty groups.
    pub fn occupied(&self) -> usize {
        self.hits.iter().filter(|&&h| h > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_grouper_mixed_radix_roundtrip() {
        let mut g = Grouper::dense(vec![3, 4, 5]);
        assert_eq!(g.num_cells(), 60);
        for a in 0..3u32 {
            for b in 0..4u32 {
                for c in 0..5u32 {
                    let cell = g.cell(&[a, b, c]);
                    assert_eq!(g.coords_of(cell), vec![a, b, c]);
                }
            }
        }
    }

    #[test]
    fn dense_cells_are_unique() {
        let mut g = Grouper::dense(vec![4, 7]);
        let mut seen = std::collections::HashSet::new();
        for a in 0..4u32 {
            for b in 0..7u32 {
                assert!(seen.insert(g.cell(&[a, b])));
            }
        }
        assert_eq!(seen.len(), 28);
    }

    #[test]
    fn hash_grouper_interning_and_roundtrip() {
        let mut g = Grouper::hash(2);
        let c1 = g.cell(&[100, 2_000_000]);
        let c2 = g.cell(&[101, 2_000_000]);
        assert_ne!(c1, c2);
        assert_eq!(g.cell(&[100, 2_000_000]), c1);
        assert_eq!(g.num_cells(), 2);
        assert_eq!(g.coords_of(c1), vec![100, 2_000_000]);
        assert!(!g.is_dense());
    }

    #[test]
    fn hash_wide_grouper_for_many_dims() {
        let mut g = Grouper::hash(6);
        assert!(matches!(g, Grouper::HashWide { .. }));
        let coords = [1u32, 2, 3, 4, 5, 6];
        let c = g.cell(&coords);
        assert_eq!(g.cell(&coords), c);
        assert_eq!(g.coords_of(c), coords.to_vec());
    }

    #[test]
    fn scalar_grouper_single_cell() {
        let mut g = Grouper::Scalar;
        assert_eq!(g.cell(&[]), 0);
        assert_eq!(g.num_cells(), 1);
        assert!(g.coords_of(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn dense_overflow_panics() {
        Grouper::dense(vec![u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn agg_state_functions() {
        let mut sum = AggState::new(AggFunc::Sum, 2);
        sum.update(0, 1.5);
        sum.update(0, 2.5);
        assert_eq!(sum.value(0), 4.0);
        assert_eq!(sum.value(1), 0.0);

        let mut count = AggState::new(AggFunc::Count, 1);
        count.update(0, 99.0);
        count.update(0, -1.0);
        assert_eq!(count.value(0), 2.0);

        let mut min = AggState::new(AggFunc::Min, 1);
        min.update(0, 5.0);
        min.update(0, 3.0);
        min.update(0, 4.0);
        assert_eq!(min.value(0), 3.0);

        let mut max = AggState::new(AggFunc::Max, 1);
        max.update(0, 5.0);
        max.update(0, 8.0);
        assert_eq!(max.value(0), 8.0);

        let mut avg = AggState::new(AggFunc::Avg, 1);
        avg.update(0, 2.0);
        avg.update(0, 4.0);
        assert_eq!(avg.value(0), 3.0);
    }

    #[test]
    fn merge_acc_per_function() {
        let mut s = AggState::new(AggFunc::Min, 1);
        s.update(0, 7.0);
        s.merge_acc(0, (3.0, 1));
        assert_eq!(s.value(0), 3.0);

        let mut s = AggState::new(AggFunc::Avg, 1);
        s.update(0, 2.0);
        s.merge_acc(0, (10.0, 3));
        assert_eq!(s.value(0), 3.0); // (2+10)/(1+3)
    }

    #[test]
    fn agg_table_dense_emit_skips_empty_cells() {
        let mut t = AggTable::new(Grouper::dense(vec![2, 3]), &[AggFunc::Sum, AggFunc::Count]);
        let c1 = t.register(&[0, 1]);
        t.update(0, c1, 10.0);
        t.update(1, c1, 0.0);
        let c2 = t.register(&[1, 2]);
        t.update(0, c2, 5.0);
        t.update(1, c2, 0.0);
        let c1b = t.register(&[0, 1]);
        assert_eq!(c1, c1b);
        t.update(0, c1b, 2.0);
        t.update(1, c1b, 0.0);

        let cells = t.emit();
        assert_eq!(cells.len(), 2, "4 empty cells of 6 are skipped");
        assert_eq!(t.occupied(), 2);
        let first = cells.iter().find(|c| c.coords == vec![0, 1]).unwrap();
        assert_eq!(first.accs[0].0, 12.0);
        assert_eq!(first.hits, 2);
        assert_eq!(first.accs[1].1, 2);
    }

    #[test]
    fn agg_table_hash_grows_on_demand() {
        let mut t = AggTable::new(Grouper::hash(1), &[AggFunc::Sum]);
        for i in 0..100u32 {
            let cell = t.register(&[i * 7]);
            t.update(0, cell, f64::from(i));
        }
        assert_eq!(t.emit().len(), 100);
    }
}
