//! Predicate filters (paper §4.2).
//!
//! "A-Store applies predicate filter to eliminate repeated evaluation of
//! leaf tables. It first conducts predicate evaluation directly on the leaf
//! tables and generates a bit vector for each leaf table. … When scanning
//! the universal table, we do not lookup the leaf tables, but probe the
//! predicate vectors. … For a snowflake schema, predicate filters can be
//! generated recursively for the leaf tables on the chain. In the end, a
//! single predicate filter can be generated for the entire chain — the
//! length of a predicate filter is determined by the number of rows of the
//! first level dimension."
//!
//! [`ChainSpec`] identifies, per fact foreign-key column, the set of
//! dimension tables the query touches through it; [`build_chain_filter`]
//! folds their predicate vectors down to one bitmap over the first-level
//! dimension.

use std::collections::{HashMap, HashSet};

use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::types::NULL_KEY;

use crate::graph::JoinGraph;
use crate::query::Query;
use crate::universal::BindError;

/// The dimension chain a query touches through one fact FK column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// The fact table's AIR column this chain hangs off.
    pub fact_key_col: String,
    /// The first-level dimension (the table the AIR column points at).
    pub dim_table: String,
    /// All tables of this chain the query references (directly or as
    /// intermediate hops), excluding the root. Sorted for determinism.
    pub tables: Vec<String>,
    /// Whether any table of the chain carries a selection predicate.
    pub has_predicates: bool,
}

/// Groups the query's participating dimension tables by the fact FK column
/// through which they are reached, producing one [`ChainSpec`] per FK
/// column. Chains are returned in fact-schema column order.
pub fn participating_chains(
    graph: &JoinGraph,
    root: &str,
    query: &Query,
) -> Result<Vec<ChainSpec>, BindError> {
    // Tables the query references besides the root.
    let mut participating: HashSet<&str> = HashSet::new();
    for (t, _) in &query.selections {
        if t != root {
            participating.insert(t);
        }
    }
    for g in &query.group_by {
        if g.table != root {
            participating.insert(&g.table);
        }
    }

    // Group by first hop; collect every intermediate table along each path.
    let mut by_key_col: HashMap<String, (String, HashSet<String>)> = HashMap::new();
    for t in participating {
        let path = graph
            .path(root, t)
            .ok_or_else(|| BindError::Unreachable { root: root.into(), table: t.into() })?;
        let first = &path.steps[0];
        let entry = by_key_col
            .entry(first.key_column.clone())
            .or_insert_with(|| (first.to_table.clone(), HashSet::new()));
        for step in &path.steps {
            entry.1.insert(step.to_table.clone());
        }
    }

    // Deterministic order: fact schema column order.
    let mut chains = Vec::new();
    for (key_col, _) in graph.out_edges(root) {
        if let Some((dim_table, tables)) = by_key_col.remove(key_col) {
            let mut tables: Vec<String> = tables.into_iter().collect();
            tables.sort_unstable();
            let has_predicates = tables.iter().any(|t| query.selection_on(t).is_some());
            chains.push(ChainSpec {
                fact_key_col: key_col.clone(),
                dim_table,
                tables,
                has_predicates,
            });
        }
    }
    Ok(chains)
}

/// Builds the composed predicate filter of a chain: a bitmap over the
/// first-level dimension's slots where bit `i` = 1 iff dimension row `i`
/// is live, passes its own predicates, and transitively references rows
/// passing theirs (recursive fold, paper §4.2).
pub fn build_chain_filter(
    db: &Database,
    graph: &JoinGraph,
    query: &Query,
    chain: &ChainSpec,
) -> Bitmap {
    compose_table_filter(db, graph, query, &chain.dim_table, &chain.tables)
}

/// Computes the composed bitmap for `table`, folding in the composed bitmaps
/// of any relevant child tables it references.
fn compose_table_filter(
    db: &Database,
    graph: &JoinGraph,
    query: &Query,
    table: &str,
    relevant: &[String],
) -> Bitmap {
    let t = db.table(table).unwrap_or_else(|| panic!("no table {table:?}"));

    // Local predicate (or pure liveness when the table has none).
    let mut bm = match query.selection_on(table) {
        Some(pred) => pred.eval_bitmap(t),
        None => t.live_bitmap().clone(),
    };

    // Fold children: for each outgoing AIR edge into a relevant table,
    // recursively compose the child's filter and probe it per local row.
    for (key_col, child) in graph.out_edges(table) {
        if !relevant.contains(child) {
            continue;
        }
        let child_bm = compose_table_filter(db, graph, query, child, relevant);
        let (_, keys) =
            t.column(key_col).expect("edge column exists").as_key().expect("edge column is a key");
        // Only rows still passing need the child probe.
        let passing: Vec<usize> = bm.iter_ones().collect();
        for i in passing {
            let k = keys[i];
            if k == NULL_KEY || !child_bm.get_or_false(k as usize) {
                bm.set(i, false);
            }
        }
    }
    bm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::query::Query;
    use astore_storage::prelude::*;

    /// Star: lineorder -> {date, customer}; snowflake tail:
    /// customer -> nation -> region.
    fn db() -> Database {
        let mut db = Database::new();

        let mut region =
            Table::new("region", Schema::new(vec![ColumnDef::new("r_name", DataType::Dict)]));
        for r in ["AMERICA", "ASIA"] {
            region.append_row(&[Value::Str(r.into())]);
        }

        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                ColumnDef::new("n_name", DataType::Dict),
                ColumnDef::new("n_region", DataType::Key { target: "region".into() }),
            ]),
        );
        nation.append_row(&[Value::Str("BRAZIL".into()), Value::Key(0)]);
        nation.append_row(&[Value::Str("CHINA".into()), Value::Key(1)]);
        nation.append_row(&[Value::Str("JAPAN".into()), Value::Key(1)]);

        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Key { target: "nation".into() }),
                ColumnDef::new("c_mkt", DataType::Dict),
            ]),
        );
        customer.append_row(&[Value::Key(0), Value::Str("AUTO".into())]); // BRAZIL/AMERICA
        customer.append_row(&[Value::Key(1), Value::Str("AUTO".into())]); // CHINA/ASIA
        customer.append_row(&[Value::Key(2), Value::Str("BIKE".into())]); // JAPAN/ASIA
        customer.append_row(&[Value::Key(NULL_KEY), Value::Str("AUTO".into())]);

        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1996, 1997, 1998] {
            date.append_row(&[Value::Int(y)]);
        }

        let mut fact = Table::new(
            "lineorder",
            Schema::new(vec![
                ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
                ColumnDef::new("lo_datekey", DataType::Key { target: "date".into() }),
                ColumnDef::new("lo_revenue", DataType::I64),
            ]),
        );
        for (c, d, r) in [(0u32, 0u32, 10i64), (1, 1, 20), (2, 2, 30), (3, 0, 40)] {
            fact.append_row(&[Value::Key(c), Value::Key(d), Value::Int(r)]);
        }

        db.add_table(region);
        db.add_table(nation);
        db.add_table(customer);
        db.add_table(date);
        db.add_table(fact);
        db
    }

    #[test]
    fn chains_grouped_by_fact_key_column() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new()
            .filter("region", Pred::eq("r_name", "ASIA"))
            .filter("date", Pred::eq("d_year", 1997))
            .group("nation", "n_name");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains.len(), 2);
        // Fact schema order: lo_custkey before lo_datekey.
        assert_eq!(chains[0].fact_key_col, "lo_custkey");
        assert_eq!(chains[0].dim_table, "customer");
        assert_eq!(chains[0].tables, vec!["customer", "nation", "region"]);
        assert!(chains[0].has_predicates);
        assert_eq!(chains[1].fact_key_col, "lo_datekey");
        assert_eq!(chains[1].tables, vec!["date"]);
        assert!(chains[1].has_predicates);
    }

    #[test]
    fn chain_without_predicates_flagged() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new().group("date", "d_year");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains.len(), 1);
        assert!(!chains[0].has_predicates);
    }

    #[test]
    fn single_table_filter() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new().filter("date", Pred::eq("d_year", 1997));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        assert_eq!(bm.len(), 3);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn snowflake_filter_composes_down_the_chain() {
        let db = db();
        let g = JoinGraph::build(&db);
        // region = ASIA folds region -> nation -> customer.
        let q = Query::new().filter("region", Pred::eq("r_name", "ASIA"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains[0].dim_table, "customer");
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        // customers 1 (CHINA) and 2 (JAPAN) are in ASIA; 0 is AMERICA;
        // 3 has a NULL nation reference and must drop out.
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn local_and_folded_predicates_combine() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new()
            .filter("region", Pred::eq("r_name", "ASIA"))
            .filter("customer", Pred::eq("c_mkt", "AUTO"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        // Only customer 1 is both AUTO and in ASIA.
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn dead_dimension_rows_are_filtered() {
        let mut db = db();
        db.table_mut("customer").unwrap().delete(1);
        let g = JoinGraph::build(&db);
        let q = Query::new().filter("region", Pred::eq("r_name", "ASIA"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn intermediate_table_without_predicate_still_folds() {
        let db = db();
        let g = JoinGraph::build(&db);
        // Group by region name, no predicates anywhere: bitmap over customer
        // is just "has a complete live chain".
        let q = Query::new().group("region", "r_name");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert!(!chains[0].has_predicates);
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![0, 1, 2], "customer 3 has a NULL chain");
    }
}
