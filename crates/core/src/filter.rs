//! Predicate filters (paper §4.2).
//!
//! "A-Store applies predicate filter to eliminate repeated evaluation of
//! leaf tables. It first conducts predicate evaluation directly on the leaf
//! tables and generates a bit vector for each leaf table. … When scanning
//! the universal table, we do not lookup the leaf tables, but probe the
//! predicate vectors. … For a snowflake schema, predicate filters can be
//! generated recursively for the leaf tables on the chain. In the end, a
//! single predicate filter can be generated for the entire chain — the
//! length of a predicate filter is determined by the number of rows of the
//! first level dimension."
//!
//! [`ChainSpec`] identifies, per fact foreign-key column, the set of
//! dimension tables the query touches through it; [`build_chain_filter`]
//! folds their predicate vectors down to one bitmap over the first-level
//! dimension.

use std::collections::{HashMap, HashSet};

use astore_storage::bitmap::Bitmap;
use astore_storage::catalog::Database;
use astore_storage::types::NULL_KEY;

use crate::expr::CompiledPred;
use crate::graph::JoinGraph;
use crate::query::Query;
use crate::universal::BindError;

/// The dimension chain a query touches through one fact FK column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// The fact table's AIR column this chain hangs off.
    pub fact_key_col: String,
    /// The first-level dimension (the table the AIR column points at).
    pub dim_table: String,
    /// All tables of this chain the query references (directly or as
    /// intermediate hops), excluding the root. Sorted for determinism.
    pub tables: Vec<String>,
    /// Whether any table of the chain carries a selection predicate.
    pub has_predicates: bool,
}

/// Groups the query's participating dimension tables by the fact FK column
/// through which they are reached, producing one [`ChainSpec`] per FK
/// column. Chains are returned in fact-schema column order.
pub fn participating_chains(
    graph: &JoinGraph,
    root: &str,
    query: &Query,
) -> Result<Vec<ChainSpec>, BindError> {
    // Tables the query references besides the root.
    let mut participating: HashSet<&str> = HashSet::new();
    for (t, _) in &query.selections {
        if t != root {
            participating.insert(t);
        }
    }
    for g in &query.group_by {
        if g.table != root {
            participating.insert(&g.table);
        }
    }

    // Group by first hop; collect every intermediate table along each path.
    let mut by_key_col: HashMap<String, (String, HashSet<String>)> = HashMap::new();
    for t in participating {
        let path = graph
            .path(root, t)
            .ok_or_else(|| BindError::Unreachable { root: root.into(), table: t.into() })?;
        let first = &path.steps[0];
        let entry = by_key_col
            .entry(first.key_column.clone())
            .or_insert_with(|| (first.to_table.clone(), HashSet::new()));
        for step in &path.steps {
            entry.1.insert(step.to_table.clone());
        }
    }

    // Deterministic order: fact schema column order.
    let mut chains = Vec::new();
    for (key_col, _) in graph.out_edges(root) {
        if let Some((dim_table, tables)) = by_key_col.remove(key_col) {
            let mut tables: Vec<String> = tables.into_iter().collect();
            tables.sort_unstable();
            let has_predicates = tables.iter().any(|t| query.selection_on(t).is_some());
            chains.push(ChainSpec {
                fact_key_col: key_col.clone(),
                dim_table,
                tables,
                has_predicates,
            });
        }
    }
    Ok(chains)
}

/// Builds the composed predicate filter of a chain: a bitmap over the
/// first-level dimension's slots where bit `i` = 1 iff dimension row `i`
/// is live, passes its own predicates, and transitively references rows
/// passing theirs (recursive fold, paper §4.2).
pub fn build_chain_filter(
    db: &Database,
    graph: &JoinGraph,
    query: &Query,
    chain: &ChainSpec,
) -> Bitmap {
    compose_table_filter(db, graph, query, &chain.dim_table, &chain.tables)
}

/// Computes the composed bitmap for `table`, folding in the composed bitmaps
/// of any relevant child tables it references.
fn compose_table_filter(
    db: &Database,
    graph: &JoinGraph,
    query: &Query,
    table: &str,
    relevant: &[String],
) -> Bitmap {
    let t = db.table(table).unwrap_or_else(|| panic!("no table {table:?}"));

    // Local predicate (or pure liveness when the table has none).
    let mut bm = match query.selection_on(table) {
        Some(pred) => pred.eval_bitmap(t),
        None => t.live_bitmap().clone(),
    };

    // Fold children: for each outgoing AIR edge into a relevant table,
    // recursively compose the child's filter and probe it per local row.
    for (key_col, child) in graph.out_edges(table) {
        if !relevant.contains(child) {
            continue;
        }
        let child_bm = compose_table_filter(db, graph, query, child, relevant);
        let (_, keys) =
            t.column(key_col).expect("edge column exists").as_key().expect("edge column is a key");
        // Only rows still passing need the child probe.
        let passing: Vec<usize> = bm.iter_ones().collect();
        for i in passing {
            let k = keys[i];
            if k == NULL_KEY || !child_bm.get_or_false(k as usize) {
                bm.set(i, false);
            }
        }
    }
    bm
}

/// The inclusive logical-value range a seedable fact predicate accepts.
///
/// Derived from a [`CompiledPred`] by [`seed_range`], this is the bridge
/// between a compiled predicate and a sealed segment's [`EncodedColumn`]:
/// the range is expressed over the column's *logical* i64 domain (i32
/// widened, keys/dictionary codes as `0..=u32::MAX` with
/// [`NULL_KEY`] literally the largest), which is exactly the
/// domain the encodings preserve order over. A seeded predicate can
/// therefore be evaluated on bit-packed codes or FOR-offset words without
/// decoding.
///
/// [`EncodedColumn`]: astore_storage::encoded::EncodedColumn
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredRange {
    /// Fact-schema position of the tested column.
    pub col: usize,
    /// Smallest accepted logical value (inclusive).
    pub lo: i64,
    /// Largest accepted logical value (inclusive).
    pub hi: i64,
}

/// A compiled fact-local predicate plus its encoded-scan seed, if the
/// predicate's accepted set is one contiguous value range.
///
/// Every predicate keeps its row-wise [`CompiledPred::eval`] — the seed is
/// an *additional* capability the column-wise scan uses on sealed segments.
/// Predicates whose accepted set is not an interval (`<>`, `IN`, string
/// and float comparisons, boolean combinators) carry no seed and always
/// evaluate row-wise.
pub struct FactPred<'a> {
    /// The compiled predicate (always usable row-wise).
    pub pred: CompiledPred<'a>,
    /// The accepted value range, when the predicate is seedable.
    pub seed: Option<PredRange>,
}

impl<'a> FactPred<'a> {
    /// Wraps a compiled predicate with no encoded-scan seed.
    pub fn unseeded(pred: CompiledPred<'a>) -> Self {
        FactPred { pred, seed: None }
    }

    /// Wraps a compiled predicate over fact column `col`, deriving the
    /// seed from the compiled form (see [`seed_range`]).
    pub fn seeded(pred: CompiledPred<'a>, col: usize) -> Self {
        let seed = seed_range(&pred, col);
        FactPred { pred, seed }
    }
}

impl<'a> From<CompiledPred<'a>> for FactPred<'a> {
    fn from(pred: CompiledPred<'a>) -> Self {
        FactPred::unseeded(pred)
    }
}

/// Maps a comparison against `v` to the inclusive i64 interval it accepts.
/// `Ne` is two disjoint intervals — not seedable. `Lt i64::MIN` / `Gt
/// i64::MAX` accept nothing; rather than model the empty interval they
/// fall back to row-wise evaluation (`None`), which is just as correct and
/// keeps the kernel contract simple (`lo <= hi` always holds).
fn cmp_range(op: crate::expr::CmpOp, v: i64) -> Option<(i64, i64)> {
    use crate::expr::CmpOp::*;
    match op {
        Eq => Some((v, v)),
        Le => Some((i64::MIN, v)),
        Lt => Some((i64::MIN, v.checked_sub(1)?)),
        Ge => Some((v, i64::MAX)),
        Gt => Some((v.checked_add(1)?, i64::MAX)),
        Ne => None,
    }
}

/// Derives the encoded-scan seed for a compiled predicate over fact column
/// `col`, or `None` when the predicate is not a single contiguous range.
///
/// The derivation starts from the *compiled* predicate, not the AST, so
/// every literal-coercion quirk the compiler applied — float literals
/// truncated to integers, `BETWEEN` bounds clamped into the i32 domain,
/// strings resolved to dictionary codes — is already baked into the range.
/// Key comparisons use the raw `u32` order, under which
/// [`NULL_KEY`] (`u32::MAX`) really is the largest value; the
/// encodings preserve exactly that order.
pub fn seed_range(pred: &CompiledPred<'_>, col: usize) -> Option<PredRange> {
    let (lo, hi) = match pred {
        CompiledPred::I32Cmp { op, v, .. } => cmp_range(*op, *v as i64)?,
        CompiledPred::I32Between { lo, hi, .. } => (*lo as i64, *hi as i64),
        CompiledPred::I64Cmp { op, v, .. } => cmp_range(*op, *v)?,
        CompiledPred::I64Between { lo, hi, .. } => (*lo, *hi),
        CompiledPred::KeyCmp { op, v, .. } => cmp_range(*op, *v as i64)?,
        CompiledPred::KeyBetween { lo, hi, .. } => (*lo as i64, *hi as i64),
        // An absent dictionary value compiles to code == NULL_KEY, which the
        // seed preserves: no stored code reaches it, so nothing matches —
        // same as eval.
        CompiledPred::DictEq { code, .. } => (*code as i64, *code as i64),
        _ => return None,
    };
    (lo <= hi).then_some(PredRange { col, lo, hi })
}

/// SWAR range test over one word of bit-packed codes (paper §4.1's
/// vectorized scan, taken below word granularity).
///
/// Each lane holds a code `c < 2^(w-1)` — the packer reserves the lane's
/// top bit as a guard, always 0. For a code range `[clo, chi]` within the
/// same domain the caller builds three lane-replicated constants
/// ([`PackedRangeTest`]): `blo` adds `2^(w-1) - clo` per lane, so the
/// guard bit of the sum is set iff `c >= clo` (the per-lane sum stays
/// `< 2^w`: no carry crosses lanes); `bhi` holds `chi + 2^(w-1)` per lane,
/// so subtracting the word leaves the guard bit set iff `c <= chi` (the
/// minuend exceeds any lane value: no borrow crosses lanes); `h` masks the
/// guard bits. One add, one sub and two ANDs test every lane of the word
/// at once.
#[inline]
pub fn packed_range_mask(word: u64, blo: u64, bhi: u64, h: u64) -> u64 {
    word.wrapping_add(blo) & bhi.wrapping_sub(word) & h
}

/// [`packed_range_mask`] over a pair of adjacent words — the SSE2 wide
/// path. The SWAR constants make every 64-bit lane operation independent,
/// so a 128-bit add/sub tests two words (up to 64 codes) per instruction.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
#[allow(unsafe_code)]
#[inline]
pub fn packed_range_mask2(words: [u64; 2], blo: u64, bhi: u64, h: u64) -> [u64; 2] {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi64, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi64x, _mm_storeu_si128,
        _mm_sub_epi64,
    };
    // SAFETY: the cfg gate proves sse2 is enabled for this compilation;
    // loads/stores go through properly sized local arrays.
    unsafe {
        let w = _mm_loadu_si128(words.as_ptr() as *const __m128i);
        let ge = _mm_add_epi64(w, _mm_set1_epi64x(blo as i64));
        let le = _mm_sub_epi64(_mm_set1_epi64x(bhi as i64), w);
        let m = _mm_and_si128(_mm_and_si128(ge, le), _mm_set1_epi64x(h as i64));
        let mut out = [0u64; 2];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, m);
        out
    }
}

/// Portable fallback for targets without the SSE2 wide path: two scalar
/// SWAR tests. Same contract as the wide version, bit-for-bit.
#[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
#[inline]
pub fn packed_range_mask2(words: [u64; 2], blo: u64, bhi: u64, h: u64) -> [u64; 2] {
    [packed_range_mask(words[0], blo, bhi, h), packed_range_mask(words[1], blo, bhi, h)]
}

/// The lane-replicated SWAR constants for one (column, code-range) pair —
/// built once per segment, applied to every word.
#[derive(Debug, Clone, Copy)]
pub struct PackedRangeTest {
    /// Per-lane addend `2^(w-1) - clo`.
    pub blo: u64,
    /// Per-lane minuend `chi + 2^(w-1)`.
    pub bhi: u64,
    /// Guard-bit mask: bit `w-1` of every lane.
    pub h: u64,
    /// Lane width in bits.
    pub width: usize,
    /// Lanes per word.
    pub lanes: usize,
}

impl PackedRangeTest {
    /// Builds the constants for codes in `[clo, chi]` under lane width
    /// `width` with `lanes` lanes per word. Requires `clo <= chi <
    /// 2^(width-1)` — guaranteed by
    /// [`PackedInts::code_bounds`](astore_storage::encoded::PackedInts::code_bounds).
    pub fn new(clo: u64, chi: u64, width: usize, lanes: usize) -> Self {
        debug_assert!(clo <= chi);
        debug_assert!(chi < 1 << (width - 1));
        let half = 1u64 << (width - 1);
        let (mut blo, mut bhi, mut h) = (0u64, 0u64, 0u64);
        for lane in 0..lanes {
            let sh = lane * width;
            blo |= (half - clo) << sh;
            bhi |= (chi + half) << sh;
            h |= half << sh;
        }
        PackedRangeTest { blo, bhi, h, width, lanes }
    }

    /// Applies the test to one word.
    #[inline]
    pub fn mask(&self, word: u64) -> u64 {
        packed_range_mask(word, self.blo, self.bhi, self.h)
    }

    /// Applies the test to a word pair via the wide path.
    #[inline]
    pub fn mask2(&self, words: [u64; 2]) -> [u64; 2] {
        packed_range_mask2(words, self.blo, self.bhi, self.h)
    }

    /// Iterates the lane indices set in a result mask, ascending.
    #[inline]
    pub fn lanes_set(&self, mut mask: u64, mut f: impl FnMut(usize)) {
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize / self.width;
            mask &= mask - 1;
            f(lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::query::Query;
    use astore_storage::prelude::*;

    /// Star: lineorder -> {date, customer}; snowflake tail:
    /// customer -> nation -> region.
    fn db() -> Database {
        let mut db = Database::new();

        let mut region =
            Table::new("region", Schema::new(vec![ColumnDef::new("r_name", DataType::Dict)]));
        for r in ["AMERICA", "ASIA"] {
            region.append_row(&[Value::Str(r.into())]);
        }

        let mut nation = Table::new(
            "nation",
            Schema::new(vec![
                ColumnDef::new("n_name", DataType::Dict),
                ColumnDef::new("n_region", DataType::Key { target: "region".into() }),
            ]),
        );
        nation.append_row(&[Value::Str("BRAZIL".into()), Value::Key(0)]);
        nation.append_row(&[Value::Str("CHINA".into()), Value::Key(1)]);
        nation.append_row(&[Value::Str("JAPAN".into()), Value::Key(1)]);

        let mut customer = Table::new(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_nation", DataType::Key { target: "nation".into() }),
                ColumnDef::new("c_mkt", DataType::Dict),
            ]),
        );
        customer.append_row(&[Value::Key(0), Value::Str("AUTO".into())]); // BRAZIL/AMERICA
        customer.append_row(&[Value::Key(1), Value::Str("AUTO".into())]); // CHINA/ASIA
        customer.append_row(&[Value::Key(2), Value::Str("BIKE".into())]); // JAPAN/ASIA
        customer.append_row(&[Value::Key(NULL_KEY), Value::Str("AUTO".into())]);

        let mut date =
            Table::new("date", Schema::new(vec![ColumnDef::new("d_year", DataType::I32)]));
        for y in [1996, 1997, 1998] {
            date.append_row(&[Value::Int(y)]);
        }

        let mut fact = Table::new(
            "lineorder",
            Schema::new(vec![
                ColumnDef::new("lo_custkey", DataType::Key { target: "customer".into() }),
                ColumnDef::new("lo_datekey", DataType::Key { target: "date".into() }),
                ColumnDef::new("lo_revenue", DataType::I64),
            ]),
        );
        for (c, d, r) in [(0u32, 0u32, 10i64), (1, 1, 20), (2, 2, 30), (3, 0, 40)] {
            fact.append_row(&[Value::Key(c), Value::Key(d), Value::Int(r)]);
        }

        db.add_table(region);
        db.add_table(nation);
        db.add_table(customer);
        db.add_table(date);
        db.add_table(fact);
        db
    }

    #[test]
    fn chains_grouped_by_fact_key_column() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new()
            .filter("region", Pred::eq("r_name", "ASIA"))
            .filter("date", Pred::eq("d_year", 1997))
            .group("nation", "n_name");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains.len(), 2);
        // Fact schema order: lo_custkey before lo_datekey.
        assert_eq!(chains[0].fact_key_col, "lo_custkey");
        assert_eq!(chains[0].dim_table, "customer");
        assert_eq!(chains[0].tables, vec!["customer", "nation", "region"]);
        assert!(chains[0].has_predicates);
        assert_eq!(chains[1].fact_key_col, "lo_datekey");
        assert_eq!(chains[1].tables, vec!["date"]);
        assert!(chains[1].has_predicates);
    }

    #[test]
    fn chain_without_predicates_flagged() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new().group("date", "d_year");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains.len(), 1);
        assert!(!chains[0].has_predicates);
    }

    #[test]
    fn single_table_filter() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new().filter("date", Pred::eq("d_year", 1997));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        assert_eq!(bm.len(), 3);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn snowflake_filter_composes_down_the_chain() {
        let db = db();
        let g = JoinGraph::build(&db);
        // region = ASIA folds region -> nation -> customer.
        let q = Query::new().filter("region", Pred::eq("r_name", "ASIA"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert_eq!(chains[0].dim_table, "customer");
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        // customers 1 (CHINA) and 2 (JAPAN) are in ASIA; 0 is AMERICA;
        // 3 has a NULL nation reference and must drop out.
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn local_and_folded_predicates_combine() {
        let db = db();
        let g = JoinGraph::build(&db);
        let q = Query::new()
            .filter("region", Pred::eq("r_name", "ASIA"))
            .filter("customer", Pred::eq("c_mkt", "AUTO"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        // Only customer 1 is both AUTO and in ASIA.
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn dead_dimension_rows_are_filtered() {
        let mut db = db();
        db.table_mut("customer").unwrap().delete(1);
        let g = JoinGraph::build(&db);
        let q = Query::new().filter("region", Pred::eq("r_name", "ASIA"));
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn intermediate_table_without_predicate_still_folds() {
        let db = db();
        let g = JoinGraph::build(&db);
        // Group by region name, no predicates anywhere: bitmap over customer
        // is just "has a complete live chain".
        let q = Query::new().group("region", "r_name");
        let chains = participating_chains(&g, "lineorder", &q).unwrap();
        assert!(!chains[0].has_predicates);
        let bm = build_chain_filter(&db, &g, &q, &chains[0]);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![0, 1, 2], "customer 3 has a NULL chain");
    }

    use crate::expr::CmpOp;

    /// Oracle check: the SWAR mask agrees with per-lane comparison for
    /// every width, across both the scalar and the wide path.
    #[test]
    fn packed_range_mask_matches_per_lane_oracle() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for width in 2..=32usize {
            let lanes = 64 / width;
            let lane_max = (1u64 << (width - 1)) - 1;
            for _ in 0..8 {
                let mut a = next() % (lane_max + 1);
                let mut b = next() % (lane_max + 1);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                let t = PackedRangeTest::new(a, b, width, lanes);
                let mut words = [0u64; 2];
                let mut codes = vec![[0u64; 2]; lanes];
                for (lane, c) in codes.iter_mut().enumerate() {
                    for half in 0..2 {
                        c[half] = next() % (lane_max + 1);
                        words[half] |= c[half] << (lane * width);
                    }
                }
                let wide = t.mask2(words);
                for half in 0..2 {
                    assert_eq!(wide[half], t.mask(words[half]), "wide == scalar w={width}");
                    let mut got = vec![false; lanes];
                    t.lanes_set(wide[half], |lane| got[lane] = true);
                    for (lane, c) in codes.iter().enumerate() {
                        let want = c[half] >= a && c[half] <= b;
                        assert_eq!(got[lane], want, "w={width} lane={lane} c={}", c[half]);
                    }
                }
            }
        }
    }

    /// Seeds come from the *compiled* predicate, so literal coercions are
    /// already applied; non-interval predicates stay unseeded.
    #[test]
    fn seed_ranges_follow_compiled_semantics() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::I32),
                ColumnDef::new("b", DataType::I64),
                ColumnDef::new("k", DataType::Key { target: "t".into() }),
                ColumnDef::new("d", DataType::Dict),
                ColumnDef::new("f", DataType::F64),
            ]),
        );
        t.append_row(&[
            Value::Int(1),
            Value::Int(2),
            Value::Key(0),
            Value::Str("x".into()),
            Value::Float(1.5),
        ]);
        let seed = |p: Pred, col: usize| seed_range(&p.compile(&t), col);

        assert_eq!(
            seed(Pred::cmp("a", CmpOp::Ge, 10), 0),
            Some(PredRange { col: 0, lo: 10, hi: i64::MAX })
        );
        assert_eq!(
            seed(Pred::cmp("a", CmpOp::Lt, 10), 0),
            Some(PredRange { col: 0, lo: i64::MIN, hi: 9 })
        );
        assert_eq!(seed(Pred::between("b", 3, 7), 1), Some(PredRange { col: 1, lo: 3, hi: 7 }));
        // Float literal over an int column truncates at compile time; the
        // seed must reproduce the truncated bound, not the written one.
        let f = seed(Pred::cmp("b", CmpOp::Le, 2.9), 1).expect("seeded");
        assert_eq!((f.lo, f.hi), (i64::MIN, 2));
        // Key order treats NULL_KEY as the largest u32.
        assert_eq!(
            seed(Pred::cmp("k", CmpOp::Gt, 0), 2),
            Some(PredRange { col: 2, lo: 1, hi: i64::MAX })
        );
        // Dict equality seeds on the resolved code ("x" -> code 0); a miss
        // resolves to NULL_KEY and seeds a range no stored code reaches.
        assert_eq!(seed(Pred::eq("d", "x"), 3), Some(PredRange { col: 3, lo: 0, hi: 0 }));
        assert_eq!(
            seed(Pred::eq("d", "zzz"), 3),
            Some(PredRange { col: 3, lo: NULL_KEY as i64, hi: NULL_KEY as i64 })
        );
        // Not intervals (or not integer domains): unseeded.
        assert_eq!(seed(Pred::cmp("a", CmpOp::Ne, 1), 0), None);
        assert_eq!(seed(Pred::in_list("a", vec![1, 5]), 0), None);
        assert_eq!(seed(Pred::cmp("f", CmpOp::Lt, 2.0), 4), None);
    }
}
