//! The (small) optimizer: the two decisions the paper gives it (§4.2, §4.3)
//! plus the fan-out heuristic the multicore integration (§5) needs.
//!
//! 1. *Predicate vectors*: "An optimizer is used to decide whether to use
//!    predicate vectors, according to the row number of each table" — use a
//!    chain's composed filter only if it fits the configured cache budget.
//! 2. *Aggregation strategy*: "The optimizer of A-Store is responsible for
//!    estimating the sparsity of aggregation arrays and deciding whether to
//!    use array based or hash based aggregation."
//! 3. *Fan-out*: whether a scan is big enough to amortize spawning worker
//!    threads at all, and how many are useful for its row count. Small
//!    queries stay serial even when the caller requests parallelism.

use astore_storage::catalog::Database;

/// How grouped aggregates are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// The dense multidimensional aggregation array (§4.3).
    DenseArray,
    /// Hash-table fallback for sparse/huge group spaces.
    HashTable,
}

/// Tunables for the optimizer.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Maximum predicate-vector size, in bytes, for a chain filter to be
    /// considered cache-resident (paper §4.2 discusses LLC-sized vectors;
    /// default 16 MiB ≈ a conservative slice of a server LLC).
    pub cache_budget_bytes: usize,
    /// Maximum number of cells the dense aggregation array may have.
    pub agg_array_max_cells: usize,
    /// Minimum fill ratio (estimated groups / cells) below which the dense
    /// array is considered too sparse. 0 disables the sparsity test — the
    /// cell cap alone decides.
    pub agg_min_fill: f64,
    /// Minimum fact-table rows per worker thread before a query fans out.
    /// Below this, thread spawn + merge overhead dominates the scan itself
    /// and the executor stays serial regardless of the requested thread
    /// count. The count compared against is *post-prune* live rows, so a
    /// selective query over a huge table still stays serial when zone maps
    /// leave little to scan. The default — one full segment (65536 rows)
    /// per worker — comes from measurement: BENCH_parallel.json recorded
    /// sub-1× speedups at every thread count when sub-segment scans were
    /// allowed to fan out, because per-worker setup (predicate compilation,
    /// chain checks, partial-map allocation) exceeded the scan itself.
    pub parallel_min_rows_per_thread: usize,
    /// Upper bound the *host* puts on per-query fan-out. Worker threads
    /// beyond the machine's available parallelism only timeslice one
    /// another — they add spawn and merge overhead while scanning zero
    /// extra rows concurrently (BENCH_parallel.json measured 0.85× at 8
    /// threads on a 1-core runner before this clamp). `0` (the default)
    /// auto-detects via `std::thread::available_parallelism`; tests that
    /// need deterministic fan-out regardless of the machine set it
    /// explicitly.
    pub host_threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            cache_budget_bytes: 16 << 20,
            agg_array_max_cells: 1 << 22,
            agg_min_fill: 0.0,
            parallel_min_rows_per_thread: astore_storage::segment::SEGMENT_ROWS,
            host_threads: 0,
        }
    }
}

impl OptimizerConfig {
    /// Decides whether a chain filter over a first-level dimension of
    /// `dim_rows` rows should be materialized as a predicate vector.
    pub fn use_predicate_vector(&self, dim_rows: usize) -> bool {
        // One bit per dimension slot.
        dim_rows.div_ceil(8) <= self.cache_budget_bytes
    }

    /// Decides the aggregation strategy given the per-dimension group
    /// dictionary sizes (radices).
    pub fn agg_strategy(&self, radices: &[u32]) -> AggStrategy {
        let Some(cells) = radices.iter().try_fold(1usize, |acc, &r| acc.checked_mul(r as usize))
        else {
            return AggStrategy::HashTable;
        };
        if cells > self.agg_array_max_cells {
            return AggStrategy::HashTable;
        }
        if self.agg_min_fill > 0.0 && !radices.is_empty() {
            // Crude independence estimate: expected fill if every
            // combination were equally likely is bounded by the largest
            // single dimension.
            let max_dim = radices.iter().copied().max().unwrap_or(1) as f64;
            if max_dim / cells as f64 > 0.0 && (max_dim / cells as f64) < self.agg_min_fill {
                return AggStrategy::HashTable;
            }
        }
        AggStrategy::DenseArray
    }

    /// Decides how many worker threads a scan of `n_rows` fact rows should
    /// actually use, given the caller requested `requested`. Returns 1
    /// (serial) when the scan is too small to amortize fan-out; otherwise
    /// the requested count clamped so every worker sees at least
    /// [`OptimizerConfig::parallel_min_rows_per_thread`] rows.
    ///
    /// `n_rows` is the *effective* scan size: the executor passes the live
    /// row count of the segments surviving zone-map pruning, so a selective
    /// query that skips most of the fact table does not spawn workers for
    /// rows it will never visit. The request is first clamped to
    /// [`OptimizerConfig::host_threads`] — fan-out past the machine's
    /// physical parallelism is pure overhead.
    pub fn plan_threads(&self, n_rows: usize, requested: usize) -> usize {
        let host = if self.host_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.host_threads
        };
        let requested = requested.min(host.max(1));
        if requested <= 1 {
            return 1;
        }
        let per = self.parallel_min_rows_per_thread.max(1);
        requested.min(n_rows / per).max(1)
    }

    /// Estimated bytes of all predicate vectors a query would allocate —
    /// exposed for planning diagnostics.
    pub fn filter_bytes(&self, db: &Database, dims: &[&str]) -> usize {
        dims.iter().filter_map(|d| db.table(d)).map(|t| t.num_slots().div_ceil(8)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_vector_budget() {
        let cfg = OptimizerConfig { cache_budget_bytes: 1024, ..Default::default() };
        assert!(cfg.use_predicate_vector(8 * 1024)); // exactly 1 KiB of bits
        assert!(!cfg.use_predicate_vector(8 * 1024 + 1));
        assert!(cfg.use_predicate_vector(0));
    }

    #[test]
    fn agg_strategy_cell_cap() {
        let cfg = OptimizerConfig { agg_array_max_cells: 1000, ..Default::default() };
        assert_eq!(cfg.agg_strategy(&[10, 10]), AggStrategy::DenseArray);
        assert_eq!(cfg.agg_strategy(&[10, 10, 10]), AggStrategy::DenseArray);
        assert_eq!(cfg.agg_strategy(&[10, 101]), AggStrategy::HashTable);
        assert_eq!(cfg.agg_strategy(&[]), AggStrategy::DenseArray);
    }

    #[test]
    fn agg_strategy_overflow_is_hash() {
        let cfg = OptimizerConfig::default();
        assert_eq!(cfg.agg_strategy(&[u32::MAX, u32::MAX, u32::MAX]), AggStrategy::HashTable);
    }

    #[test]
    fn plan_threads_clamps_small_scans_to_serial() {
        // one segment (65536 rows) per worker; host_threads pinned so the
        // expectations hold on any machine (including 1-core CI).
        let cfg = OptimizerConfig { host_threads: 64, ..OptimizerConfig::default() };
        assert_eq!(cfg.plan_threads(100, 8), 1, "tiny scan stays serial");
        assert_eq!(cfg.plan_threads(65535, 4), 1, "just under one worker's quota");
        assert_eq!(cfg.plan_threads(2 << 16, 4), 2, "two workers' worth of rows");
        assert_eq!(cfg.plan_threads(1 << 20, 4), 4, "big scan gets everything");
        assert_eq!(cfg.plan_threads(1 << 20, 1), 1, "serial request is serial");
        assert_eq!(cfg.plan_threads(0, 8), 1, "empty table");
        let loose = OptimizerConfig { parallel_min_rows_per_thread: 1, ..cfg };
        assert_eq!(loose.plan_threads(3, 8), 3, "threshold 1 still caps at one row per worker");
    }

    #[test]
    fn plan_threads_never_exceeds_host_parallelism() {
        let one_core = OptimizerConfig { host_threads: 1, ..OptimizerConfig::default() };
        assert_eq!(one_core.plan_threads(1 << 24, 8), 1, "1-core host never fans out");
        let two_core = OptimizerConfig { host_threads: 2, ..OptimizerConfig::default() };
        assert_eq!(two_core.plan_threads(1 << 24, 8), 2, "request clamps to the cores");
        // host_threads = 0 auto-detects; the result is bounded by the
        // actual machine whatever it is.
        let auto = OptimizerConfig::default();
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(auto.plan_threads(1 << 24, 64) <= host);
    }

    #[test]
    fn default_budget_accommodates_common_dimensions() {
        let cfg = OptimizerConfig::default();
        // SSB SF100 customer: 3M rows -> 375 KB of bits, well within 16 MiB.
        assert!(cfg.use_predicate_vector(3_000_000));
        // A 600M-row "dimension" (a fact-sized table) would not fit 16 MiB.
        assert!(!cfg.use_predicate_vector(600_000_000));
    }
}
