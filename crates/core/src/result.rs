//! Query results: ordered rows of group labels and aggregate values.

use astore_storage::types::Value;

use crate::query::{OrderKey, SortOrder};

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (group columns, then aggregate aliases).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        QueryResult { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows by the given keys (applied in order, stable), then applies
    /// an optional limit. Unknown key names are ignored.
    pub fn order_and_limit(&mut self, keys: &[OrderKey], limit: Option<usize>) {
        let indexed: Vec<(usize, SortOrder)> = keys
            .iter()
            .filter_map(|k| self.columns.iter().position(|c| *c == k.output).map(|i| (i, k.order)))
            .collect();
        if !indexed.is_empty() {
            self.rows.sort_by(|a, b| {
                for &(i, ord) in &indexed {
                    let c = cmp_values(&a[i], &b[i]);
                    let c = match ord {
                        SortOrder::Asc => c,
                        SortOrder::Desc => c.reverse(),
                    };
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = limit {
            self.rows.truncate(n);
        }
    }

    /// A canonical form for cross-engine comparison in tests: rows sorted by
    /// every column, ascending.
    pub fn normalized(&self) -> QueryResult {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let c = cmp_values(x, y);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
        QueryResult { columns: self.columns.clone(), rows }
    }

    /// Structural equality up to row order and float rounding — the
    /// correctness oracle used by the integration tests.
    pub fn same_contents(&self, other: &QueryResult, eps: f64) -> bool {
        if self.columns != other.columns || self.rows.len() != other.rows.len() {
            return false;
        }
        let a = self.normalized();
        let b = other.normalized();
        a.rows
            .iter()
            .zip(b.rows.iter())
            .all(|(ra, rb)| ra.iter().zip(rb.iter()).all(|(x, y)| values_close(x, y, eps)))
    }

    /// Renders as an aligned text table (harness output).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(render_value).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => format!("{}", *f as i64),
        other => other.to_string(),
    }
}

/// Total order over heterogeneous values: Null < numeric < string < key.
pub fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    use Value::*;
    match (a, b) {
        (Null, Null) => Equal,
        (Null, _) => Less,
        (_, Null) => Greater,
        (Int(x), Int(y)) => x.cmp(y),
        (Float(x), Float(y)) => x.partial_cmp(y).unwrap_or(Equal),
        (Int(x), Float(y)) => (*x as f64).partial_cmp(y).unwrap_or(Equal),
        (Float(x), Int(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Equal),
        (Int(_) | Float(_), _) => Less,
        (_, Int(_) | Float(_)) => Greater,
        (Str(x), Str(y)) => x.cmp(y),
        (Str(_), Key(_)) => Less,
        (Key(_), Str(_)) => Greater,
        (Key(x), Key(y)) => x.cmp(y),
    }
}

fn values_close(a: &Value, b: &Value, eps: f64) -> bool {
    use Value::*;
    match (a, b) {
        (Float(x), Float(y)) => (x - y).abs() <= eps * (1.0 + x.abs().max(y.abs())),
        (Int(x), Float(y)) | (Float(y), Int(x)) => (*x as f64 - y).abs() <= eps * (1.0 + y.abs()),
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult {
            columns: vec!["year".into(), "revenue".into()],
            rows: vec![
                vec![Value::Int(1993), Value::Float(50.0)],
                vec![Value::Int(1992), Value::Float(100.0)],
                vec![Value::Int(1992), Value::Float(75.0)],
            ],
        }
    }

    #[test]
    fn order_asc_then_desc() {
        let mut r = result();
        r.order_and_limit(&[OrderKey::asc("year"), OrderKey::desc("revenue")], None);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1992), Value::Float(100.0)],
                vec![Value::Int(1992), Value::Float(75.0)],
                vec![Value::Int(1993), Value::Float(50.0)],
            ]
        );
    }

    #[test]
    fn limit_truncates_after_sort() {
        let mut r = result();
        r.order_and_limit(&[OrderKey::desc("revenue")], Some(1));
        assert_eq!(r.rows, vec![vec![Value::Int(1992), Value::Float(100.0)]]);
    }

    #[test]
    fn unknown_order_key_ignored() {
        let mut r = result();
        let before = r.rows.clone();
        r.order_and_limit(&[OrderKey::asc("nope")], None);
        assert_eq!(r.rows, before);
    }

    #[test]
    fn same_contents_up_to_row_order() {
        let a = result();
        let mut b = result();
        b.rows.reverse();
        assert!(a.same_contents(&b, 1e-9));
    }

    #[test]
    fn same_contents_detects_differences() {
        let a = result();
        let mut b = result();
        b.rows[0][1] = Value::Float(51.0);
        assert!(!a.same_contents(&b, 1e-9));
        let mut c = result();
        c.rows.pop();
        assert!(!a.same_contents(&c, 1e-9));
    }

    #[test]
    fn same_contents_tolerates_float_noise() {
        let a = QueryResult { columns: vec!["x".into()], rows: vec![vec![Value::Float(1.0)]] };
        let b =
            QueryResult { columns: vec!["x".into()], rows: vec![vec![Value::Float(1.0 + 1e-13)]] };
        assert!(a.same_contents(&b, 1e-9));
    }

    #[test]
    fn int_float_cross_comparison() {
        assert_eq!(cmp_values(&Value::Int(2), &Value::Float(2.0)), std::cmp::Ordering::Equal);
        assert_eq!(cmp_values(&Value::Int(1), &Value::Str("a".into())), std::cmp::Ordering::Less);
        assert_eq!(cmp_values(&Value::Null, &Value::Int(0)), std::cmp::Ordering::Less);
    }

    #[test]
    fn table_rendering_aligns_and_integers_floats() {
        let r = QueryResult {
            columns: vec!["name".into(), "v".into()],
            rows: vec![vec![Value::Str("long-name".into()), Value::Float(12.0)]],
        };
        let s = r.to_table_string();
        assert!(s.contains("long-name"));
        assert!(s.contains("12"), "{s}");
        assert!(!s.contains("12.0"), "whole floats render as integers: {s}");
    }
}
