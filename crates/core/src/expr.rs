//! Predicates and measure expressions.
//!
//! Predicates come in a small logical algebra ([`Pred`]) that is *compiled*
//! against a concrete table into [`CompiledPred`]: typed closures over
//! column slices. Compilation performs the paper's dictionary pushdown —
//! string predicates on dictionary-compressed columns are evaluated once per
//! *distinct value* and turn into code comparisons or code-bitmap probes, so
//! no `strcmp` runs inside a scan loop (§4.2).

use astore_storage::bitmap::Bitmap;
use astore_storage::column::Column;
use astore_storage::strings::StrColumn;
use astore_storage::table::Table;
use astore_storage::types::Key;

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// An unbound parameter slot (`?` / `$n` in SQL, 0-based). A query
    /// template carries these until [`crate::query::Query::bind_params`]
    /// substitutes concrete literals; the executor refuses to run a query
    /// that still contains one.
    Param(u16),
}

impl From<i64> for Lit {
    fn from(v: i64) -> Self {
        Lit::Int(v)
    }
}
impl From<i32> for Lit {
    fn from(v: i32) -> Self {
        Lit::Int(i64::from(v))
    }
}
impl From<f64> for Lit {
    fn from(v: f64) -> Self {
        Lit::Float(v)
    }
}
impl From<&str> for Lit {
    fn from(v: &str) -> Self {
        Lit::Str(v.to_owned())
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an [`Ord`] pair.
    #[inline]
    pub fn apply<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A logical predicate over the columns of one table.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `column <op> literal`.
    Cmp {
        /// Column name.
        col: String,
        /// Operator.
        op: CmpOp,
        /// Literal operand.
        lit: Lit,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        col: String,
        /// Lower bound (inclusive).
        lo: Lit,
        /// Upper bound (inclusive).
        hi: Lit,
    },
    /// `column IN (l1, l2, …)`.
    InList {
        /// Column name.
        col: String,
        /// Accepted literals.
        lits: Vec<Lit>,
    },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Constant truth (useful as a neutral element).
    Const(bool),
}

impl Pred {
    /// Convenience: `col = lit`.
    pub fn eq(col: impl Into<String>, lit: impl Into<Lit>) -> Pred {
        Pred::Cmp { col: col.into(), op: CmpOp::Eq, lit: lit.into() }
    }

    /// Convenience: `col BETWEEN lo AND hi`.
    pub fn between(col: impl Into<String>, lo: impl Into<Lit>, hi: impl Into<Lit>) -> Pred {
        Pred::Between { col: col.into(), lo: lo.into(), hi: hi.into() }
    }

    /// Convenience: comparison.
    pub fn cmp(col: impl Into<String>, op: CmpOp, lit: impl Into<Lit>) -> Pred {
        Pred::Cmp { col: col.into(), op, lit: lit.into() }
    }

    /// Convenience: membership.
    pub fn in_list<L: Into<Lit>>(col: impl Into<String>, lits: Vec<L>) -> Pred {
        Pred::InList { col: col.into(), lits: lits.into_iter().map(Into::into).collect() }
    }

    /// Splits a top-level conjunction into its conjuncts (a non-`And`
    /// predicate is its own single conjunct). The vectorized scan refines
    /// the selection vector one conjunct at a time (§4.1).
    pub fn conjuncts(&self) -> Vec<&Pred> {
        match self {
            Pred::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// Conjoins two predicates, flattening `And`s.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::Const(true), b) => b,
            (a, Pred::Const(true)) => a,
            (Pred::And(mut a), Pred::And(b)) => {
                a.extend(b);
                Pred::And(a)
            }
            (Pred::And(mut a), b) => {
                a.push(b);
                Pred::And(a)
            }
            (a, Pred::And(mut b)) => {
                b.insert(0, a);
                Pred::And(b)
            }
            (a, b) => Pred::And(vec![a, b]),
        }
    }

    /// Column names referenced by this predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Pred::Cmp { col, .. } | Pred::Between { col, .. } | Pred::InList { col, .. } => {
                out.push(col)
            }
            Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|p| p.collect_columns(out)),
            Pred::Not(p) => p.collect_columns(out),
            Pred::Const(_) => {}
        }
    }

    /// Does this predicate reference any parameter slot? Early-exits on
    /// the first one — the cheap guard the executor runs per query.
    pub fn has_params(&self) -> bool {
        let lit = |l: &Lit| matches!(l, Lit::Param(_));
        match self {
            Pred::Cmp { lit: l, .. } => lit(l),
            Pred::Between { lo, hi, .. } => lit(lo) || lit(hi),
            Pred::InList { lits, .. } => lits.iter().any(lit),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().any(Pred::has_params),
            Pred::Not(p) => p.has_params(),
            Pred::Const(_) => false,
        }
    }

    /// Parameter slots referenced by this predicate, unsorted, with
    /// duplicates (a slot may appear more than once).
    pub fn param_slots(&self) -> Vec<u16> {
        fn lit(l: &Lit, out: &mut Vec<u16>) {
            if let Lit::Param(i) = l {
                out.push(*i);
            }
        }
        fn walk(p: &Pred, out: &mut Vec<u16>) {
            match p {
                Pred::Cmp { lit: l, .. } => lit(l, out),
                Pred::Between { lo, hi, .. } => {
                    lit(lo, out);
                    lit(hi, out);
                }
                Pred::InList { lits, .. } => lits.iter().for_each(|l| lit(l, out)),
                Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|p| walk(p, out)),
                Pred::Not(p) => walk(p, out),
                Pred::Const(_) => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Substitutes every [`Lit::Param`] slot with the corresponding entry of
    /// `params`. Errors on an out-of-range slot; leaves concrete literals
    /// untouched.
    pub fn bind_params(&self, params: &[Lit]) -> Result<Pred, String> {
        let lit = |l: &Lit| -> Result<Lit, String> {
            match l {
                Lit::Param(i) => params.get(usize::from(*i)).cloned().ok_or_else(|| {
                    format!("parameter ${} has no bound value ({} given)", i + 1, params.len())
                }),
                concrete => Ok(concrete.clone()),
            }
        };
        Ok(match self {
            Pred::Cmp { col, op, lit: l } => Pred::Cmp { col: col.clone(), op: *op, lit: lit(l)? },
            Pred::Between { col, lo, hi } => {
                Pred::Between { col: col.clone(), lo: lit(lo)?, hi: lit(hi)? }
            }
            Pred::InList { col, lits } => Pred::InList {
                col: col.clone(),
                lits: lits.iter().map(&lit).collect::<Result<_, _>>()?,
            },
            Pred::And(ps) => {
                Pred::And(ps.iter().map(|p| p.bind_params(params)).collect::<Result<_, _>>()?)
            }
            Pred::Or(ps) => {
                Pred::Or(ps.iter().map(|p| p.bind_params(params)).collect::<Result<_, _>>()?)
            }
            Pred::Not(p) => Pred::Not(Box::new(p.bind_params(params)?)),
            Pred::Const(b) => Pred::Const(*b),
        })
    }

    /// Rewrites every column reference through `f` (used when rebinding a
    /// query to a denormalized table).
    pub fn map_columns(self, f: &impl Fn(&str) -> String) -> Pred {
        match self {
            Pred::Cmp { col, op, lit } => Pred::Cmp { col: f(&col), op, lit },
            Pred::Between { col, lo, hi } => Pred::Between { col: f(&col), lo, hi },
            Pred::InList { col, lits } => Pred::InList { col: f(&col), lits },
            Pred::And(ps) => Pred::And(ps.into_iter().map(|p| p.map_columns(f)).collect()),
            Pred::Or(ps) => Pred::Or(ps.into_iter().map(|p| p.map_columns(f)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.map_columns(f))),
            Pred::Const(b) => Pred::Const(b),
        }
    }

    /// Compiles the predicate against a table into an evaluable form.
    ///
    /// # Panics
    /// Panics if a referenced column is missing or a literal's type does not
    /// match its column.
    pub fn compile<'a>(&self, table: &'a Table) -> CompiledPred<'a> {
        match self {
            Pred::Const(b) => CompiledPred::Const(*b),
            Pred::And(ps) => CompiledPred::And(ps.iter().map(|p| p.compile(table)).collect()),
            Pred::Or(ps) => CompiledPred::Or(ps.iter().map(|p| p.compile(table)).collect()),
            Pred::Not(p) => CompiledPred::Not(Box::new(p.compile(table))),
            Pred::Cmp { col, op, lit } => compile_cmp(table, col, *op, lit),
            Pred::Between { col, lo, hi } => compile_between(table, col, lo, hi),
            Pred::InList { col, lits } => compile_in(table, col, lits),
        }
    }

    /// Evaluates over all live rows of a table into a bitmap (the predicate
    /// vector path, §4.2). Dead slots evaluate to `false`.
    pub fn eval_bitmap(&self, table: &Table) -> Bitmap {
        let compiled = self.compile(table);
        let n = table.num_slots();
        if table.has_deletes() {
            let live = table.live_bitmap();
            Bitmap::from_fn(n, |row| live.get(row) && compiled.eval(row))
        } else {
            Bitmap::from_fn(n, |row| compiled.eval(row))
        }
    }
}

fn col_of<'a>(table: &'a Table, name: &str) -> &'a Column {
    table.column(name).unwrap_or_else(|| panic!("no column {name:?} in table {:?}", table.name()))
}

fn int_lit(lit: &Lit, col: &str) -> i64 {
    match lit {
        Lit::Int(v) => *v,
        Lit::Float(v) => *v as i64,
        Lit::Str(_) => panic!("string literal used with numeric column {col:?}"),
        Lit::Param(i) => panic!("unbound parameter ${} compared with column {col:?}", i + 1),
    }
}

fn float_lit(lit: &Lit, col: &str) -> f64 {
    match lit {
        Lit::Int(v) => *v as f64,
        Lit::Float(v) => *v,
        Lit::Str(_) => panic!("string literal used with float column {col:?}"),
        Lit::Param(i) => panic!("unbound parameter ${} compared with column {col:?}", i + 1),
    }
}

fn str_lit<'l>(lit: &'l Lit, col: &str) -> &'l str {
    match lit {
        Lit::Str(s) => s,
        other => panic!("non-string literal {other:?} used with string column {col:?}"),
    }
}

fn compile_cmp<'a>(table: &'a Table, col: &str, op: CmpOp, lit: &Lit) -> CompiledPred<'a> {
    match col_of(table, col) {
        Column::I32(data) => {
            let v = int_lit(lit, col);
            match i32::try_from(v) {
                Ok(v) => CompiledPred::I32Cmp { data, op, v },
                // Out-of-range literal: constant-fold.
                Err(_) => CompiledPred::Const(fold_oob_cmp(op, v > 0)),
            }
        }
        Column::I64(data) => CompiledPred::I64Cmp { data, op, v: int_lit(lit, col) },
        Column::F64(data) => CompiledPred::F64Cmp { data, op, v: float_lit(lit, col) },
        Column::Key { keys, .. } => {
            let v = int_lit(lit, col);
            match Key::try_from(v) {
                Ok(v) => CompiledPred::KeyCmp { keys, op, v },
                Err(_) => CompiledPred::Const(fold_oob_cmp(op, v > 0)),
            }
        }
        Column::Dict(dict_col) => {
            let s = str_lit(lit, col);
            let dict = dict_col.dict();
            match op {
                CmpOp::Eq => {
                    CompiledPred::DictEq { codes: dict_col.codes(), code: dict.code_of(s) }
                }
                // Non-equality string ops: evaluate once per distinct value.
                _ => CompiledPred::DictSet {
                    codes: dict_col.codes(),
                    matches: dict.codes_matching(|v| op.apply(v, s)),
                },
            }
        }
        Column::Str(sc) => CompiledPred::StrCmp { col: sc, op, v: str_lit(lit, col).to_owned() },
    }
}

/// Constant folding for comparisons against out-of-range integer literals:
/// `x < HUGE` is true, `x > HUGE` is false, etc.
fn fold_oob_cmp(op: CmpOp, lit_above_range: bool) -> bool {
    match (op, lit_above_range) {
        (CmpOp::Lt | CmpOp::Le | CmpOp::Ne, true) => true,
        (CmpOp::Gt | CmpOp::Ge | CmpOp::Eq, true) => false,
        (CmpOp::Gt | CmpOp::Ge | CmpOp::Ne, false) => true,
        (CmpOp::Lt | CmpOp::Le | CmpOp::Eq, false) => false,
    }
}

fn compile_between<'a>(table: &'a Table, col: &str, lo: &Lit, hi: &Lit) -> CompiledPred<'a> {
    match col_of(table, col) {
        Column::I32(data) => {
            let lo = int_lit(lo, col).clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            let hi = int_lit(hi, col).clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            CompiledPred::I32Between { data, lo, hi }
        }
        Column::I64(data) => {
            CompiledPred::I64Between { data, lo: int_lit(lo, col), hi: int_lit(hi, col) }
        }
        Column::F64(data) => {
            CompiledPred::F64Between { data, lo: float_lit(lo, col), hi: float_lit(hi, col) }
        }
        Column::Dict(dc) => {
            let (lo, hi) = (str_lit(lo, col), str_lit(hi, col));
            CompiledPred::DictSet {
                codes: dc.codes(),
                matches: dc.dict().codes_matching(|v| v >= lo && v <= hi),
            }
        }
        Column::Str(sc) => CompiledPred::StrBetween {
            col: sc,
            lo: str_lit(lo, col).to_owned(),
            hi: str_lit(hi, col).to_owned(),
        },
        Column::Key { keys, .. } => {
            let lo = int_lit(lo, col).clamp(0, i64::from(u32::MAX)) as Key;
            let hi = int_lit(hi, col).clamp(0, i64::from(u32::MAX)) as Key;
            CompiledPred::KeyBetween { keys, lo, hi }
        }
    }
}

fn compile_in<'a>(table: &'a Table, col: &str, lits: &[Lit]) -> CompiledPred<'a> {
    match col_of(table, col) {
        Column::I32(data) => CompiledPred::I32In {
            data,
            set: lits.iter().filter_map(|l| i32::try_from(int_lit(l, col)).ok()).collect(),
        },
        Column::I64(data) => {
            CompiledPred::I64In { data, set: lits.iter().map(|l| int_lit(l, col)).collect() }
        }
        Column::Dict(dc) => {
            let wanted: Vec<&str> = lits.iter().map(|l| str_lit(l, col)).collect();
            CompiledPred::DictSet {
                codes: dc.codes(),
                matches: dc.dict().codes_matching(|v| wanted.contains(&v)),
            }
        }
        Column::Str(sc) => CompiledPred::StrIn {
            col: sc,
            set: lits.iter().map(|l| str_lit(l, col).to_owned()).collect(),
        },
        other => panic!("IN list unsupported for column type {}", other.dtype()),
    }
}

/// A predicate compiled against one table's columns. `eval(row)` is the
/// per-row test used inside scan loops.
#[derive(Debug)]
pub enum CompiledPred<'a> {
    /// Constant truth value.
    Const(bool),
    /// `i32` comparison.
    I32Cmp {
        /// Column data.
        data: &'a [i32],
        /// Operator.
        op: CmpOp,
        /// Literal.
        v: i32,
    },
    /// `i32` inclusive range.
    I32Between {
        /// Column data.
        data: &'a [i32],
        /// Lower bound.
        lo: i32,
        /// Upper bound.
        hi: i32,
    },
    /// `i32` membership (small lists: linear scan beats hashing).
    I32In {
        /// Column data.
        data: &'a [i32],
        /// Accepted values.
        set: Vec<i32>,
    },
    /// `i64` comparison.
    I64Cmp {
        /// Column data.
        data: &'a [i64],
        /// Operator.
        op: CmpOp,
        /// Literal.
        v: i64,
    },
    /// `i64` inclusive range.
    I64Between {
        /// Column data.
        data: &'a [i64],
        /// Lower bound.
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// `i64` membership.
    I64In {
        /// Column data.
        data: &'a [i64],
        /// Accepted values.
        set: Vec<i64>,
    },
    /// `f64` comparison.
    F64Cmp {
        /// Column data.
        data: &'a [f64],
        /// Operator.
        op: CmpOp,
        /// Literal.
        v: f64,
    },
    /// `f64` inclusive range.
    F64Between {
        /// Column data.
        data: &'a [f64],
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Key comparison (rare; keys are opaque positions).
    KeyCmp {
        /// Column data.
        keys: &'a [Key],
        /// Operator.
        op: CmpOp,
        /// Literal.
        v: Key,
    },
    /// Key inclusive range.
    KeyBetween {
        /// Column data.
        keys: &'a [Key],
        /// Lower bound.
        lo: Key,
        /// Upper bound.
        hi: Key,
    },
    /// Dictionary equality: one code comparison per row.
    DictEq {
        /// Code array.
        codes: &'a [Key],
        /// The matching code ([`astore_storage::types::NULL_KEY`] if the
        /// value is absent, which matches nothing).
        code: Key,
    },
    /// Dictionary set membership: the string predicate was pre-evaluated per
    /// distinct value into a bitmap over codes.
    DictSet {
        /// Code array.
        codes: &'a [Key],
        /// Bitmap over codes.
        matches: Bitmap,
    },
    /// Raw string comparison (no dictionary available).
    StrCmp {
        /// String column.
        col: &'a StrColumn,
        /// Operator.
        op: CmpOp,
        /// Literal.
        v: String,
    },
    /// Raw string inclusive range.
    StrBetween {
        /// String column.
        col: &'a StrColumn,
        /// Lower bound.
        lo: String,
        /// Upper bound.
        hi: String,
    },
    /// Raw string membership.
    StrIn {
        /// String column.
        col: &'a StrColumn,
        /// Accepted values.
        set: Vec<String>,
    },
    /// Conjunction.
    And(Vec<CompiledPred<'a>>),
    /// Disjunction.
    Or(Vec<CompiledPred<'a>>),
    /// Negation.
    Not(Box<CompiledPred<'a>>),
}

impl CompiledPred<'_> {
    /// Evaluates the predicate on one row.
    #[inline]
    pub fn eval(&self, row: usize) -> bool {
        match self {
            CompiledPred::Const(b) => *b,
            CompiledPred::I32Cmp { data, op, v } => op.apply(data[row], *v),
            CompiledPred::I32Between { data, lo, hi } => {
                let x = data[row];
                x >= *lo && x <= *hi
            }
            CompiledPred::I32In { data, set } => set.contains(&data[row]),
            CompiledPred::I64Cmp { data, op, v } => op.apply(data[row], *v),
            CompiledPred::I64Between { data, lo, hi } => {
                let x = data[row];
                x >= *lo && x <= *hi
            }
            CompiledPred::I64In { data, set } => set.contains(&data[row]),
            CompiledPred::F64Cmp { data, op, v } => op.apply(data[row], *v),
            CompiledPred::F64Between { data, lo, hi } => {
                let x = data[row];
                x >= *lo && x <= *hi
            }
            CompiledPred::KeyCmp { keys, op, v } => op.apply(keys[row], *v),
            CompiledPred::KeyBetween { keys, lo, hi } => {
                let k = keys[row];
                k >= *lo && k <= *hi
            }
            CompiledPred::DictEq { codes, code } => codes[row] == *code,
            CompiledPred::DictSet { codes, matches } => matches.get_or_false(codes[row] as usize),
            CompiledPred::StrCmp { col, op, v } => op.apply(col.get(row), v.as_str()),
            CompiledPred::StrBetween { col, lo, hi } => {
                let s = col.get(row);
                s >= lo.as_str() && s <= hi.as_str()
            }
            CompiledPred::StrIn { col, set } => {
                let s = col.get(row);
                set.iter().any(|w| w == s)
            }
            CompiledPred::And(ps) => ps.iter().all(|p| p.eval(row)),
            CompiledPred::Or(ps) => ps.iter().any(|p| p.eval(row)),
            CompiledPred::Not(p) => !p.eval(row),
        }
    }

    /// Estimated selectivity from a prefix sample of `sample` rows out of
    /// `n`. Used to order conjuncts most-selective-first (§4.1).
    pub fn sampled_selectivity(&self, n: usize, sample: usize) -> f64 {
        let take = sample.min(n);
        if take == 0 {
            return 1.0;
        }
        let hits = (0..take).filter(|&r| self.eval(r)).count();
        hits as f64 / take as f64
    }
}

/// A measure expression evaluated per selected fact tuple during the
/// aggregation phase — e.g. TPC-H Q3's `l_extendedprice * (1 - l_discount)`.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureExpr {
    /// A column of the (root) table the measure is bound against.
    Col(String),
    /// A constant.
    Const(f64),
    /// Addition.
    Add(Box<MeasureExpr>, Box<MeasureExpr>),
    /// Subtraction.
    Sub(Box<MeasureExpr>, Box<MeasureExpr>),
    /// Multiplication.
    Mul(Box<MeasureExpr>, Box<MeasureExpr>),
}

impl MeasureExpr {
    /// Convenience: a column reference.
    pub fn col(name: impl Into<String>) -> Self {
        MeasureExpr::Col(name.into())
    }

    /// Column names referenced by the expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            MeasureExpr::Col(c) => out.push(c),
            MeasureExpr::Const(_) => {}
            MeasureExpr::Add(a, b) | MeasureExpr::Sub(a, b) | MeasureExpr::Mul(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }

    /// Rewrites every column reference through `f` (denormalized rebinding).
    pub fn map_columns(self, f: &impl Fn(&str) -> String) -> MeasureExpr {
        match self {
            MeasureExpr::Col(c) => MeasureExpr::Col(f(&c)),
            MeasureExpr::Const(v) => MeasureExpr::Const(v),
            MeasureExpr::Add(a, b) => {
                MeasureExpr::Add(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            MeasureExpr::Sub(a, b) => {
                MeasureExpr::Sub(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            MeasureExpr::Mul(a, b) => {
                MeasureExpr::Mul(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
        }
    }

    /// Compiles against a table into a per-row evaluator.
    pub fn compile<'a>(&self, table: &'a Table) -> CompiledMeasure<'a> {
        match self {
            MeasureExpr::Col(c) => {
                let col = col_of(table, c);
                match col {
                    Column::I32(d) => CompiledMeasure::I32(d),
                    Column::I64(d) => CompiledMeasure::I64(d),
                    Column::F64(d) => CompiledMeasure::F64(d),
                    other => panic!("measure column {c:?} must be numeric, got {}", other.dtype()),
                }
            }
            MeasureExpr::Const(v) => CompiledMeasure::Const(*v),
            MeasureExpr::Add(a, b) => {
                CompiledMeasure::Add(Box::new(a.compile(table)), Box::new(b.compile(table)))
            }
            MeasureExpr::Sub(a, b) => {
                CompiledMeasure::Sub(Box::new(a.compile(table)), Box::new(b.compile(table)))
            }
            MeasureExpr::Mul(a, b) => {
                CompiledMeasure::Mul(Box::new(a.compile(table)), Box::new(b.compile(table)))
            }
        }
    }
}

/// A compiled measure expression.
#[derive(Debug)]
pub enum CompiledMeasure<'a> {
    /// i32 column.
    I32(&'a [i32]),
    /// i64 column.
    I64(&'a [i64]),
    /// f64 column.
    F64(&'a [f64]),
    /// Constant.
    Const(f64),
    /// Addition.
    Add(Box<CompiledMeasure<'a>>, Box<CompiledMeasure<'a>>),
    /// Subtraction.
    Sub(Box<CompiledMeasure<'a>>, Box<CompiledMeasure<'a>>),
    /// Multiplication.
    Mul(Box<CompiledMeasure<'a>>, Box<CompiledMeasure<'a>>),
}

impl CompiledMeasure<'_> {
    /// Evaluates the measure on one row.
    #[inline]
    pub fn eval(&self, row: usize) -> f64 {
        match self {
            CompiledMeasure::I32(d) => f64::from(d[row]),
            CompiledMeasure::I64(d) => d[row] as f64,
            CompiledMeasure::F64(d) => d[row],
            CompiledMeasure::Const(v) => *v,
            CompiledMeasure::Add(a, b) => a.eval(row) + b.eval(row),
            CompiledMeasure::Sub(a, b) => a.eval(row) - b.eval(row),
            CompiledMeasure::Mul(a, b) => a.eval(row) * b.eval(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astore_storage::prelude::*;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("qty", DataType::I32),
            ColumnDef::new("price", DataType::I64),
            ColumnDef::new("disc", DataType::F64),
            ColumnDef::new("region", DataType::Dict),
            ColumnDef::new("note", DataType::Str),
        ]);
        let mut t = Table::new("t", schema);
        let regions = ["ASIA", "EUROPE", "ASIA", "AMERICA", "AFRICA"];
        for i in 0..5i64 {
            t.append_row(&[
                Value::Int(i * 10),
                Value::Int(1000 + i),
                Value::Float(i as f64 / 10.0),
                Value::Str(regions[i as usize].into()),
                Value::Str(format!("note{i}")),
            ]);
        }
        t
    }

    #[test]
    fn int_comparisons() {
        let t = table();
        let p = Pred::cmp("qty", CmpOp::Ge, 20).compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![2, 3, 4]);

        let p = Pred::between("price", 1001i64, 1003i64).compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![1, 2, 3]);

        let p = Pred::in_list("qty", vec![0, 40]).compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![0, 4]);
    }

    #[test]
    fn float_comparisons() {
        let t = table();
        let p = Pred::between("disc", 0.1, 0.3).compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn dict_eq_compiles_to_code_compare() {
        let t = table();
        let p = Pred::eq("region", "ASIA").compile(&t);
        assert!(matches!(p, CompiledPred::DictEq { .. }));
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn dict_eq_missing_value_matches_nothing() {
        let t = table();
        let p = Pred::eq("region", "ATLANTIS").compile(&t);
        assert_eq!((0..5).filter(|&r| p.eval(r)).count(), 0);
    }

    #[test]
    fn dict_in_and_range_use_code_bitmaps() {
        let t = table();
        let p = Pred::in_list("region", vec!["ASIA", "AFRICA"]).compile(&t);
        assert!(matches!(p, CompiledPred::DictSet { .. }));
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![0, 2, 4]);

        let p = Pred::between("region", "AFRICA", "ASIA").compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![0, 2, 3, 4]);
    }

    #[test]
    fn raw_string_predicates() {
        let t = table();
        let p = Pred::eq("note", "note3").compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![3]);
        let p = Pred::in_list("note", vec!["note0", "note4"]).compile(&t);
        assert_eq!((0..5).filter(|&r| p.eval(r)).count(), 2);
    }

    #[test]
    fn boolean_algebra() {
        let t = table();
        let p = Pred::eq("region", "ASIA").and(Pred::cmp("qty", CmpOp::Gt, 0)).compile(&t);
        let hits: Vec<usize> = (0..5).filter(|&r| p.eval(r)).collect();
        assert_eq!(hits, vec![2]);

        let p = Pred::Or(vec![Pred::eq("qty", 0), Pred::eq("qty", 40)]).compile(&t);
        assert_eq!((0..5).filter(|&r| p.eval(r)).count(), 2);

        let p = Pred::Not(Box::new(Pred::eq("region", "ASIA"))).compile(&t);
        assert_eq!((0..5).filter(|&r| p.eval(r)).count(), 3);
    }

    #[test]
    fn conjunct_flattening() {
        let p = Pred::eq("a", 1).and(Pred::eq("b", 2)).and(Pred::eq("c", 3));
        assert_eq!(p.conjuncts().len(), 3);
        assert_eq!(Pred::Const(true).and(Pred::eq("x", 1)), Pred::eq("x", 1));
    }

    #[test]
    fn columns_listed() {
        let p = Pred::eq("a", 1).and(Pred::Or(vec![Pred::eq("b", 2), Pred::eq("a", 3)]));
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn eval_bitmap_skips_dead_rows() {
        let mut t = table();
        t.delete(2);
        let bm = Pred::eq("region", "ASIA").eval_bitmap(&t);
        let hits: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn out_of_range_literal_constant_folds() {
        let t = table();
        let p = Pred::cmp("qty", CmpOp::Lt, 1i64 << 40).compile(&t);
        assert!(matches!(p, CompiledPred::Const(true)));
        let p = Pred::cmp("qty", CmpOp::Gt, 1i64 << 40).compile(&t);
        assert!(matches!(p, CompiledPred::Const(false)));
    }

    #[test]
    fn sampled_selectivity_estimates() {
        let t = table();
        let p = Pred::cmp("qty", CmpOp::Ge, 20).compile(&t);
        let sel = p.sampled_selectivity(5, 5);
        assert!((sel - 0.6).abs() < 1e-12);
    }

    #[test]
    fn measure_expression_arithmetic() {
        let t = table();
        // price * (1 - disc)
        let m = MeasureExpr::Mul(
            Box::new(MeasureExpr::col("price")),
            Box::new(MeasureExpr::Sub(
                Box::new(MeasureExpr::Const(1.0)),
                Box::new(MeasureExpr::col("disc")),
            )),
        );
        assert_eq!(m.columns(), vec!["disc", "price"]);
        let c = m.compile(&t);
        assert!((c.eval(0) - 1000.0).abs() < 1e-9);
        assert!((c.eval(2) - 1002.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn map_columns_rewrites_references() {
        let p = Pred::eq("a", 1).and(Pred::Or(vec![
            Pred::between("b", 1, 2),
            Pred::Not(Box::new(Pred::in_list("c", vec![3]))),
        ]));
        let renamed = p.map_columns(&|c| format!("t_{c}"));
        assert_eq!(renamed.columns(), vec!["t_a", "t_b", "t_c"]);

        let m = MeasureExpr::Mul(
            Box::new(MeasureExpr::col("x")),
            Box::new(MeasureExpr::Add(
                Box::new(MeasureExpr::Const(1.0)),
                Box::new(MeasureExpr::Sub(
                    Box::new(MeasureExpr::col("y")),
                    Box::new(MeasureExpr::Const(2.0)),
                )),
            )),
        );
        assert_eq!(m.map_columns(&|c| format!("w_{c}")).columns(), vec!["w_x", "w_y"]);
    }

    #[test]
    #[should_panic(expected = "must be numeric")]
    fn measure_on_string_column_panics() {
        let t = table();
        MeasureExpr::col("note").compile(&t);
    }
}
