//! Integration test crate; see the tests/ directory.
