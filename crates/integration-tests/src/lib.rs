//! Integration test crate. The tests live in `tests/`; this library holds
//! the shared **seeded SPJGA workload generator** over the SSB schema, used
//! by both the prepared-statement differential (`prepared_differential.rs`)
//! and the zone-map/segmentation differential (`scan_pruning.rs`) so the
//! two suites exercise the exact same query space.

use astore_storage::types::Value;
use rand::rngs::SmallRng;
use rand::Rng;

/// Substitutes the n-th `?` of `template` with `params[n]` rendered as a
/// SQL literal — producing the literal-SQL twin of a parameterized query.
///
/// # Panics
/// Panics if the placeholder and parameter counts disagree, or on a
/// non-renderable parameter kind.
pub fn substitute(template: &str, params: &[Value]) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut it = params.iter();
    for c in template.chars() {
        if c == '?' {
            let v = it.next().expect("params cover placeholders");
            match v {
                Value::Int(x) => out.push_str(&x.to_string()),
                Value::Float(f) => out.push_str(&format!("{f}")),
                Value::Str(s) => out.push_str(&format!("'{}'", s.replace('\'', "''"))),
                other => panic!("unsupported literal {other:?}"),
            }
        } else {
            out.push(c);
        }
    }
    assert!(it.next().is_none(), "extra params");
    out
}

/// A generated SQL template and the parameter list for its `?` slots.
pub struct GenSql {
    /// The `?`-placeholder SQL text.
    pub template: String,
    /// One value per placeholder, in order.
    pub params: Vec<Value>,
}

impl GenSql {
    /// Pushes a `?` into the template and its value into the params.
    fn slot(&mut self, v: Value) {
        self.template.push('?');
        self.params.push(v);
    }

    /// The template with every placeholder substituted as a SQL literal.
    pub fn literal_sql(&self) -> String {
        substitute(&self.template, &self.params)
    }
}

/// One random dimension predicate (written into `g`), returning the table
/// it references so the FROM clause and join conditions cover it.
fn random_dim_pred(rng: &mut SmallRng, g: &mut GenSql) -> &'static str {
    const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    const MFGRS: [&str; 5] = ["MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"];
    const NATIONS: [&str; 6] = ["CHINA", "FRANCE", "BRAZIL", "EGYPT", "KENYA", "UNITED STATES"];
    match rng.gen_range(0..8u32) {
        0 => {
            g.template.push_str("d_year = ");
            g.slot(Value::Int(rng.gen_range(1992..=1998i64)));
            "date"
        }
        1 => {
            let lo = rng.gen_range(1992..=1997i64);
            g.template.push_str("d_year BETWEEN ");
            g.slot(Value::Int(lo));
            g.template.push_str(" AND ");
            g.slot(Value::Int(lo + rng.gen_range(0..=2i64)));
            "date"
        }
        2 => {
            g.template.push_str("d_weeknuminyear <= ");
            g.slot(Value::Int(rng.gen_range(1..=53i64)));
            "date"
        }
        3 => {
            g.template.push_str("c_region = ");
            g.slot(Value::Str(REGIONS[rng.gen_range(0..REGIONS.len())].into()));
            "customer"
        }
        4 => {
            g.template.push_str("c_nation IN (");
            g.slot(Value::Str(NATIONS[rng.gen_range(0..3usize)].into()));
            g.template.push_str(", ");
            g.slot(Value::Str(NATIONS[rng.gen_range(3..NATIONS.len())].into()));
            g.template.push(')');
            "customer"
        }
        5 => {
            g.template.push_str("s_region <> ");
            g.slot(Value::Str(REGIONS[rng.gen_range(0..REGIONS.len())].into()));
            "supplier"
        }
        6 => {
            g.template.push_str("p_mfgr = ");
            g.slot(Value::Str(MFGRS[rng.gen_range(0..MFGRS.len())].into()));
            "part"
        }
        _ => {
            let lo = rng.gen_range(1..=40i64);
            g.template.push_str("p_size BETWEEN ");
            g.slot(Value::Int(lo));
            g.template.push_str(" AND ");
            g.slot(Value::Int(lo + rng.gen_range(0..=10i64)));
            "part"
        }
    }
}

/// One random fact-local predicate, written into `g`.
fn random_fact_pred(rng: &mut SmallRng, g: &mut GenSql) {
    match rng.gen_range(0..4u32) {
        0 => {
            let lo = rng.gen_range(1..=8i64);
            g.template.push_str("lo_discount BETWEEN ");
            g.slot(Value::Int(lo));
            g.template.push_str(" AND ");
            g.slot(Value::Int(lo + 2));
        }
        1 => {
            g.template.push_str("lo_quantity < ");
            g.slot(Value::Int(rng.gen_range(5..=50i64)));
        }
        2 => {
            g.template.push_str("lo_extendedprice >= ");
            g.slot(Value::Int(rng.gen_range(100..=2000i64) * 100));
        }
        _ => {
            let lo = rng.gen_range(1..=8i64);
            g.template.push_str("(lo_discount BETWEEN ");
            g.slot(Value::Int(lo));
            g.template.push_str(" AND ");
            g.slot(Value::Int(lo + 1));
            g.template.push_str(" AND lo_quantity >= ");
            g.slot(Value::Int(rng.gen_range(1..=30i64)));
            g.template.push(')');
        }
    }
}

const JOIN_CONDS: [(&str, &str); 4] = [
    ("customer", "lo_custkey = c_custkey"),
    ("supplier", "lo_suppkey = s_suppkey"),
    ("part", "lo_partkey = p_partkey"),
    ("date", "lo_orderdate = d_datekey"),
];

const GROUPS: [(&str, &str); 7] = [
    ("date", "d_year"),
    ("date", "d_month"),
    ("customer", "c_region"),
    ("customer", "c_nation"),
    ("supplier", "s_region"),
    ("part", "p_mfgr"),
    ("lineorder", "lo_shipmode"),
];

const AGGS: [&str; 6] = [
    "sum(lo_revenue)",
    "sum(lo_extendedprice * lo_discount)",
    "sum(lo_revenue - lo_supplycost)",
    "count(*)",
    "min(lo_revenue)",
    "max(lo_extendedprice)",
];

/// A random SPJGA SQL template over the SSB schema: 0–2 dimension
/// predicates, an optional fact predicate, 0–2 group columns, 1–3
/// aggregates, optional ORDER BY/LIMIT. Every predicate literal is a `?`.
pub fn random_sql(rng: &mut SmallRng) -> GenSql {
    let mut preds = GenSql { template: String::new(), params: Vec::new() };
    let mut tables: Vec<&'static str> = vec![];
    let mut pred_texts: Vec<String> = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let t = random_dim_pred(rng, &mut preds);
        if !tables.contains(&t) {
            tables.push(t);
        }
        pred_texts.push(std::mem::take(&mut preds.template));
    }
    if rng.gen_bool(0.6) {
        random_fact_pred(rng, &mut preds);
        pred_texts.push(std::mem::take(&mut preds.template));
    }

    // Group columns (their tables must also be joined in).
    let mut group_cols: Vec<&str> = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let (t, c) = GROUPS[rng.gen_range(0..GROUPS.len())];
        if !group_cols.contains(&c) {
            group_cols.push(c);
            if t != "lineorder" && !tables.contains(&t) {
                tables.push(t);
            }
        }
    }

    // Aggregates with unique aliases.
    let mut select: Vec<String> = group_cols.iter().map(|c| (*c).to_owned()).collect();
    let n_aggs = rng.gen_range(1..=3u32);
    let mut agg_aliases = Vec::new();
    for i in 0..n_aggs {
        let alias = format!("agg{i}");
        select.push(format!("{} AS {alias}", AGGS[rng.gen_range(0..AGGS.len())]));
        agg_aliases.push(alias);
    }

    let mut sql = format!("SELECT {} FROM lineorder", select.join(", "));
    for t in &tables {
        sql.push_str(", ");
        sql.push_str(t);
    }
    let mut conjuncts: Vec<String> = JOIN_CONDS
        .iter()
        .filter(|(t, _)| tables.contains(t))
        .map(|(_, c)| (*c).to_owned())
        .collect();
    conjuncts.extend(pred_texts);
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    if !group_cols.is_empty() {
        sql.push_str(" GROUP BY ");
        sql.push_str(&group_cols.join(", "));
    }
    if rng.gen_bool(0.5) && !group_cols.is_empty() {
        sql.push_str(&format!(" ORDER BY {} DESC, {}", agg_aliases[0], group_cols.join(", ")));
        if rng.gen_bool(0.3) {
            sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..=10u32)));
        }
    }
    GenSql { template: sql, params: preds.params }
}

/// The 13 SSB queries as parameterized SQL (every predicate literal is a
/// slot), with the canonical literal bindings.
pub fn ssb_sql() -> Vec<(&'static str, &'static str, Vec<Value>)> {
    let i = Value::Int;
    let s = |v: &str| Value::Str(v.into());
    vec![
        (
            "Q1.1",
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year = ? \
               AND lo_discount BETWEEN ? AND ? AND lo_quantity < ?",
            vec![i(1993), i(1), i(3), i(25)],
        ),
        (
            "Q1.2",
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_yearmonthnum = ? \
               AND lo_discount BETWEEN ? AND ? AND lo_quantity BETWEEN ? AND ?",
            vec![i(199401), i(4), i(6), i(26), i(35)],
        ),
        (
            "Q1.3",
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_weeknuminyear = ? AND d_year = ? \
               AND lo_discount BETWEEN ? AND ? AND lo_quantity BETWEEN ? AND ?",
            vec![i(6), i(1994), i(5), i(7), i(26), i(35)],
        ),
        (
            "Q2.1",
            "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
             FROM lineorder, date, part, supplier \
             WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
               AND lo_suppkey = s_suppkey AND p_category = ? AND s_region = ? \
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
            vec![s("MFGR#12"), s("AMERICA")],
        ),
        (
            "Q2.2",
            "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
             FROM lineorder, date, part, supplier \
             WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
               AND lo_suppkey = s_suppkey AND p_brand1 BETWEEN ? AND ? AND s_region = ? \
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
            vec![s("MFGR#2221"), s("MFGR#2228"), s("ASIA")],
        ),
        (
            "Q2.3",
            "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
             FROM lineorder, date, part, supplier \
             WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
               AND lo_suppkey = s_suppkey AND p_brand1 = ? AND s_region = ? \
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
            vec![s("MFGR#2239"), s("EUROPE")],
        ),
        (
            "Q3.1",
            "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_region = ? AND s_region = ? \
               AND d_year BETWEEN ? AND ? \
             GROUP BY c_nation, s_nation, d_year ORDER BY d_year ASC, revenue DESC",
            vec![s("ASIA"), s("ASIA"), i(1992), i(1997)],
        ),
        (
            "Q3.2",
            "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_nation = ? AND s_nation = ? \
               AND d_year BETWEEN ? AND ? \
             GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
            vec![s("UNITED STATES"), s("UNITED STATES"), i(1992), i(1997)],
        ),
        (
            "Q3.3",
            "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_city IN (?, ?) AND s_city IN (?, ?) \
               AND d_year BETWEEN ? AND ? \
             GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
            vec![
                s("UNITED KI1"),
                s("UNITED KI5"),
                s("UNITED KI1"),
                s("UNITED KI5"),
                i(1992),
                i(1997),
            ],
        ),
        (
            "Q3.4",
            "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_city IN (?, ?) AND s_city IN (?, ?) \
               AND d_yearmonth = ? \
             GROUP BY c_city, s_city, d_year ORDER BY d_year ASC, revenue DESC",
            vec![s("UNITED KI1"), s("UNITED KI5"), s("UNITED KI1"), s("UNITED KI5"), s("Dec1997")],
        ),
        (
            "Q4.1",
            "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
             FROM date, customer, supplier, part, lineorder \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
               AND c_region = ? AND s_region = ? AND p_mfgr IN (?, ?) \
             GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
            vec![s("AMERICA"), s("AMERICA"), s("MFGR#1"), s("MFGR#2")],
        ),
        (
            "Q4.2",
            "SELECT d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) AS profit \
             FROM date, customer, supplier, part, lineorder \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
               AND c_region = ? AND s_region = ? AND d_year IN (?, ?) AND p_mfgr IN (?, ?) \
             GROUP BY d_year, s_nation, p_category ORDER BY d_year, s_nation, p_category",
            vec![s("AMERICA"), s("AMERICA"), i(1997), i(1998), s("MFGR#1"), s("MFGR#2")],
        ),
        (
            "Q4.3",
            "SELECT d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) AS profit \
             FROM date, customer, supplier, part, lineorder \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
               AND c_region = ? AND s_nation = ? AND d_year IN (?, ?) AND p_category = ? \
             GROUP BY d_year, s_city, p_brand1 ORDER BY d_year, s_city, p_brand1",
            vec![s("AMERICA"), s("UNITED STATES"), i(1997), i(1998), s("MFGR#14")],
        ),
    ]
}
