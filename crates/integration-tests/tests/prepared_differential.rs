//! Differential correctness of the prepared-statement pipeline: for any
//! SPJGA query, executing the *literal* SQL text must produce exactly the
//! same result as preparing its `?`-placeholder template and binding the
//! literals as parameters — on the embedded connection and over the wire.
//!
//! Coverage: all 13 SSB queries (every predicate literal parameterized)
//! plus 200 seeded random SPJGA queries over the SSB schema. The workload
//! generator lives in `astore_integration_tests` and is shared with the
//! zone-map segmentation differential (`scan_pruning.rs`).

use astore_api::{Connection, EmbeddedConnection, RemoteConnection, Row, Rows};
use astore_core::result::QueryResult;
use astore_datagen::ssb;
use astore_integration_tests::{random_sql, ssb_sql, substitute};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn to_result(rows: Rows) -> QueryResult {
    let columns = rows.columns().to_vec();
    QueryResult { columns, rows: rows.map(Row::into_values).collect() }
}

#[test]
fn all_ssb_queries_prepared_equals_literal_and_builder() {
    let db = ssb::generate(0.004, 42);
    let builder_results: Vec<(&str, QueryResult)> = ssb::queries()
        .into_iter()
        .map(|sq| {
            let out = astore_core::exec::execute(
                &db,
                &sq.query,
                &astore_core::exec::ExecOptions::default(),
            )
            .unwrap();
            (sq.id, out.result)
        })
        .collect();
    let mut conn = EmbeddedConnection::new(db);
    for ((id, template, params), (bid, builder)) in ssb_sql().iter().zip(&builder_results) {
        assert_eq!(id, bid);
        // Literal SQL text.
        let literal = conn.query(&substitute(template, params), &[]).unwrap();
        // Prepared with bound parameters.
        let stmt = conn.prepare(template).unwrap();
        assert_eq!(stmt.param_count(), params.len(), "{id}");
        let prepared = conn.query_prepared(&stmt, params).unwrap();
        let (lit, prep) = (to_result(literal), to_result(prepared));
        assert_eq!(lit, prep, "{id}: prepared != literal");
        assert!(
            prep.same_contents(builder, 1e-6),
            "{id}: SQL path != builder query\nsql: {:?}\nbuilder: {:?}",
            prep.rows.len(),
            builder.rows.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Randomized differential: 200 seeded random SPJGA queries.
// ---------------------------------------------------------------------------

#[test]
fn randomized_prepared_equals_literal_200_queries() {
    const QUERIES: usize = 200;
    let db = ssb::generate(0.002, 20260729);
    let mut conn = EmbeddedConnection::new(db);
    let mut rng = SmallRng::seed_from_u64(0xA57A11);
    let mut nonempty = 0usize;
    for qi in 0..QUERIES {
        let g = random_sql(&mut rng);
        let literal_sql = substitute(&g.template, &g.params);
        let literal = conn
            .query(&literal_sql, &[])
            .unwrap_or_else(|e| panic!("query {qi} literal failed: {e}\n{literal_sql}"));
        let stmt = conn
            .prepare(&g.template)
            .unwrap_or_else(|e| panic!("query {qi} prepare failed: {e}\n{}", g.template));
        assert_eq!(stmt.param_count(), g.params.len(), "query {qi}: {}", g.template);
        let prepared = conn
            .query_prepared(&stmt, &g.params)
            .unwrap_or_else(|e| panic!("query {qi} execute failed: {e}\n{}", g.template));
        let (lit, prep) = (to_result(literal), to_result(prepared));
        assert_eq!(lit, prep, "query {qi}: prepared != literal\n{}", g.template);
        if !lit.rows.is_empty() {
            nonempty += 1;
        }
        // Re-binding the same statement with the same params is stable.
        if qi % 20 == 0 {
            let again = to_result(conn.query_prepared(&stmt, &g.params).unwrap());
            assert_eq!(again, prep, "query {qi}: re-bind unstable");
        }
    }
    assert!(nonempty >= QUERIES / 2, "only {nonempty} queries returned rows; generator too weak");
}

#[test]
fn remote_prepared_matches_embedded_on_ssb() {
    use astore_server::{start, Engine, ServerConfig};
    use astore_storage::snapshot::SharedDatabase;
    use std::sync::Arc;

    let db = ssb::generate(0.002, 42);
    let engine = Arc::new(Engine::new(SharedDatabase::new(db.clone())));
    let server = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let mut remote = RemoteConnection::connect(server.addr()).unwrap();
    let mut embedded = EmbeddedConnection::new(db);
    for (id, template, params) in ssb_sql() {
        let rs = remote.prepare(template).unwrap();
        let es = embedded.prepare(template).unwrap();
        assert_eq!(rs.param_count(), es.param_count(), "{id}");
        assert_eq!(rs.columns(), es.columns(), "{id}");
        let r = to_result(remote.query_prepared(&rs, &params).unwrap());
        let e = to_result(embedded.query_prepared(&es, &params).unwrap());
        assert!(
            r.same_contents(&e, 1e-6),
            "{id}: remote != embedded ({} vs {} rows)",
            r.rows.len(),
            e.rows.len()
        );
    }
    server.shutdown();
}

/// A pipelined `query_prepared_many` batch (all execute frames in one
/// write burst, responses read back in order) returns exactly what the
/// same executions produce one round-trip at a time.
#[test]
fn pipelined_batch_matches_sequential_execution() {
    use astore_server::{start, Engine, ServerConfig};
    use astore_storage::snapshot::SharedDatabase;
    use astore_storage::types::Value;
    use std::sync::Arc;

    let db = ssb::generate(0.002, 42);
    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    let server = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let mut remote = RemoteConnection::connect(server.addr()).unwrap();
    let stmt = remote
        .prepare(
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year = ? AND lo_discount BETWEEN ? AND ?",
        )
        .unwrap();
    let years = [1992i64, 1993, 1994, 1995, 1996, 1997, 1998];
    let sets: Vec<Vec<Value>> =
        years.iter().map(|y| vec![Value::Int(*y), Value::Int(1), Value::Int(3)]).collect();
    let set_refs: Vec<&[Value]> = sets.iter().map(Vec::as_slice).collect();
    let batched = remote.query_prepared_many(&stmt, &set_refs).unwrap();
    assert_eq!(batched.len(), years.len());
    for (params, rows) in sets.iter().zip(batched) {
        let sequential = to_result(remote.query_prepared(&stmt, params).unwrap());
        assert_eq!(to_result(rows), sequential, "pipelined != sequential for {params:?}");
    }
    server.shutdown();
}
