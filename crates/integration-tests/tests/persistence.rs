//! Crash-recovery and snapshot-durability tests.
//!
//! Three layers of paranoia:
//!
//! 1. **Kill-at-any-byte WAL recovery** — a WAL of random committed writes
//!    is cut at *every* byte boundary and bit-flipped at every byte;
//!    recovery must always yield exactly the state after some prefix of the
//!    committed statements, never panic, and never expose a torn row
//!    (a multi-column invariant violated mid-statement).
//! 2. **Snapshot round-trips** — SSB at SF 0.01 saved and reloaded must
//!    answer all 13 SSB queries bit-identically to the in-memory original.
//! 3. **Golden snapshot** — a checked-in fixture pins the version-1 byte
//!    layout; any silent format drift fails the suite until the version is
//!    bumped (regenerate with `ASTORE_BLESS_GOLDEN=1`).

use std::path::PathBuf;

use astore_core::prelude::*;
use astore_datagen::ssb;
use astore_persist::snapshot::{encode_snapshot, load_snapshot, save_snapshot};
use astore_persist::wal::scan_wal;
use astore_persist::{apply_statement, store};
use astore_sql::statement::parse_statement;
use astore_storage::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("astore-it-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Full structural equality of two databases: schemas, slots, live bitmaps,
/// free lists and every slot's contents (dead slots included — recovery must
/// reproduce the exact array-family layout, not just the live rows).
fn assert_identical(a: &Database, b: &Database, ctx: &str) {
    assert_eq!(a.table_names(), b.table_names(), "{ctx}: table set");
    for name in a.table_names() {
        let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
        assert_eq!(ta.schema().defs(), tb.schema().defs(), "{ctx}: {name} schema");
        assert_eq!(ta.num_slots(), tb.num_slots(), "{ctx}: {name} slots");
        assert_eq!(ta.live_bitmap(), tb.live_bitmap(), "{ctx}: {name} live bitmap");
        assert_eq!(ta.free_slots(), tb.free_slots(), "{ctx}: {name} free list");
        for row in 0..ta.num_slots() as RowId {
            assert_eq!(ta.row(row), tb.row(row), "{ctx}: {name}[{row}]");
        }
    }
}

/// The crash-test schema: a dimension plus a fact whose rows carry the
/// invariant `b == 2 * a` — a torn (partially applied) multi-column write
/// would break it.
fn crash_seed() -> Database {
    let mut dim = Table::new("dim", Schema::new(vec![ColumnDef::new("d_v", DataType::I32)]));
    for v in 0..4 {
        dim.append_row(&[Value::Int(v)]);
    }
    let mut pair = Table::new(
        "pair",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Key { target: "dim".into() }),
            ColumnDef::new("a", DataType::I64),
            ColumnDef::new("b", DataType::I64),
        ]),
    );
    for i in 0..4i64 {
        pair.append_row(&[Value::Key((i % 4) as u32), Value::Int(i), Value::Int(2 * i)]);
    }
    let mut db = Database::new();
    db.add_table(dim);
    db.add_table(pair);
    db
}

/// A random committed write against the crash schema, always preserving the
/// `b == 2a` invariant *per statement* (multi-row inserts and multi-column
/// updates are atomic, so only whole-statement application may ever show).
fn random_stmt(rng: &mut SmallRng, db: &Database) -> String {
    let pair = db.table("pair").unwrap();
    let live: Vec<RowId> = (0..pair.num_slots() as RowId).filter(|&r| pair.is_live(r)).collect();
    match rng.gen_range(0..10u32) {
        // Multi-row insert (1–3 rows).
        0..=4 => {
            let n = rng.gen_range(1..=3u32);
            let rows: Vec<String> = (0..n)
                .map(|_| {
                    let k = rng.gen_range(0..4u32);
                    let a = rng.gen_range(-1000..1000i64);
                    format!("({k}, {a}, {})", 2 * a)
                })
                .collect();
            format!("INSERT INTO pair VALUES {}", rows.join(", "))
        }
        // Multi-column update keeping the invariant.
        5..=7 if !live.is_empty() => {
            let row = live[rng.gen_range(0..live.len())];
            let a = rng.gen_range(-1000..1000i64);
            format!("UPDATE pair SET a = {a}, b = {} WHERE rowid = {row}", 2 * a)
        }
        // Delete (keep at least one live row so updates stay possible).
        _ if live.len() > 1 => {
            let row = live[rng.gen_range(0..live.len())];
            format!("DELETE FROM pair WHERE rowid = {row}")
        }
        _ => "INSERT INTO pair VALUES (0, 1, 2)".into(),
    }
}

fn check_invariant(db: &Database, ctx: &str) {
    let pair = db.table("pair").unwrap();
    for row in 0..pair.num_slots() as RowId {
        if !pair.is_live(row) {
            continue;
        }
        let vals = pair.row(row);
        let (Value::Int(a), Value::Int(b)) = (&vals[1], &vals[2]) else {
            panic!("{ctx}: unexpected types in pair[{row}]: {vals:?}");
        };
        assert_eq!(*b, 2 * a, "{ctx}: torn row pair[{row}]");
    }
}

/// Builds the crash fixture: a bootstrapped data dir with `N` random
/// committed statements in the WAL, plus the expected database state after
/// every statement prefix (`states[k]` = state after `k` statements).
fn crash_fixture(dir: &PathBuf, n: usize, seed: u64) -> (Vec<Database>, Vec<u8>) {
    let mut db = crash_seed();
    let mut wal = store::bootstrap(dir, &db).unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut states = vec![db.clone()];
    for _ in 0..n {
        let sql = random_stmt(&mut rng, &db);
        let stmt = parse_statement(&sql).unwrap();
        apply_statement(&mut db, &stmt).unwrap();
        wal.append(&sql).unwrap();
        states.push(db.clone());
    }
    drop(wal);
    let wal_bytes = std::fs::read(store::wal_path(dir)).unwrap();
    (states, wal_bytes)
}

#[test]
fn kill_at_every_byte_boundary_recovers_a_committed_prefix() {
    const N: usize = 30;
    let dir = tmpdir("killbyte");
    let (states, wal_bytes) = crash_fixture(&dir, N, 0xC4A5);
    let wal_file = store::wal_path(&dir);

    // Cut the WAL at every byte boundary — including mid-header, mid-length,
    // mid-CRC and mid-payload of every record — and recover each time.
    for cut in 0..=wal_bytes.len() {
        std::fs::write(&wal_file, &wal_bytes[..cut]).unwrap();
        let rec = store::open(&dir)
            .unwrap_or_else(|e| panic!("recovery must not fail at cut {cut}: {e}"));
        let k = rec.replayed;
        assert!(k <= N, "cut {cut}: replayed {k} > {N} committed");
        assert_identical(&states[k], &rec.db, &format!("cut {cut} (prefix {k})"));
        check_invariant(&rec.db, &format!("cut {cut}"));
        // Monotonicity: cutting at the full length yields everything.
        if cut == wal_bytes.len() {
            assert_eq!(k, N, "full WAL replays every committed statement");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupting_any_single_byte_recovers_a_committed_prefix() {
    const N: usize = 20;
    let dir = tmpdir("flipbyte");
    let (states, wal_bytes) = crash_fixture(&dir, N, 0xF11F);
    let wal_file = store::wal_path(&dir);

    for i in 0..wal_bytes.len() {
        let mut bad = wal_bytes.clone();
        bad[i] ^= 0x20;
        std::fs::write(&wal_file, &bad).unwrap();
        let rec = store::open(&dir)
            .unwrap_or_else(|e| panic!("recovery must not fail with byte {i} flipped: {e}"));
        let k = rec.replayed;
        assert!(k <= N, "flip {i}: replayed too much");
        assert_identical(&states[k], &rec.db, &format!("flip at byte {i} (prefix {k})"));
        check_invariant(&rec.db, &format!("flip {i}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crc_flip_drops_exactly_the_damaged_record() {
    const N: usize = 12;
    let dir = tmpdir("crcflip");
    let (states, wal_bytes) = crash_fixture(&dir, N, 0xCCCC);
    let wal_file = store::wal_path(&dir);

    // Locate the last record's CRC field: scan the intact file, then the
    // committed length of the N-1 prefix is where the last frame starts.
    let full = scan_wal(&wal_bytes);
    assert_eq!(full.records.len(), N);
    let mut cut = wal_bytes.len();
    while scan_wal(&wal_bytes[..cut - 1]).records.len() == N {
        cut -= 1;
    }
    let last_frame_start = {
        // Walk back to the frame boundary: committed_len of a scan that saw
        // one record fewer.
        let s = scan_wal(&wal_bytes[..cut - 1]);
        assert_eq!(s.records.len(), N - 1);
        s.committed_len
    };
    // Bytes 4..8 of a frame are its CRC.
    let mut bad = wal_bytes.clone();
    bad[last_frame_start + 5] ^= 0xFF;
    std::fs::write(&wal_file, &bad).unwrap();
    let rec = store::open(&dir).unwrap();
    assert_eq!(rec.replayed, N - 1, "exactly the CRC-damaged record is dropped");
    assert!(rec.truncated_tail);
    assert_identical(&states[N - 1], &rec.db, "crc flip");
    // The truncation is persistent: a second recovery sees a clean log.
    let rec2 = store::open(&dir).unwrap();
    assert_eq!(rec2.replayed, N - 1);
    assert!(!rec2.truncated_tail);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ssb_snapshot_roundtrip_is_query_equivalent_for_all_13_queries() {
    let dir = tmpdir("ssb-roundtrip");
    let db = ssb::generate(0.01, 42);
    let path = dir.join("ssb.snapshot");
    save_snapshot(&db, &path).unwrap();
    let reloaded = load_snapshot(&path).unwrap();

    for sq in ssb::queries() {
        let mem = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let disk = execute(&reloaded, &sq.query, &ExecOptions::default()).unwrap();
        // Zero tolerance: identical bytes in, bit-identical results out.
        assert!(
            mem.result.same_contents(&disk.result, 0.0),
            "{}: reloaded database answers differently",
            sq.id
        );
        assert_eq!(mem.result.rows.len(), disk.result.rows.len(), "{}", sq.id);
    }
    // And the byte encoding itself is stable under re-save.
    let again = encode_snapshot(&reloaded, 0);
    assert_eq!(std::fs::read(&path).unwrap(), again, "save→load→save must be byte-stable");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_roundtrip_preserves_dirty_state() {
    // Deletes, slot reuse and in-place updates must survive, not just
    // bulk-loaded data.
    let dir = tmpdir("dirty");
    let mut db = ssb::generate(0.002, 7);
    {
        let lo = db.table_mut("lineorder").unwrap();
        let n = lo.num_slots();
        for i in (0..n).step_by(13) {
            lo.delete(i as RowId);
        }
    }
    let template = db.table("lineorder").unwrap().row(1);
    db.table_mut("lineorder").unwrap().insert(&template); // reuses a slot
    db.table_mut("lineorder").unwrap().update(1, "lo_revenue", &Value::Int(123_456));

    let path = dir.join("dirty.snapshot");
    save_snapshot(&db, &path).unwrap();
    let reloaded = load_snapshot(&path).unwrap();
    assert_identical(&db, &reloaded, "dirty state");

    // Same next-insert behaviour on both sides (free lists preserved).
    let mut a = db;
    let mut b = reloaded;
    let ra = a.table_mut("lineorder").unwrap().insert(&template);
    let rb = b.table_mut("lineorder").unwrap().insert(&template);
    assert_eq!(ra, rb, "slot reuse must match after reload");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Golden snapshot: pins the version-1 byte layout.
// ---------------------------------------------------------------------------

/// A deliberately small database touching every column kind, a dead slot, a
/// free-list entry, a NULL key and a dynamically-interned dictionary.
fn golden_database() -> Database {
    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            ColumnDef::new("d_tag", DataType::Dict),
            ColumnDef::new("d_note", DataType::Str),
            ColumnDef::new("d_rank", DataType::I32),
        ]),
    );
    for (tag, note, rank) in
        [("zulu", "first", 3), ("alpha", "secönd", -1), ("mike", "", 7), ("alpha", "x", 0)]
    {
        dim.append_row(&[Value::Str(tag.into()), Value::Str(note.into()), Value::Int(rank)]);
    }
    dim.delete(2);
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_dim", DataType::Key { target: "dim".into() }),
            ColumnDef::new("f_qty", DataType::I64),
            ColumnDef::new("f_price", DataType::F64),
        ]),
    );
    fact.append_row(&[Value::Key(0), Value::Int(10), Value::Float(1.25)]);
    fact.append_row(&[Value::Key(NULL_KEY), Value::Int(-3), Value::Float(-0.0)]);
    fact.append_row(&[Value::Key(3), Value::Int(1 << 40), Value::Float(2.5e-10)]);
    // Sealed, so the v3 golden exercises the encoded segment blocks
    // (packed dict codes, packed i32, packed keys with a NULL) alongside
    // raw fallbacks (strings, floats, the unpackable i64 span). The rows
    // themselves are frozen history — the v1/v2 fixtures decode to this
    // exact database, and their encoders ignore seals.
    dim.seal_segments();
    fact.seal_segments();
    let mut db = Database::new();
    db.add_table(dim);
    db.add_table(fact);
    db
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(format!("golden-v{}.snapshot", astore_persist::SNAPSHOT_VERSION))
}

#[test]
fn golden_snapshot_file_pins_the_format() {
    let expected = encode_snapshot(&golden_database(), 7);
    let path = golden_path();
    if std::env::var_os("ASTORE_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &expected).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), expected.len());
    }
    let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "golden snapshot {} missing ({e}); if the format version was \
             bumped intentionally, regenerate it with ASTORE_BLESS_GOLDEN=1",
            path.display()
        )
    });
    // Writing today's encoder output must reproduce the checked-in bytes …
    assert_eq!(
        on_disk, expected,
        "snapshot byte layout drifted from the checked-in golden file: \
         bump SNAPSHOT_VERSION and re-bless instead of silently changing \
         a released format"
    );
    // … and reading the checked-in bytes must reproduce the database.
    let (db, lsn) = astore_persist::snapshot::decode_snapshot(&on_disk).unwrap();
    assert_eq!(lsn, 7);
    assert_identical(&golden_database(), &db, "golden decode");
}

// ---------------------------------------------------------------------------
// Backward compatibility: version-1 files keep loading after the v2 bump.
// ---------------------------------------------------------------------------

fn testdata_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata").join(name)
}

#[test]
fn checked_in_v1_golden_still_loads() {
    // The v1 fixture is frozen history: it must decode forever, and the
    // legacy encoder must keep reproducing it byte for byte.
    let on_disk = std::fs::read(testdata_path("golden-v1.snapshot")).unwrap();
    let (db, lsn) = astore_persist::snapshot::decode_snapshot(&on_disk).unwrap();
    assert_eq!(lsn, 7);
    assert_identical(&golden_database(), &db, "v1 golden decode");
    assert_eq!(
        astore_persist::snapshot::encode_snapshot_v1(&golden_database(), 7),
        on_disk,
        "legacy v1 encoder drifted from the checked-in v1 bytes"
    );
}

#[test]
fn checked_in_v2_golden_still_loads() {
    // The v2 fixture (raw segmented columns, no encodings) is likewise
    // frozen: the v3 reader must keep decoding it, and the frozen v2
    // encoder must keep reproducing it byte for byte.
    let on_disk = std::fs::read(testdata_path("golden-v2.snapshot")).unwrap();
    let (db, lsn) = astore_persist::snapshot::decode_snapshot(&on_disk).unwrap();
    assert_eq!(lsn, 7);
    assert_identical(&golden_database(), &db, "v2 golden decode");
    // v2 carries no segment encodings: tables come up unsealed.
    for name in db.table_names() {
        let t = db.table(name).unwrap();
        assert!(t.encodings().iter().all(Option::is_none), "{name}: v2 load must be unsealed");
    }
    assert_eq!(
        astore_persist::snapshot::encode_snapshot_v2(&golden_database(), 7),
        on_disk,
        "frozen v2 encoder drifted from the checked-in v2 bytes"
    );
}

#[test]
fn checked_in_v1_ssb_snapshot_answers_all_13_queries_bit_identically() {
    // An SSB database frozen in the version-1 format. Loading it rebuilds
    // zone maps from scratch; the segmented engine must then answer every
    // SSB query bit-identically to the pre-segmentation flat scan, and a
    // re-save in today's v3 format (sealed, so segments persist encoded)
    // must round-trip to the same answers.
    let path = testdata_path("golden-ssb-v1.snapshot");
    if std::env::var_os("ASTORE_BLESS_GOLDEN").is_some() {
        let db = ssb::generate(0.001, 42);
        let bytes = astore_persist::snapshot::encode_snapshot_v1(&db, 0);
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), bytes.len());
    }
    let mut db = load_snapshot(&path).unwrap();
    // Fine-grained segments so the 6K-row fixture actually has zones to
    // prune (the default 64K segment would make pruning trivially void).
    db.table_mut("lineorder").unwrap().set_segment_rows(512);
    db.table_mut("lineorder").unwrap().seal_segments();

    let dir = tmpdir("ssb-v1-compat");
    let v3_path = dir.join("resaved-v3.snapshot");
    save_snapshot(&db, &v3_path).unwrap();
    let reloaded = load_snapshot(&v3_path).unwrap();
    assert!(
        reloaded
            .table("lineorder")
            .unwrap()
            .encodings()
            .iter()
            .any(|e| e.as_ref().is_some_and(|e| e.encoded_cols() > 0)),
        "resaved SSB snapshot must carry encoded segments"
    );

    let mut q1_pruned = 0usize;
    for sq in ssb::queries() {
        let flat = execute(&db, &sq.query, &ExecOptions::default().pruning(false)).unwrap();
        let segmented = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        assert!(
            segmented.result.same_contents(&flat.result, 0.0),
            "{}: segmented scan over the v1-loaded database diverged",
            sq.id
        );
        let warm = execute(&reloaded, &sq.query, &ExecOptions::default()).unwrap();
        assert!(
            warm.result.same_contents(&flat.result, 0.0),
            "{}: v2 round trip answers differently",
            sq.id
        );
        assert_eq!(
            segmented.plan.segments_pruned, warm.plan.segments_pruned,
            "{}: persisted zone maps must prune like rebuilt ones",
            sq.id
        );
        if sq.id.starts_with("Q1") {
            q1_pruned += segmented.plan.segments_pruned;
        }
    }
    assert!(q1_pruned > 0, "date-selective Q1.x must skip segments of the date-clustered fixture");
    std::fs::remove_dir_all(&dir).unwrap();
}
