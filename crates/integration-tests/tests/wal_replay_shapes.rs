//! WAL replay property test: every write *shape* the serving layer
//! accepts — literal text, mixed-case text, prepared statements with bound
//! params, and parameterized-rowid updates/deletes — must land in the log
//! in a form that kill-and-recover replays to the byte-identical database.
//!
//! The fixture's tables are sealed into encoded segments before bootstrap,
//! so replay runs against a v3 snapshot: writes unseal the segments they
//! touch (deletes don't — liveness lives in the bitmap), and a mid-test
//! checkpoint re-seals and re-encodes, proving the lifecycle survives the
//! durability loop, not just a single image.
//!
//! Deletes target the fact table only: `apply` refuses deletes on an
//! AIR-referenced dimension (dangling keys), and so does this generator.

use astore_persist::store;
use astore_server::json::Json;
use astore_server::{Durability, Engine, StatementRegistry};
use astore_storage::catalog::Database;
use astore_storage::prelude::*;
use astore_storage::table::{ColumnDef, Schema, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_identical(a: &Database, b: &Database, ctx: &str) {
    assert_eq!(a.table_names(), b.table_names(), "{ctx}: table set");
    for name in a.table_names() {
        let (ta, tb) = (a.table(name).unwrap(), b.table(name).unwrap());
        assert_eq!(ta.num_slots(), tb.num_slots(), "{ctx}: {name} slots");
        assert_eq!(ta.live_bitmap(), tb.live_bitmap(), "{ctx}: {name} live bitmap");
        assert_eq!(ta.free_slots(), tb.free_slots(), "{ctx}: {name} free list");
        for row in 0..ta.num_slots() as RowId {
            assert_eq!(ta.row(row), tb.row(row), "{ctx}: {name}[{row}]");
        }
    }
}

/// A dim + fact star, fact re-chunked into small segments and sealed so
/// the bootstrap snapshot carries encoded (v3) segments.
fn sealed_fixture() -> Database {
    let mut dim = Table::new(
        "dim",
        Schema::new(vec![
            ColumnDef::new("d_name", DataType::Str),
            ColumnDef::new("d_cat", DataType::I64),
        ]),
    );
    for i in 0..8i64 {
        dim.append_row(&[Value::Str(format!("d{i}")), Value::Int(i % 3)]);
    }
    dim.seal_segments();
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_d", DataType::Key { target: "dim".into() }),
            ColumnDef::new("f_v", DataType::I64),
            ColumnDef::new("f_q", DataType::I32),
        ]),
    );
    // 16 segments of 512 rows: enough that a phase of random writes
    // leaves some segments untouched (their encodings must survive).
    for i in 0..8192u32 {
        fact.append_row(&[
            Value::Key(i % 8),
            Value::Int(i64::from(1000 + i % 97)),
            Value::Int(i64::from(i % 50)),
        ]);
    }
    fact.set_segment_rows(512);
    fact.seal_segments();
    assert!(
        fact.encodings().iter().all(|e| e.as_ref().is_some_and(|e| e.encoded_cols() > 0)),
        "fixture fact table must start fully encoded"
    );
    let mut db = Database::new();
    db.add_table(dim);
    db.add_table(fact);
    db
}

/// Sends one frame and asserts it succeeded.
fn ok(e: &Engine, session: &mut StatementRegistry, line: &str) {
    let r = e.handle_line_session(line, session);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{line}: {r:?}");
}

/// Prepares `sql` and returns the statement id.
fn prep(e: &Engine, session: &mut StatementRegistry, sql: &str) -> i64 {
    let r = e.handle_line_session(&format!("{{\"prepare\":{:?}}}", sql), session);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{sql}: {r:?}");
    r.get("stmt_id").and_then(Json::as_i64).unwrap()
}

/// A random live fact rowid under the engine's current snapshot.
fn live_row(e: &Engine, rng: &mut SmallRng) -> u32 {
    let snap = e.database().snapshot();
    let t = snap.table("fact").unwrap();
    let n = t.num_slots() as u32;
    loop {
        let r = rng.gen_range(0..n);
        if t.is_live(r) {
            return r;
        }
    }
}

/// Random keyword-casing of an SQL string: the parser (and the WAL
/// canonicalizer behind it) must be case-insensitive on keywords.
fn mix_case(sql: &str, rng: &mut SmallRng) -> String {
    sql.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() && rng.gen_bool(0.5) {
                if c.is_ascii_uppercase() {
                    c.to_ascii_lowercase()
                } else {
                    c.to_ascii_uppercase()
                }
            } else {
                c
            }
        })
        .collect()
}

/// Applies `n` random writes through every shape the protocol accepts.
fn random_writes(e: &Engine, session: &mut StatementRegistry, rng: &mut SmallRng, n: usize) {
    let ins = prep(e, session, "INSERT INTO fact VALUES (?, ?, ?)");
    let upd = prep(e, session, "UPDATE fact SET f_v = ? WHERE rowid = ?");
    let del = prep(e, session, "DELETE FROM fact WHERE rowid = ?");
    for _ in 0..n {
        match rng.gen_range(0..7u32) {
            // Literal text.
            0 => ok(
                e,
                session,
                &format!(
                    "{{\"sql\":\"INSERT INTO fact VALUES ({}, {}, {})\"}}",
                    rng.gen_range(0..8),
                    rng.gen_range(0..5000),
                    rng.gen_range(0..50)
                ),
            ),
            1 => {
                let r = live_row(e, rng);
                ok(
                    e,
                    session,
                    &format!(
                        "{{\"sql\":\"UPDATE fact SET f_q = {} WHERE rowid = {r}\"}}",
                        rng.gen_range(0..50)
                    ),
                );
            }
            // Mixed-case text.
            2 => {
                let sql = mix_case(
                    &format!(
                        "INSERT INTO fact VALUES ({}, {}, {})",
                        rng.gen_range(0..8),
                        rng.gen_range(0..5000),
                        rng.gen_range(0..50)
                    ),
                    rng,
                );
                ok(e, session, &format!("{{\"sql\":{sql:?}}}"));
            }
            3 => {
                let r = live_row(e, rng);
                let sql = mix_case(&format!("DELETE FROM fact WHERE rowid = {r}"), rng);
                ok(e, session, &format!("{{\"sql\":{sql:?}}}"));
            }
            // Prepared with bound params.
            4 => ok(
                e,
                session,
                &format!(
                    "{{\"execute\":{{\"id\":{ins},\"params\":[{}, {}, {}]}}}}",
                    rng.gen_range(0..8),
                    rng.gen_range(0..5000),
                    rng.gen_range(0..50)
                ),
            ),
            // Parameterized rowid.
            5 => {
                let r = live_row(e, rng);
                ok(
                    e,
                    session,
                    &format!(
                        "{{\"execute\":{{\"id\":{upd},\"params\":[{}, {r}]}}}}",
                        rng.gen_range(0..5000)
                    ),
                );
            }
            _ => {
                let r = live_row(e, rng);
                ok(e, session, &format!("{{\"execute\":{{\"id\":{del},\"params\":[{r}]}}}}"));
            }
        }
    }
}

#[test]
fn every_write_shape_survives_kill_and_recover() {
    let dir = std::env::temp_dir().join(format!("astore-wal-shapes-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = sealed_fixture();
    let wal = store::bootstrap(&dir, &seed).unwrap();
    let e = Engine::new(SharedDatabase::new(seed)).durable(Durability::new(&dir, wal, 0));
    let mut session = StatementRegistry::default();
    let mut rng = SmallRng::seed_from_u64(0x3A1_5E4D);

    // Phase 1: a batch of writes in every shape, then a simulated kill
    // (drop without checkpoint) and recovery purely from snapshot + WAL.
    random_writes(&e, &mut session, &mut rng, 60);
    let live = e.database().snapshot().as_ref().clone();
    drop(e);
    let rec = store::open(&dir).unwrap();
    assert!(rec.replayed >= 60, "all {} writes must replay, got {}", 60, rec.replayed);
    assert_identical(&rec.db, &live, "phase 1 recovery");
    // Deletes kept their segments sealed; only mutated segments unsealed.
    let fact = rec.db.table("fact").unwrap();
    assert!(
        fact.encodings().iter().any(Option::is_some),
        "recovery must preserve encodings of untouched segments"
    );

    // Phase 2: continue on the recovered image, checkpoint mid-stream
    // (fold into a fresh v3 snapshot, re-sealing dirtied segments), write
    // more in every shape, kill, recover.
    let e = Engine::new(SharedDatabase::new(rec.db)).durable(Durability::new(&dir, rec.wal, 0));
    let mut session = StatementRegistry::default();
    random_writes(&e, &mut session, &mut rng, 30);
    e.checkpoint().unwrap();
    // Post-checkpoint the live image is fully re-sealed.
    {
        let snap = e.database().snapshot();
        let fact = snap.table("fact").unwrap();
        assert!(
            fact.encodings().iter().all(Option::is_some),
            "checkpoint must re-seal every fact segment"
        );
    }
    random_writes(&e, &mut session, &mut rng, 30);
    let live = e.database().snapshot().as_ref().clone();
    drop(e);
    let rec = store::open(&dir).unwrap();
    assert!(
        rec.replayed >= 30 && rec.replayed < 60,
        "only post-checkpoint records replay, got {}",
        rec.replayed
    );
    assert_identical(&rec.db, &live, "phase 2 recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}
