//! Wire protocol v2 over real TCP: prepare/execute/close frames, the
//! parameter-aware plan cache, and golden tests pinning the error codes
//! and messages of every protocol failure mode — malformed frames, unknown
//! statement ids, wrong parameter count/kind, oversized frames.

use std::sync::Arc;

use astore_datagen::ssb;
use astore_server::json::Json;
use astore_server::{start, Client, Engine, ServerConfig, ServerHandle};
use astore_storage::snapshot::SharedDatabase;

fn ssb_server() -> ServerHandle {
    let engine = Arc::new(Engine::new(SharedDatabase::new(ssb::generate(0.001, 42))));
    start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap()
}

const Q11_TEMPLATE: &str =
    "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
     WHERE lo_orderdate = d_datekey AND d_year = ? \
       AND lo_discount BETWEEN ? AND ? AND lo_quantity < ?";

/// The acceptance scenario: repeated parameterized Q1.1 variants — via
/// prepare/execute on several connections AND via literal text — all land
/// on ONE plan-cache entry; every request after the first is a hit.
#[test]
fn parameterized_q11_variants_hit_the_plan_cache() {
    let h = ssb_server();
    let cache = || {
        let mut c = Client::connect(h.addr()).unwrap();
        let s = c.stats().unwrap();
        (
            s.get("cache_hits").unwrap().as_i64().unwrap(),
            s.get("cache_misses").unwrap().as_i64().unwrap(),
            s.get("cached_plans").unwrap().as_i64().unwrap(),
        )
    };

    // Connection A prepares the template: the one and only miss.
    let mut a = Client::connect(h.addr()).unwrap();
    let r = a.prepare(Q11_TEMPLATE).unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    let id = r.get("stmt_id").unwrap().as_i64().unwrap() as u64;
    let (_, misses0, plans) = cache();
    assert_eq!(misses0, 1, "first prepare is the only miss");
    assert_eq!(plans, 1);

    // Execute the same statement with three different year bindings.
    for (year, lo, hi, q) in [(1993, 1, 3, 25), (1994, 2, 4, 30), (1995, 3, 5, 35)] {
        let r = a
            .execute(id, vec![Json::Int(year), Json::Int(lo), Json::Int(hi), Json::Int(q)])
            .unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("cached_plan").unwrap().as_bool(), Some(true));
    }

    // Connection B prepares the same template → cache hit, same plan.
    let mut b = Client::connect(h.addr()).unwrap();
    let r = b.prepare(Q11_TEMPLATE).unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");

    // Literal-text Q1.1 variants from a third connection hit it too.
    let mut c = Client::connect(h.addr()).unwrap();
    for year in [1993, 1994, 1997] {
        let sql = format!(
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year = {year} \
               AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25"
        );
        let r = c.sql(&sql).unwrap();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
        assert_eq!(r.get("cached_plan").unwrap().as_bool(), Some(true), "year {year} missed");
    }

    let (hits, misses, plans) = cache();
    assert_eq!(misses, 1, "no Q1.1 variant ever re-planned");
    assert!(hits >= 4, "prepare-hit + 3 text hits, got {hits}");
    assert_eq!(plans, 1, "all variants share one template entry");
    h.shutdown();
}

/// Golden error frames: codes and key message fragments are pinned so
/// client authors can rely on them.
#[test]
fn golden_protocol_error_frames() {
    let h = ssb_server();
    let mut c = Client::connect(h.addr()).unwrap();

    let check = |r: &Json, code: &str, fragment: &str| {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r:?}");
        assert_eq!(r.get("code").and_then(Json::as_str), Some(code), "{r:?}");
        let msg = r.get("error").and_then(Json::as_str).unwrap_or_default();
        assert!(msg.contains(fragment), "expected {fragment:?} in {msg:?}");
    };

    // Malformed frames.
    let r = c.raw_line("this is not json").unwrap();
    check(&r, "bad_request", "");
    let r = c.raw_line(r#"{"other":1}"#).unwrap();
    check(&r, "bad_request", "\"sql\", \"prepare\", \"execute\", \"close\" or \"cmd\"");
    let r = c.raw_line(r#"{"execute":{"params":[1]}}"#).unwrap();
    check(&r, "bad_request", "needs a statement \"id\"");
    let r = c.raw_line(r#"{"execute":{"id":-1}}"#).unwrap();
    check(&r, "bad_request", "needs a statement \"id\"");
    let r = c.raw_line(r#"{"close":"x"}"#).unwrap();
    check(&r, "bad_request", "takes a statement id");
    let r = c.raw_line(r#"{"prepare":"SELEKT 1"}"#).unwrap();
    check(&r, "parse_error", "expected keyword select");

    // Unknown statement id.
    let r = c.raw_line(r#"{"execute":{"id":99,"params":[]}}"#).unwrap();
    check(&r, "unknown_statement", "statement 99 is not prepared in this session");

    // Parameter count/kind errors.
    let r = c.prepare("SELECT count(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = ?").unwrap();
    let id = r.get("stmt_id").unwrap().as_i64().unwrap() as u64;
    let r = c.execute(id, vec![]).unwrap();
    check(&r, "param_error", "statement takes 1 parameter(s), 0 given");
    let r = c.execute(id, vec![Json::Int(1993), Json::Int(1994)]).unwrap();
    check(&r, "param_error", "statement takes 1 parameter(s), 2 given");
    let r = c.execute(id, vec![Json::Str("ASIA".into())]).unwrap();
    check(&r, "param_error", "parameter $1 expects");
    let r = c.execute(id, vec![Json::Null]).unwrap();
    check(&r, "param_error", "NULL");
    let r = c.execute(id, vec![Json::Array(vec![Json::Int(1)])]).unwrap();
    check(&r, "param_error", "not a scalar");

    // Placeholders are rejected in text mode (no way to bind them).
    let r = c.sql("SELECT count(*) AS n FROM lineorder WHERE lo_quantity < ?").unwrap();
    check(&r, "param_error", "1 parameter(s), 0 given");
    let r = c.sql("DELETE FROM lineorder WHERE rowid = ?").unwrap();
    check(&r, "param_error", "placeholder");

    // The connection survived every error frame.
    let r = c.sql("SELECT count(*) AS n FROM lineorder").unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    h.shutdown();
}

/// An oversized request line (> 1 MiB) gets a typed error and the
/// connection closes; the server stays healthy for new connections.
#[test]
fn oversized_frames_are_rejected_and_bounded() {
    let h = ssb_server();
    let mut c = Client::connect(h.addr()).unwrap();
    let huge = format!(r#"{{"sql":"SELECT count(*) FROM t WHERE x = '{}'"}}"#, "a".repeat(2 << 20));
    let r = c.raw_line(&huge).unwrap();
    assert_eq!(r.get("code").and_then(Json::as_str), Some("bad_request"), "{r:?}");
    assert!(r.get("error").unwrap().as_str().unwrap().contains("exceeds 1 MiB"), "{r:?}");
    // The server closed this connection (rest of the line is unreadable)…
    assert!(c.sql("SELECT count(*) AS n FROM lineorder").is_err());
    // …but happily serves a fresh one.
    let mut c2 = Client::connect(h.addr()).unwrap();
    let r = c2.sql("SELECT count(*) AS n FROM lineorder").unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    h.shutdown();
}

/// Statement ids are session-scoped: another connection cannot execute
/// (or close) a statement it did not prepare.
#[test]
fn statement_registry_is_per_session() {
    let h = ssb_server();
    let mut a = Client::connect(h.addr()).unwrap();
    let r = a.prepare("SELECT count(*) AS n FROM lineorder").unwrap();
    let id = r.get("stmt_id").unwrap().as_i64().unwrap() as u64;
    let r = a.execute(id, vec![]).unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");

    let mut b = Client::connect(h.addr()).unwrap();
    let r = b.execute(id, vec![]).unwrap();
    assert_eq!(r.get("code").and_then(Json::as_str), Some("unknown_statement"), "{r:?}");
    let r = b.close_stmt(id).unwrap();
    assert_eq!(r.get("closed").and_then(Json::as_bool), Some(false), "{r:?}");

    // A's statement still works after B's attempts.
    let r = a.execute(id, vec![]).unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
    h.shutdown();
}

/// Prepared writes over TCP: bind, apply, and observe via a read — plus
/// eviction keeps the registry bounded without poisoning the session.
#[test]
fn prepared_writes_and_mixed_traffic_over_tcp() {
    let h = ssb_server();
    let mut c = Client::connect(h.addr()).unwrap();

    let r = c.prepare("UPDATE customer SET c_mktsegment = ? WHERE rowid = ?").unwrap();
    assert_eq!(r.get("kind").unwrap().as_str(), Some("write"), "{r:?}");
    assert_eq!(r.get("param_count").unwrap().as_i64(), Some(2));
    let id = r.get("stmt_id").unwrap().as_i64().unwrap() as u64;
    for row in 0..3 {
        let r = c.execute(id, vec![Json::Str("MACHINERY".into()), Json::Int(row)]).unwrap();
        assert_eq!(r.get("rows_affected").and_then(Json::as_i64), Some(1), "{r:?}");
    }
    // Bad rowid binding is a param error, not a write.
    let r = c.execute(id, vec![Json::Str("MACHINERY".into()), Json::Int(-1)]).unwrap();
    assert_eq!(r.get("code").and_then(Json::as_str), Some("param_error"), "{r:?}");

    let r = c
        .sql(
            "SELECT count(*) AS n FROM lineorder, customer \
              WHERE lo_custkey = c_custkey AND c_mktsegment = 'MACHINERY'",
        )
        .unwrap();
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");

    let s = c.stats().unwrap();
    assert!(s.get("prepares").unwrap().as_i64().unwrap() >= 1, "{s:?}");
    assert!(s.get("prepared_execs").unwrap().as_i64().unwrap() >= 4, "{s:?}");
    h.shutdown();
}
