//! The concurrent write path, end to end: group-commit durability under
//! torn-tail crashes, and snapshot-isolation visibility under writer/scan
//! interleavings.
//!
//! Two suites:
//!
//! 1. **Kill-at-every-byte recovery.** A WAL holding several group-committed
//!    batches is truncated at *every* possible byte length; each truncation
//!    must recover to a committed batch prefix — all statements of a batch
//!    or none of them, never a partial batch — and the recovered image must
//!    equal replaying exactly that prefix.
//!
//! 2. **Seeded 200-query differential.** Writers churn invariant-preserving
//!    multi-row inserts through the group-commit pipeline while a reader
//!    runs 200 seeded queries; every answer must correspond to a whole
//!    number of atomically applied statements (no torn rows, no phantom
//!    half-commits).

use std::sync::Arc;

use astore_persist::store;
use astore_persist::wal::Wal;
use astore_server::json::Json;
use astore_server::Engine;
use astore_storage::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("astore-wconc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_db() -> Database {
    let mut t = Table::new(
        "t",
        Schema::new(vec![ColumnDef::new("g", DataType::I64), ColumnDef::new("v", DataType::I64)]),
    );
    for i in 0..4i64 {
        t.append_row(&[Value::Int(i % 2), Value::Int(0)]);
    }
    let mut db = Database::new();
    db.add_table(t);
    db
}

fn count_rows(db: &Database) -> usize {
    db.table("t").unwrap().num_live()
}

#[test]
fn every_byte_truncation_recovers_a_committed_batch_prefix() {
    let dir = tmpdir("everybyte");
    let mut wal = store::bootstrap(&dir, &seed_db()).unwrap();
    // Three group-committed batches of different sizes. Each INSERT adds
    // one row, so the recovered row count identifies the replayed prefix.
    let batches: &[&[&str]] = &[
        &["INSERT INTO t VALUES (0, 1)", "INSERT INTO t VALUES (1, 2)"],
        &["INSERT INTO t VALUES (0, 3)"],
        &[
            "INSERT INTO t VALUES (1, 4)",
            "INSERT INTO t VALUES (0, 5)",
            "INSERT INTO t VALUES (1, 6)",
        ],
    ];
    for batch in batches {
        wal.append_batch(batch).unwrap();
    }
    drop(wal);

    let wal_bytes = std::fs::read(store::wal_path(&dir)).unwrap();
    let snap_bytes = std::fs::read(store::snapshot_path(&dir)).unwrap();
    // Row counts a crash may legally recover to: seed + a batch prefix.
    let base = 4usize;
    let legal: Vec<usize> = vec![base, base + 2, base + 3, base + 6];

    let crash = tmpdir("everybyte-crash");
    std::fs::create_dir_all(&crash).unwrap();
    std::fs::write(store::snapshot_path(&crash), &snap_bytes).unwrap();
    for cut in 0..=wal_bytes.len() {
        std::fs::write(store::wal_path(&crash), &wal_bytes[..cut]).unwrap();
        let rec = store::open(&crash).unwrap();
        let n = count_rows(&rec.db);
        assert!(
            legal.contains(&n),
            "cut at byte {cut}/{} recovered {n} rows — a partial batch",
            wal_bytes.len()
        );
        // The replayed count must match the row delta exactly: nothing
        // double-applied, nothing skipped.
        assert_eq!(rec.replayed, n - base, "cut at byte {cut}");
    }
    // The full file recovers everything.
    std::fs::write(store::wal_path(&crash), &wal_bytes).unwrap();
    let rec = store::open(&crash).unwrap();
    assert_eq!(count_rows(&rec.db), base + 6);
    assert!(!rec.truncated_tail);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crash).unwrap();
}

#[test]
fn torn_batch_lsns_stay_contiguous_after_recovery() {
    // Recovery from a torn tail must leave the WAL positioned so the next
    // batch continues the LSN sequence — a gap or overlap would let a later
    // checkpoint skip or double-replay records.
    let dir = tmpdir("lsncont");
    let mut wal = store::bootstrap(&dir, &seed_db()).unwrap();
    let first =
        wal.append_batch(&["INSERT INTO t VALUES (0, 1)", "INSERT INTO t VALUES (1, 2)"]).unwrap();
    assert_eq!(first, 1);
    drop(wal);
    // Tear mid-batch: drop the last byte.
    let path = store::wal_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
    let rec = store::open(&dir).unwrap();
    assert_eq!(rec.replayed, 0, "torn batch discarded whole");
    assert!(rec.truncated_tail);
    let mut wal = rec.wal;
    let next = wal.append_batch(&["INSERT INTO t VALUES (0, 9)"]).unwrap();
    assert_eq!(next, 1, "LSN 1 reissued after the torn batch was discarded");
    drop(wal);
    let rec = store::open(&dir).unwrap();
    assert_eq!(rec.replayed, 1);
    assert_eq!(count_rows(&rec.db), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_batches_survive_reopen_roundtrip() {
    // Plain Wal-level check in the same shapes the engine writes: reopen
    // sees one record per statement with consecutive LSNs.
    let dir = tmpdir("reopen");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("x.wal");
    let (mut wal, _) = Wal::open(&path, 1).unwrap();
    wal.append_batch(&["INSERT INTO t VALUES (0, 1)", "INSERT INTO t VALUES (1, 2)"]).unwrap();
    wal.append("INSERT INTO t VALUES (0, 3)").unwrap();
    drop(wal);
    let (_, scan) = Wal::open(&path, 1).unwrap();
    let lsns: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
    assert_eq!(lsns, vec![1, 2, 3]);
    assert!(!scan.torn);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The seeded differential: every statement a writer commits preserves
/// `sum(v) == 0` and an even live-row count in table `t`; a reader that
/// ever observes either invariant broken has seen a torn statement or a
/// phantom half-commit.
#[test]
fn seeded_200_query_differential_under_concurrent_writers() {
    let engine = Arc::new(Engine::new(SharedDatabase::new(seed_db())));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sql =
        |e: &Engine, s: &str| e.handle_line(&Json::obj([("sql", Json::Str(s.into()))]).to_string());

    std::thread::scope(|s| {
        for w in 0..3u64 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xA570 + w);
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let g = rng.gen_range(0..4i64);
                    let d = rng.gen_range(1..100i64);
                    // One statement, two rows, sums to zero: atomic or absent.
                    let r =
                        sql(&engine, &format!("INSERT INTO t VALUES ({g}, {d}), ({g}, {})", -d));
                    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r:?}");
                }
            });
        }

        let mut rng = SmallRng::seed_from_u64(0xA57E);
        for q in 0..200 {
            let (query, check): (String, fn(i64) -> bool) = match rng.gen_range(0..3u32) {
                0 => ("SELECT sum(v) AS s FROM t".into(), |s| s == 0),
                1 => ("SELECT count(*) AS n FROM t".into(), |n| n % 2 == 0),
                _ => {
                    let g = rng.gen_range(0..4i64);
                    (format!("SELECT sum(v) AS s FROM t WHERE g = {g}"), |s| s == 0)
                }
            };
            let r = sql(&engine, &query);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "query {q}: {r:?}");
            let got = r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0]
                .as_i64()
                .unwrap_or(0);
            assert!(check(got), "query {q} ({query}) observed a torn commit: {got}");
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });

    use std::sync::atomic::Ordering::Relaxed;
    let stats = engine.stats();
    assert_eq!(stats.errors.load(Relaxed), 0);
    assert!(stats.writes.load(Relaxed) > 0);
    assert!(stats.group_commits.load(Relaxed) > 0);
    // Final ground truth straight from storage.
    let snap = engine.database().snapshot();
    let t = snap.table("t").unwrap();
    let sum: i64 = (0..t.num_slots() as u32)
        .filter(|&r| t.is_live(r))
        .map(|r| t.row(r)[1].as_int().unwrap())
        .sum();
    assert_eq!(sum, 0);
}
