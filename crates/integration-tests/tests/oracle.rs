//! The gold oracle: a deliberately naive reference evaluator (row-at-a-time
//! AIR chasing, `Value`-level predicate evaluation, `HashMap` grouping)
//! checked against the full engine on the SSB workload and on handcrafted
//! edge cases. If the optimized engine and this 60-line interpreter ever
//! disagree, the engine is wrong.

use std::collections::HashMap;

use astore_core::expr::{CmpOp, Lit, MeasureExpr, Pred};
use astore_core::graph::JoinGraph;
use astore_core::prelude::*;
use astore_core::query::AggFunc;
use astore_core::universal::Universal;
use astore_datagen::ssb;
use astore_storage::prelude::*;

/// Naive evaluation of a predicate on one row of one table.
fn eval_pred(pred: &Pred, t: &Table, row: usize) -> bool {
    match pred {
        Pred::Const(b) => *b,
        Pred::And(ps) => ps.iter().all(|p| eval_pred(p, t, row)),
        Pred::Or(ps) => ps.iter().any(|p| eval_pred(p, t, row)),
        Pred::Not(p) => !eval_pred(p, t, row),
        Pred::Cmp { col, op, lit } => cmp(&t.column(col).unwrap().get(row), *op, lit),
        Pred::Between { col, lo, hi } => {
            let v = t.column(col).unwrap().get(row);
            cmp(&v, CmpOp::Ge, lo) && cmp(&v, CmpOp::Le, hi)
        }
        Pred::InList { col, lits } => {
            let v = t.column(col).unwrap().get(row);
            lits.iter().any(|l| cmp(&v, CmpOp::Eq, l))
        }
    }
}

fn cmp(v: &Value, op: CmpOp, lit: &Lit) -> bool {
    match (v, lit) {
        (Value::Int(a), Lit::Int(b)) => op.apply(*a, *b),
        (Value::Int(a), Lit::Float(b)) => op.apply(*a as f64, *b),
        (Value::Float(a), Lit::Float(b)) => op.apply(*a, *b),
        (Value::Float(a), Lit::Int(b)) => op.apply(*a, *b as f64),
        (Value::Str(a), Lit::Str(b)) => op.apply(a.as_str(), b.as_str()),
        _ => false,
    }
}

fn eval_measure(m: &MeasureExpr, t: &Table, row: usize) -> f64 {
    match m {
        MeasureExpr::Const(c) => *c,
        MeasureExpr::Col(c) => t.column(c).unwrap().numeric_at(row).expect("numeric measure"),
        MeasureExpr::Add(a, b) => eval_measure(a, t, row) + eval_measure(b, t, row),
        MeasureExpr::Sub(a, b) => eval_measure(a, t, row) - eval_measure(b, t, row),
        MeasureExpr::Mul(a, b) => eval_measure(a, t, row) * eval_measure(b, t, row),
    }
}

/// The reference evaluator: materializes the result as unsorted rows.
fn reference_execute(db: &Database, q: &Query) -> QueryResult {
    let graph = JoinGraph::build(db);
    let root_name = q
        .root
        .clone()
        .unwrap_or_else(|| graph.root_covering(&q.referenced_tables()).unwrap().to_owned());
    let u = Universal::new(db, &graph, &root_name).unwrap();
    let fact = u.root_table();

    // Resolve every non-root table the query references.
    let mut group_cols = Vec::new();
    for g in &q.group_by {
        group_cols.push((u.resolve(g).unwrap(), g.table == root_name));
    }

    #[derive(Default, Clone)]
    struct Acc {
        sum: Vec<f64>,
        count: u64,
        min: Vec<f64>,
        max: Vec<f64>,
    }
    /// A hashable stand-in for grouping labels (ints and strings only).
    #[derive(PartialEq, Eq, Hash)]
    enum OKey {
        Int(i64),
        Str(String),
    }
    fn okey(v: &Value) -> OKey {
        match v {
            Value::Int(i) => OKey::Int(*i),
            Value::Key(k) => OKey::Int(i64::from(*k)),
            Value::Str(s) => OKey::Str(s.clone()),
            other => panic!("cannot group by {other:?}"),
        }
    }
    let n_aggs = q.aggregates.len();
    let mut groups: HashMap<Vec<OKey>, (Vec<Value>, Acc)> = HashMap::new();

    'rows: for row in 0..fact.num_slots() {
        if !fact.is_live(row as u32) {
            continue;
        }
        // Selections: every predicate table must be reachable, live, and
        // pass its predicate.
        for (t, pred) in &q.selections {
            if t == &root_name {
                if !eval_pred(pred, fact, row) {
                    continue 'rows;
                }
                continue;
            }
            let hops = u.hops_to(t).unwrap();
            let mut r = row;
            for keys in &hops {
                let k = keys[r];
                if k == NULL_KEY {
                    continue 'rows;
                }
                r = k as usize;
            }
            let table = db.table(t).unwrap();
            if !table.is_live(r as u32) || !eval_pred(pred, table, r) {
                continue 'rows;
            }
        }
        // Grouping labels (row dropped if any chain is broken/dead).
        let mut labels = Vec::with_capacity(group_cols.len());
        for (rc, _) in &group_cols {
            let Some(r) = rc.locate(row) else { continue 'rows };
            if !rc.table.is_live(r as u32) {
                continue 'rows;
            }
            labels.push(rc.column.get(r));
        }
        // Implicit inner-join semantics: all *referenced* non-root tables
        // must be reachable even if they carry no predicate (handled above
        // for predicates and groups; tables referenced only via measures are
        // root-local by construction).
        let key: Vec<OKey> = labels.iter().map(okey).collect();
        let acc = &mut groups
            .entry(key)
            .or_insert_with(|| {
                (
                    labels,
                    Acc {
                        sum: vec![0.0; n_aggs],
                        count: 0,
                        min: vec![f64::INFINITY; n_aggs],
                        max: vec![f64::NEG_INFINITY; n_aggs],
                    },
                )
            })
            .1;
        acc.count += 1;
        for (j, a) in q.aggregates.iter().enumerate() {
            if let Some(e) = &a.expr {
                let v = eval_measure(e, fact, row);
                acc.sum[j] += v;
                acc.min[j] = acc.min[j].min(v);
                acc.max[j] = acc.max[j].max(v);
            }
        }
    }

    let mut rows = Vec::new();
    for (_, (labels, acc)) in groups {
        let mut row = labels;
        for (j, a) in q.aggregates.iter().enumerate() {
            row.push(match a.func {
                AggFunc::Sum => Value::Float(acc.sum[j]),
                AggFunc::Count => Value::Int(acc.count as i64),
                AggFunc::Min => Value::Float(acc.min[j]),
                AggFunc::Max => Value::Float(acc.max[j]),
                AggFunc::Avg => Value::Float(acc.sum[j] / acc.count as f64),
            });
        }
        rows.push(row);
    }
    QueryResult { columns: q.output_names(), rows }
}

#[test]
fn engine_matches_oracle_on_all_ssb_queries() {
    let db = ssb::generate(0.002, 99);
    for sq in ssb::queries() {
        let engine = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let oracle = reference_execute(&db, &sq.query);
        assert!(
            engine.result.same_contents(&oracle, 1e-6),
            "{}: engine disagrees with the naive oracle ({} vs {} rows)",
            sq.id,
            engine.result.len(),
            oracle.len()
        );
    }
}

#[test]
fn engine_matches_oracle_with_deletes() {
    let mut db = ssb::generate(0.002, 7);
    // Knock out scattered fact rows, customers and a supplier.
    {
        let lo = db.table_mut("lineorder").unwrap();
        let n = lo.num_slots();
        for i in (0..n).step_by(17) {
            lo.delete(i as u32);
        }
    }
    {
        let c = db.table_mut("customer").unwrap();
        let n = c.num_slots();
        for i in (0..n).step_by(5) {
            c.delete(i as u32);
        }
    }
    db.table_mut("supplier").unwrap().delete(3);

    for sq in ssb::queries() {
        let engine = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let oracle = reference_execute(&db, &sq.query);
        assert!(
            engine.result.same_contents(&oracle, 1e-6),
            "{}: engine disagrees with oracle under deletes",
            sq.id
        );
        // Row-wise variant and parallel executor too.
        let row = execute(&db, &sq.query, &ExecOptions::with_variant(ScanVariant::RowWise))
            .unwrap();
        assert!(row.result.same_contents(&oracle, 1e-6), "{}: row-wise under deletes", sq.id);
        let par = execute(&db, &sq.query, &ExecOptions::default().threads(3)).unwrap();
        assert!(par.result.same_contents(&oracle, 1e-6), "{}: parallel under deletes", sq.id);
    }
}

#[test]
fn engine_matches_oracle_on_min_max_avg() {
    let db = ssb::generate(0.002, 13);
    let q = Query::new()
        .root("lineorder")
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .group("date", "d_year")
        .agg(Aggregate::min(MeasureExpr::col("lo_revenue"), "lo"))
        .agg(Aggregate::max(MeasureExpr::col("lo_revenue"), "hi"))
        .agg(Aggregate::avg(MeasureExpr::col("lo_revenue"), "avg"))
        .agg(Aggregate::count("n"));
    let engine = execute(&db, &q, &ExecOptions::default()).unwrap();
    let oracle = reference_execute(&db, &q);
    assert!(engine.result.same_contents(&oracle, 1e-6));
}
