//! The gold oracle: a deliberately naive reference evaluator (row-at-a-time
//! AIR chasing, `Value`-level predicate evaluation, `HashMap` grouping)
//! checked against the full engine on the SSB workload and on handcrafted
//! edge cases. If the optimized engine and this 60-line interpreter ever
//! disagree, the engine is wrong.
//!
//! On top of the fixed workload, a seeded random SPJGA query generator runs
//! a three-way differential: the AIR engine, the `baseline` hash-join
//! pipeline, and the AIR engine over a snapshot-reloaded copy of the
//! database must all agree on every generated query.

use std::collections::HashMap;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::expr::{CmpOp, Lit, MeasureExpr, Pred};
use astore_core::graph::JoinGraph;
use astore_core::prelude::*;
use astore_core::query::AggFunc;
use astore_core::universal::Universal;
use astore_datagen::ssb;
use astore_storage::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Naive evaluation of a predicate on one row of one table.
fn eval_pred(pred: &Pred, t: &Table, row: usize) -> bool {
    match pred {
        Pred::Const(b) => *b,
        Pred::And(ps) => ps.iter().all(|p| eval_pred(p, t, row)),
        Pred::Or(ps) => ps.iter().any(|p| eval_pred(p, t, row)),
        Pred::Not(p) => !eval_pred(p, t, row),
        Pred::Cmp { col, op, lit } => cmp(&t.column(col).unwrap().get(row), *op, lit),
        Pred::Between { col, lo, hi } => {
            let v = t.column(col).unwrap().get(row);
            cmp(&v, CmpOp::Ge, lo) && cmp(&v, CmpOp::Le, hi)
        }
        Pred::InList { col, lits } => {
            let v = t.column(col).unwrap().get(row);
            lits.iter().any(|l| cmp(&v, CmpOp::Eq, l))
        }
    }
}

fn cmp(v: &Value, op: CmpOp, lit: &Lit) -> bool {
    match (v, lit) {
        (Value::Int(a), Lit::Int(b)) => op.apply(*a, *b),
        (Value::Int(a), Lit::Float(b)) => op.apply(*a as f64, *b),
        (Value::Float(a), Lit::Float(b)) => op.apply(*a, *b),
        (Value::Float(a), Lit::Int(b)) => op.apply(*a, *b as f64),
        (Value::Str(a), Lit::Str(b)) => op.apply(a.as_str(), b.as_str()),
        _ => false,
    }
}

fn eval_measure(m: &MeasureExpr, t: &Table, row: usize) -> f64 {
    match m {
        MeasureExpr::Const(c) => *c,
        MeasureExpr::Col(c) => t.column(c).unwrap().numeric_at(row).expect("numeric measure"),
        MeasureExpr::Add(a, b) => eval_measure(a, t, row) + eval_measure(b, t, row),
        MeasureExpr::Sub(a, b) => eval_measure(a, t, row) - eval_measure(b, t, row),
        MeasureExpr::Mul(a, b) => eval_measure(a, t, row) * eval_measure(b, t, row),
    }
}

/// The reference evaluator: materializes the result as unsorted rows.
fn reference_execute(db: &Database, q: &Query) -> QueryResult {
    let graph = JoinGraph::build(db);
    let root_name = q
        .root
        .clone()
        .unwrap_or_else(|| graph.root_covering(&q.referenced_tables()).unwrap().to_owned());
    let u = Universal::new(db, &graph, &root_name).unwrap();
    let fact = u.root_table();

    // Resolve every non-root table the query references.
    let mut group_cols = Vec::new();
    for g in &q.group_by {
        group_cols.push((u.resolve(g).unwrap(), g.table == root_name));
    }

    #[derive(Default, Clone)]
    struct Acc {
        sum: Vec<f64>,
        count: u64,
        min: Vec<f64>,
        max: Vec<f64>,
    }
    /// A hashable stand-in for grouping labels (ints and strings only).
    #[derive(PartialEq, Eq, Hash)]
    enum OKey {
        Int(i64),
        Str(String),
    }
    fn okey(v: &Value) -> OKey {
        match v {
            Value::Int(i) => OKey::Int(*i),
            Value::Key(k) => OKey::Int(i64::from(*k)),
            Value::Str(s) => OKey::Str(s.clone()),
            other => panic!("cannot group by {other:?}"),
        }
    }
    let n_aggs = q.aggregates.len();
    let mut groups: HashMap<Vec<OKey>, (Vec<Value>, Acc)> = HashMap::new();

    'rows: for row in 0..fact.num_slots() {
        if !fact.is_live(row as u32) {
            continue;
        }
        // Selections: every predicate table must be reachable, live, and
        // pass its predicate.
        for (t, pred) in &q.selections {
            if t == &root_name {
                if !eval_pred(pred, fact, row) {
                    continue 'rows;
                }
                continue;
            }
            let hops = u.hops_to(t).unwrap();
            let mut r = row;
            for keys in &hops {
                let k = keys[r];
                if k == NULL_KEY {
                    continue 'rows;
                }
                r = k as usize;
            }
            let table = db.table(t).unwrap();
            if !table.is_live(r as u32) || !eval_pred(pred, table, r) {
                continue 'rows;
            }
        }
        // Grouping labels (row dropped if any chain is broken/dead).
        let mut labels = Vec::with_capacity(group_cols.len());
        for (rc, _) in &group_cols {
            let Some(r) = rc.locate(row) else { continue 'rows };
            if !rc.table.is_live(r as u32) {
                continue 'rows;
            }
            labels.push(rc.column.get(r));
        }
        // Implicit inner-join semantics: all *referenced* non-root tables
        // must be reachable even if they carry no predicate (handled above
        // for predicates and groups; tables referenced only via measures are
        // root-local by construction).
        let key: Vec<OKey> = labels.iter().map(okey).collect();
        let acc = &mut groups
            .entry(key)
            .or_insert_with(|| {
                (
                    labels,
                    Acc {
                        sum: vec![0.0; n_aggs],
                        count: 0,
                        min: vec![f64::INFINITY; n_aggs],
                        max: vec![f64::NEG_INFINITY; n_aggs],
                    },
                )
            })
            .1;
        acc.count += 1;
        for (j, a) in q.aggregates.iter().enumerate() {
            if let Some(e) = &a.expr {
                let v = eval_measure(e, fact, row);
                acc.sum[j] += v;
                acc.min[j] = acc.min[j].min(v);
                acc.max[j] = acc.max[j].max(v);
            }
        }
    }

    let mut rows = Vec::new();
    for (_, (labels, acc)) in groups {
        let mut row = labels;
        for (j, a) in q.aggregates.iter().enumerate() {
            row.push(match a.func {
                AggFunc::Sum => Value::Float(acc.sum[j]),
                AggFunc::Count => Value::Int(acc.count as i64),
                AggFunc::Min => Value::Float(acc.min[j]),
                AggFunc::Max => Value::Float(acc.max[j]),
                AggFunc::Avg => Value::Float(acc.sum[j] / acc.count as f64),
            });
        }
        rows.push(row);
    }
    QueryResult { columns: q.output_names(), rows }
}

#[test]
fn engine_matches_oracle_on_all_ssb_queries() {
    let db = ssb::generate(0.002, 99);
    for sq in ssb::queries() {
        let engine = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let oracle = reference_execute(&db, &sq.query);
        assert!(
            engine.result.same_contents(&oracle, 1e-6),
            "{}: engine disagrees with the naive oracle ({} vs {} rows)",
            sq.id,
            engine.result.len(),
            oracle.len()
        );
    }
}

#[test]
fn engine_matches_oracle_with_deletes() {
    let mut db = ssb::generate(0.002, 7);
    // Knock out scattered fact rows, customers and a supplier.
    {
        let lo = db.table_mut("lineorder").unwrap();
        let n = lo.num_slots();
        for i in (0..n).step_by(17) {
            lo.delete(i as u32);
        }
    }
    {
        let c = db.table_mut("customer").unwrap();
        let n = c.num_slots();
        for i in (0..n).step_by(5) {
            c.delete(i as u32);
        }
    }
    db.table_mut("supplier").unwrap().delete(3);

    for sq in ssb::queries() {
        let engine = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let oracle = reference_execute(&db, &sq.query);
        assert!(
            engine.result.same_contents(&oracle, 1e-6),
            "{}: engine disagrees with oracle under deletes",
            sq.id
        );
        // Row-wise variant and parallel executor too. Fan-out is forced:
        // the SF 0.002 fixture is below the default planner threshold, and
        // a silently-serial run would prove nothing here.
        let row =
            execute(&db, &sq.query, &ExecOptions::with_variant(ScanVariant::RowWise)).unwrap();
        assert!(row.result.same_contents(&oracle, 1e-6), "{}: row-wise under deletes", sq.id);
        let mut popts = ExecOptions::default().threads(3);
        popts.optimizer.parallel_min_rows_per_thread = 1;
        popts.optimizer.host_threads = 64;
        let par = execute(&db, &sq.query, &popts).unwrap();
        // Serial is only legitimate when zone maps proved there is nothing
        // to scan at all (e.g. an empty chain filter pruned every segment).
        assert!(
            par.plan.executor.is_parallel() || par.plan.segments_scanned == 0,
            "{}: fell back to serial with unpruned segments",
            sq.id
        );
        assert!(par.result.same_contents(&oracle, 1e-6), "{}: parallel under deletes", sq.id);
    }
}

// ---------------------------------------------------------------------------
// Randomized differential testing: AIR vs hash-join vs reloaded-from-disk.
// ---------------------------------------------------------------------------

/// One random dimension predicate drawn from a pool of valid SSB shapes.
fn random_dim_pred(rng: &mut SmallRng) -> (&'static str, Pred) {
    const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    const MFGRS: [&str; 5] = ["MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"];
    const NATIONS: [&str; 6] = ["CHINA", "FRANCE", "BRAZIL", "EGYPT", "KENYA", "UNITED STATES"];
    match rng.gen_range(0..8u32) {
        0 => {
            let y = rng.gen_range(1992..=1998i64);
            ("date", Pred::eq("d_year", y))
        }
        1 => {
            let lo = rng.gen_range(1992..=1997i64);
            ("date", Pred::between("d_year", lo, lo + rng.gen_range(0..=2i64)))
        }
        2 => {
            let w = rng.gen_range(1..=53i64);
            ("date", Pred::cmp("d_weeknuminyear", CmpOp::Le, w))
        }
        3 => ("customer", Pred::eq("c_region", REGIONS[rng.gen_range(0..REGIONS.len())])),
        4 => ("customer", Pred::eq("c_nation", NATIONS[rng.gen_range(0..NATIONS.len())])),
        5 => ("supplier", Pred::eq("s_region", REGIONS[rng.gen_range(0..REGIONS.len())])),
        6 => ("part", Pred::eq("p_mfgr", MFGRS[rng.gen_range(0..MFGRS.len())])),
        _ => {
            let lo = rng.gen_range(1..=40i64);
            ("part", Pred::between("p_size", lo, lo + rng.gen_range(0..=10i64)))
        }
    }
}

/// One random fact-local predicate.
fn random_fact_pred(rng: &mut SmallRng) -> Pred {
    match rng.gen_range(0..4u32) {
        0 => {
            let lo = rng.gen_range(1..=8i64);
            Pred::between("lo_discount", lo, lo + 2)
        }
        1 => Pred::cmp("lo_quantity", CmpOp::Lt, rng.gen_range(5..=50i64)),
        2 => Pred::cmp("lo_extendedprice", CmpOp::Ge, rng.gen_range(100..=2000i64) * 100),
        _ => {
            let lo = rng.gen_range(1..=8i64);
            Pred::between("lo_discount", lo, lo + 1).and(Pred::cmp(
                "lo_quantity",
                CmpOp::Ge,
                rng.gen_range(1..=30i64),
            ))
        }
    }
}

/// A random SPJGA query over the SSB schema: 0–2 dimension predicates, an
/// optional fact predicate, 0–2 group columns, 1–3 aggregates.
fn random_query(rng: &mut SmallRng) -> Query {
    const GROUPS: [(&str, &str); 7] = [
        ("date", "d_year"),
        ("date", "d_month"),
        ("customer", "c_region"),
        ("customer", "c_nation"),
        ("supplier", "s_region"),
        ("part", "p_mfgr"),
        ("lineorder", "lo_shipmode"),
    ];
    let mut q = Query::new().root("lineorder");
    for _ in 0..rng.gen_range(0..=2u32) {
        let (t, p) = random_dim_pred(rng);
        q = q.filter(t, p);
    }
    if rng.gen_bool(0.6) {
        q = q.filter("lineorder", random_fact_pred(rng));
    }
    let n_groups = rng.gen_range(0..=2u32);
    let mut used = Vec::new();
    for _ in 0..n_groups {
        let (t, c) = GROUPS[rng.gen_range(0..GROUPS.len())];
        if !used.contains(&c) {
            used.push(c);
            q = q.group(t, c);
        }
    }
    let rev_disc = || {
        MeasureExpr::Mul(
            Box::new(MeasureExpr::col("lo_extendedprice")),
            Box::new(MeasureExpr::col("lo_discount")),
        )
    };
    let profit = || {
        MeasureExpr::Sub(
            Box::new(MeasureExpr::col("lo_revenue")),
            Box::new(MeasureExpr::col("lo_supplycost")),
        )
    };
    for i in 0..rng.gen_range(1..=3u32) {
        let name = format!("agg{i}");
        q = q.agg(match rng.gen_range(0..6u32) {
            0 => Aggregate::sum(MeasureExpr::col("lo_revenue"), name),
            1 => Aggregate::sum(rev_disc(), name),
            2 => Aggregate::sum(profit(), name),
            3 => Aggregate::count(name),
            4 => Aggregate::min(MeasureExpr::col("lo_revenue"), name),
            _ => Aggregate::max(MeasureExpr::col("lo_extendedprice"), name),
        });
    }
    q
}

#[test]
fn randomized_three_way_differential_air_hash_and_reloaded() {
    const QUERIES: usize = 200;
    let db = ssb::generate(0.002, 4242);

    // Third engine: the same database after a disk round trip.
    let dir = std::env::temp_dir().join(format!("astore-oracle-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("diff.snapshot");
    astore_persist::save_snapshot(&db, &path).unwrap();
    let reloaded = astore_persist::load_snapshot(&path).unwrap();

    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    let mut nonempty = 0usize;
    for i in 0..QUERIES {
        let q = random_query(&mut rng);
        let air = execute(&db, &q, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("query {i} failed on AIR engine: {e:?}\n{q:?}"));
        let hash = execute_hash_pipeline(&db, &q)
            .unwrap_or_else(|e| panic!("query {i} failed on hash engine: {e:?}\n{q:?}"));
        let disk = execute(&reloaded, &q, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("query {i} failed on reloaded engine: {e:?}\n{q:?}"));
        assert!(
            air.result.same_contents(&hash.result, 1e-6),
            "query {i}: AIR vs hash-join disagree ({} vs {} rows)\n{q:?}",
            air.result.len(),
            hash.result.len()
        );
        // The reloaded engine runs identical code on identical bytes: exact.
        assert!(
            air.result.same_contents(&disk.result, 0.0),
            "query {i}: AIR vs reloaded-from-disk disagree\n{q:?}",
        );
        if !air.result.rows.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty > QUERIES / 2,
        "generator degenerated: only {nonempty}/{QUERIES} queries returned rows"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Parallel-vs-serial differential: the morsel-driven executor (§5) must be
// observationally identical to the serial executor on every generated query
// and every thread count — and must *actually run in parallel*, which
// `PlanInfo::executor` proves (a silent serial fallback would make this
// suite vacuous).
// ---------------------------------------------------------------------------

#[test]
fn randomized_parallel_vs_serial_differential() {
    const QUERIES: usize = 200;
    // `ASTORE_TEST_THREADS` (comma-separated, each > 1) overrides the
    // sweep — CI's thread-matrix leg re-runs the differential at exactly
    // the matrix's thread count.
    let threads_sweep: Vec<usize> = std::env::var("ASTORE_TEST_THREADS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&t| t > 1).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8]);
    let db = ssb::generate(0.002, 0x9A7A11E1);

    // Force fan-out on the test-sized dataset (production's planner keeps
    // small scans serial; that clamp has its own tests) and use small
    // morsels so every thread count actually contends on the dispatcher.
    let par_opts = |threads: usize| {
        let mut o = ExecOptions::default().threads(threads).morsel_rows(1024);
        o.optimizer.parallel_min_rows_per_thread = 1;
        o.optimizer.host_threads = 64;
        o
    };

    let mut rng = SmallRng::seed_from_u64(0x5EED_D1FF);
    let mut nonempty = 0usize;
    for i in 0..QUERIES {
        let q = random_query(&mut rng);
        let serial = execute(&db, &q, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("query {i} failed serially: {e:?}\n{q:?}"));
        assert!(!serial.plan.executor.is_parallel());
        for &threads in &threads_sweep {
            let par = execute(&db, &q, &par_opts(threads))
                .unwrap_or_else(|e| panic!("query {i} failed at {threads} threads: {e:?}\n{q:?}"));
            // A fully-pruned scan (zone maps proved no segment can match)
            // legitimately stays serial; anything else must fan out.
            if par.plan.segments_scanned > 0 {
                assert!(
                    matches!(
                        par.plan.executor,
                        ExecutorInfo::Parallel { threads: t, .. } if t == threads
                    ),
                    "query {i}: expected {threads}-thread executor, got {}",
                    par.plan.executor
                );
            } else {
                assert_eq!(par.plan.selected_rows, 0, "query {i}: pruned scan selected rows");
            }
            // `same_contents` compares canonically sorted rows (order is
            // unspecified without ORDER BY); float eps covers the merge's
            // re-associated additions.
            assert!(
                par.result.same_contents(&serial.result, 1e-9),
                "query {i} at {threads} threads diverged from serial \
                 ({} vs {} rows)\n{q:?}",
                par.result.len(),
                serial.result.len()
            );
            assert_eq!(
                par.plan.selected_rows, serial.plan.selected_rows,
                "query {i} at {threads} threads selected a different row count\n{q:?}"
            );
            assert_eq!(par.plan.groups, serial.plan.groups, "query {i} group count\n{q:?}");
        }
        if !serial.result.rows.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty > QUERIES / 2,
        "generator degenerated: only {nonempty}/{QUERIES} queries returned rows"
    );
}

#[test]
fn parallel_matches_oracle_on_all_ssb_queries() {
    // The fixed 13-query SSB workload through the morsel executor, checked
    // against the naive reference evaluator directly.
    let db = ssb::generate(0.002, 99);
    let mut opts = ExecOptions::default().threads(4).morsel_rows(512);
    opts.optimizer.parallel_min_rows_per_thread = 1;
    opts.optimizer.host_threads = 64;
    for sq in ssb::queries() {
        let par = execute(&db, &sq.query, &opts).unwrap();
        assert!(
            par.plan.executor.is_parallel() || par.plan.segments_scanned == 0,
            "{}: fell back to serial with unpruned segments",
            sq.id
        );
        let oracle = reference_execute(&db, &sq.query);
        assert!(
            par.result.same_contents(&oracle, 1e-6),
            "{}: parallel engine disagrees with the naive oracle ({} vs {} rows)",
            sq.id,
            par.result.len(),
            oracle.len()
        );
    }
}

#[test]
fn engine_matches_oracle_on_min_max_avg() {
    let db = ssb::generate(0.002, 13);
    let q = Query::new()
        .root("lineorder")
        .filter("customer", Pred::eq("c_region", "ASIA"))
        .group("date", "d_year")
        .agg(Aggregate::min(MeasureExpr::col("lo_revenue"), "lo"))
        .agg(Aggregate::max(MeasureExpr::col("lo_revenue"), "hi"))
        .agg(Aggregate::avg(MeasureExpr::col("lo_revenue"), "avg"))
        .agg(Aggregate::count("n"));
    let engine = execute(&db, &q, &ExecOptions::default()).unwrap();
    let oracle = reference_execute(&db, &q);
    assert!(engine.result.same_contents(&oracle, 1e-6));
}
