//! Session-registry lifecycle under connection churn: thousands of
//! open/close cycles against a live server must leave no registries (and
//! no connection-gauge drift) behind, in either io model.
//!
//! Lives in its own test binary: [`astore_server::session::live_registries`]
//! is process-global, so concurrent tests creating sessions would make the
//! baseline race.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use astore_datagen::ssb;
use astore_server::json::Json;
use astore_server::session::live_registries;
use astore_server::{start, Engine, IoModel, ServerConfig, ServerHandle};
use astore_storage::snapshot::SharedDatabase;

fn serve(io_model: IoModel) -> ServerHandle {
    let db = ssb::generate(0.001, 7);
    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            io_model,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Serializes the churn runs: the registry counter is process-global, so
/// two servers churning at once would race each other's baselines.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Opens and closes `cycles` connections; every `probe_every`-th sends one
/// request first (so some sessions do real work before dying). Then waits
/// for the server to tear every session down.
fn churn(io_model: IoModel, cycles: usize, probe_every: usize) {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let server = serve(io_model);
    let baseline = live_registries();
    for i in 0..cycles {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        if i % probe_every == 0 {
            stream.write_all(b"{\"prepare\":\"SELECT count(*) AS c FROM date\"}\n").unwrap();
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
            assert!(line.contains("\"ok\":true"), "probe {i} failed: {line}");
        }
        // Drop closes the socket; the server must notice and free the
        // session registry promptly.
    }
    // Teardown is asynchronous (the reactor reaps on its next event batch,
    // the thread model on its next read) — poll, bounded.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let live = live_registries();
        if live <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{live} registries still alive after churn (baseline {baseline})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The connection gauge drained too.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap()).read_line(&mut line).unwrap();
    let frame = astore_server::json::parse(line.trim()).unwrap();
    let open =
        frame.get("stats").and_then(|s| s.get("open_connections")).and_then(Json::as_i64).unwrap();
    assert_eq!(open, 1, "only the probing connection should be open");
    drop(stream);
    server.shutdown();
    assert_eq!(live_registries(), baseline, "shutdown leaked registries");
}

#[test]
fn reactor_survives_10k_open_close_cycles_without_leaking() {
    churn(IoModel::Reactor, 10_000, 100);
}

#[test]
fn thread_model_churn_does_not_leak_registries() {
    churn(IoModel::Threads, 1_000, 50);
}
