//! SQL front-end round-trips: the SSB queries written as SQL text must
//! plan and execute to the same results as the hand-built query catalog.

use astore_core::prelude::*;
use astore_datagen::ssb;
use astore_sql::run_sql;

fn sql_texts() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "Q1.1",
            "SELECT sum(lo_extendedprice * lo_discount) AS revenue \
             FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year = 1993 \
               AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25",
        ),
        (
            "Q2.1",
            "SELECT d_year, p_brand1, sum(lo_revenue) AS revenue \
             FROM lineorder, date, part, supplier \
             WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey \
               AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12' \
               AND s_region = 'AMERICA' \
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1",
        ),
        (
            "Q3.1",
            "SELECT c_nation, s_nation, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey AND c_region = 'ASIA' \
               AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997 \
             GROUP BY c_nation, s_nation, d_year \
             ORDER BY d_year ASC, revenue DESC",
        ),
        (
            "Q4.1",
            "SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit \
             FROM date, customer, supplier, part, lineorder \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
               AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
               AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') \
             GROUP BY d_year, c_nation ORDER BY d_year, c_nation",
        ),
        (
            "Q3.4",
            "SELECT c_city, s_city, d_year, sum(lo_revenue) AS revenue \
             FROM customer, lineorder, supplier, date \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_orderdate = d_datekey \
               AND c_city IN ('UNITED KI1', 'UNITED KI5') \
               AND s_city IN ('UNITED KI1', 'UNITED KI5') \
               AND d_yearmonth = 'Dec1997' \
             GROUP BY c_city, s_city, d_year \
             ORDER BY d_year ASC, revenue DESC",
        ),
    ]
}

#[test]
fn sql_matches_catalog_queries() {
    let db = ssb::generate(0.004, 42);
    let catalog = ssb::queries();
    for (id, sql) in sql_texts() {
        let sql_out = run_sql(sql, &db, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("{id}: SQL failed: {e}"));
        let cat = catalog.iter().find(|q| q.id == id).unwrap();
        let cat_out = execute(&db, &cat.query, &ExecOptions::default()).unwrap();
        assert!(
            sql_out.result.same_contents(&cat_out.result, 1e-6),
            "{id}: SQL and catalog results differ\nsql:  {:?}\ncat:  {:?}",
            sql_out.result.rows.iter().take(3).collect::<Vec<_>>(),
            cat_out.result.rows.iter().take(3).collect::<Vec<_>>()
        );
    }
}

#[test]
fn sql_order_by_and_limit_apply() {
    let db = ssb::generate(0.002, 42);
    let out = run_sql(
        "SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date \
         WHERE lo_orderdate = d_datekey GROUP BY d_year \
         ORDER BY revenue DESC LIMIT 3",
        &db,
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(out.result.len(), 3);
    let revs: Vec<f64> = out
        .result
        .rows
        .iter()
        .map(|r| match &r[1] {
            astore_storage::types::Value::Float(f) => *f,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert!(revs.windows(2).all(|w| w[0] >= w[1]), "not descending: {revs:?}");
}

#[test]
fn sql_runs_on_parallel_engine() {
    let db = ssb::generate(0.002, 42);
    let serial = run_sql(
        "SELECT c_region, count(*) AS n FROM lineorder, customer \
         WHERE lo_custkey = c_custkey GROUP BY c_region",
        &db,
        &ExecOptions::default(),
    )
    .unwrap();
    // Forced fan-out: SF 0.002 is below the default planner threshold, and
    // the point of this test is the *parallel* engine behind SQL.
    let mut popts = ExecOptions::default().threads(4);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    let parallel = run_sql(
        "SELECT c_region, count(*) AS n FROM lineorder, customer \
         WHERE lo_custkey = c_custkey GROUP BY c_region",
        &db,
        &popts,
    )
    .unwrap();
    assert!(parallel.plan.executor.is_parallel());
    assert!(serial.result.same_contents(&parallel.result, 1e-9));
    assert_eq!(serial.result.len(), 5);
}

#[test]
fn sql_rejects_unsupported_shapes() {
    let db = ssb::generate(0.001, 42);
    // Self-join-ish / non-FK join.
    assert!(run_sql(
        "SELECT count(*) FROM customer, supplier WHERE c_nation = s_nation",
        &db,
        &ExecOptions::default()
    )
    .is_err());
    // Pure projection.
    assert!(run_sql("SELECT c_name FROM customer", &db, &ExecOptions::default()).is_err());
}
