//! Trace well-formedness over the full SSB suite.
//!
//! Every one of the 13 SSB queries is executed with a span recorder
//! attached (the `EXPLAIN ANALYZE` machinery), serial and parallel, and
//! the resulting span tree is checked structurally:
//!
//! - exactly one root span, named `execute`, and every parent link
//!   resolves to a recorded span;
//! - children nest inside their parent's interval (within a small clock
//!   epsilon — phase timers read the monotonic clock at slightly
//!   different instants);
//! - the root's direct children run serially, so their durations sum to
//!   no more than the root's;
//! - the `phase2_scan` span reports the same `segments_scanned` /
//!   `segments_pruned` as the [`PlanInfo`] the executor returned, and the
//!   per-segment `segment_prune` point events agree with both.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use astore_core::prelude::*;
use astore_integration_tests::{ssb_sql, substitute};
use astore_obs::{Span, SpanId, TraceBuf};
use astore_sql::sql_to_query;
use astore_storage::catalog::Database;

/// Tolerance for nested timers reading the clock at different instants.
const EPS_US: u64 = 250;

fn ssb_db() -> Database {
    astore_datagen::ssb::generate(0.01, 42)
}

/// Executes `sql` with a fresh trace attached and validates the span tree
/// against the returned plan. Returns the span names seen (for coverage
/// assertions at the call site).
fn run_and_check(db: &Database, name: &str, sql: &str, opts: &ExecOptions) -> HashSet<String> {
    let trace = Arc::new(TraceBuf::new());
    let opts = opts.clone().trace(Arc::clone(&trace));
    let q = sql_to_query(sql, db).unwrap_or_else(|e| panic!("{name}: plan failed: {e}"));
    let out = execute(db, &q, &opts).unwrap_or_else(|e| panic!("{name}: exec failed: {e}"));

    assert_eq!(trace.dropped(), 0, "{name}: spans dropped at cap");
    let spans = trace.spans();
    assert!(!spans.is_empty(), "{name}: no spans recorded");

    // Unique ids; an index to chase parent links through.
    let by_id: HashMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "{name}: duplicate span ids");

    // Exactly one root, and it is the `execute` span.
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "{name}: want one root span, got {roots:?}");
    let root = roots[0];
    assert_eq!(root.name, "execute", "{name}");

    // Every parent link resolves, and children nest inside their parent.
    for s in &spans {
        if let Some(pid) = s.parent {
            let p = by_id
                .get(&pid)
                .unwrap_or_else(|| panic!("{name}: span {:?} has unknown parent", s.name));
            assert!(
                s.start_us + EPS_US >= p.start_us,
                "{name}: {} starts at {}us before parent {} at {}us",
                s.name,
                s.start_us,
                p.name,
                p.start_us
            );
            assert!(
                s.end_us() <= p.end_us() + EPS_US,
                "{name}: {} ends at {}us after parent {} at {}us",
                s.name,
                s.end_us(),
                p.name,
                p.end_us()
            );
        }
    }

    // The root's direct children are serial phases: their durations sum
    // to no more than the root's interval (morsels overlap, but those
    // nest under `phase2_scan`, not the root).
    let phases: Vec<&Span> = spans.iter().filter(|s| s.parent == Some(root.id)).collect();
    assert!(!phases.is_empty(), "{name}: root has no phase spans");
    let phase_sum: u64 = phases.iter().map(|s| s.dur_us).sum();
    assert!(
        phase_sum <= root.dur_us + EPS_US * phases.len() as u64,
        "{name}: phases sum to {phase_sum}us > execute {}us",
        root.dur_us
    );

    // The scan span's pruning attributes match the plan, and the
    // per-segment decisions match both.
    let scan = spans
        .iter()
        .find(|s| s.name == "phase2_scan")
        .unwrap_or_else(|| panic!("{name}: no phase2_scan span"));
    assert_eq!(
        scan.attr("segments_scanned"),
        Some(out.plan.segments_scanned as i64),
        "{name}: scan span vs plan"
    );
    assert_eq!(
        scan.attr("segments_pruned"),
        Some(out.plan.segments_pruned as i64),
        "{name}: scan span vs plan"
    );
    let prunes: Vec<&Span> = spans.iter().filter(|s| s.name == "segment_prune").collect();
    let kept = prunes.iter().filter(|s| s.attr("kept") == Some(1)).count();
    assert_eq!(
        prunes.len(),
        out.plan.segments_scanned + out.plan.segments_pruned,
        "{name}: one prune decision per segment"
    );
    assert_eq!(kept, out.plan.segments_scanned, "{name}: kept decisions == scanned segments");

    // The root span carries the result cardinality.
    assert_eq!(root.attr("selected_rows"), Some(out.plan.selected_rows as i64), "{name}");
    assert_eq!(root.attr("groups"), Some(out.plan.groups as i64), "{name}");

    spans.iter().map(|s| s.name.to_owned()).collect()
}

#[test]
fn all_ssb_queries_trace_well_formed_serial() {
    let db = ssb_db();
    for (name, template, params) in ssb_sql() {
        let names =
            run_and_check(&db, name, &substitute(template, &params), &ExecOptions::default());
        for want in ["bind", "phase1_leaf", "optimize", "phase2_scan", "phase3_agg"] {
            assert!(names.contains(want), "{name}: missing {want} span ({names:?})");
        }
    }
}

#[test]
fn all_ssb_queries_trace_well_formed_parallel() {
    let db = ssb_db();
    // This test pins the parallel *trace shape*, not the fan-out policy:
    // the default planner keeps the SF 0.01 fixture serial (one worker per
    // segment), so drop the floor to force the morsel executor.
    let mut opts = ExecOptions::default().threads(4);
    opts.optimizer.parallel_min_rows_per_thread = 1024;
    opts.optimizer.host_threads = 64;
    let mut saw_morsels = false;
    for (name, template, params) in ssb_sql() {
        let names = run_and_check(&db, name, &substitute(template, &params), &opts);
        saw_morsels |= names.contains("morsel");
    }
    assert!(saw_morsels, "no query produced morsel spans under --threads 4");
}
