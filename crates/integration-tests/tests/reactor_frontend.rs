//! The event-driven connection front-end, exercised over real TCP against
//! a live server: protocol robustness (frames split at arbitrary byte
//! boundaries, many frames in one write, oversized frames, slow-loris
//! half-frames) and the io-model differential — the reactor and the
//! thread-per-connection oracle must serve **byte-identical** response
//! frames for the same recorded request log.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use astore_datagen::ssb;
use astore_server::json::Json;
use astore_server::{start, Engine, IoModel, ServerConfig, ServerHandle};
use astore_storage::snapshot::SharedDatabase;

fn serve(io_model: IoModel, idle_timeout_ms: u64) -> ServerHandle {
    let db = ssb::generate(0.002, 42);
    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    start(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            io_model,
            idle_timeout_ms,
            ..Default::default()
        },
    )
    .unwrap()
}

fn read_line(stream: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    stream.read_line(&mut line).unwrap();
    line
}

#[test]
fn frames_split_at_every_byte_boundary_against_live_server() {
    let server = serve(IoModel::Reactor, 0);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let request = b"{\"sql\":\"SELECT count(*) AS c FROM date\"}\n";
    // Drip the same request one byte per write, three times over: the
    // reactor must reassemble every split identically.
    for _ in 0..3 {
        for b in request {
            stream.write_all(std::slice::from_ref(b)).unwrap();
            stream.flush().unwrap();
        }
        let resp = read_line(&mut reader);
        let frame = astore_server::json::parse(resp.trim()).unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert!(frame.get("rows").is_some(), "{resp}");
    }
    server.shutdown();
}

#[test]
fn pipelined_frames_in_one_write_answered_in_order() {
    let server = serve(IoModel::Reactor, 0);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Session statement ids are handed out sequentially, so pipelining N
    // prepare frames proves responses come back in request order: the
    // i-th response must carry stmt_id i+1. Interleave empty and
    // whitespace-only frames — both are skipped without a response.
    const N: usize = 32;
    let mut batch = String::new();
    for _ in 0..N {
        batch.push_str("{\"prepare\":\"SELECT count(*) AS c FROM date WHERE d_year = ?\"}\n");
        batch.push('\n');
        batch.push_str("   \n");
    }
    stream.write_all(batch.as_bytes()).unwrap();
    stream.flush().unwrap();
    for i in 0..N {
        let resp = read_line(&mut reader);
        let frame = astore_server::json::parse(resp.trim()).unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert_eq!(
            frame.get("stmt_id").and_then(Json::as_i64),
            Some(i as i64 + 1),
            "response {i} out of order: {resp}"
        );
    }
    // The session is intact: execute the first prepared statement.
    stream.write_all(b"{\"execute\":{\"id\":1,\"params\":[1993]}}\n").unwrap();
    let resp = read_line(&mut reader);
    let frame = astore_server::json::parse(resp.trim()).unwrap();
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    server.shutdown();
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let server = serve(IoModel::Reactor, 0);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // 1 MiB + change of newline-free garbage.
    let blob = vec![b'a'; (1 << 20) + 4096];
    stream.write_all(&blob).unwrap();
    stream.flush().unwrap();
    let resp = read_line(&mut reader);
    let frame = astore_server::json::parse(resp.trim()).unwrap();
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
    assert_eq!(frame.get("code").and_then(Json::as_str), Some("bad_request"), "{resp}");
    assert_eq!(frame.get("error").and_then(Json::as_str), Some("request exceeds 1 MiB"));
    // The server hangs up after the error frame.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "unexpected bytes after oversize error: {rest:?}");
    server.shutdown();
}

#[test]
fn slow_loris_half_frame_reaped_while_idle_connection_survives() {
    let server = serve(IoModel::Reactor, 250);
    // Connection A stalls mid-frame; connection B is connected but silent.
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    let mut idle = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(b"{\"sql\":\"SELECT co").unwrap();
    loris.flush().unwrap();
    std::thread::sleep(Duration::from_millis(1200));
    // The half-open frame was reaped: the socket reads EOF (or reset).
    loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    match loris.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("slow-loris connection still served {n} bytes"),
        Err(_) => {} // reset is an acceptable way to die
    }
    // The idle connection (no buffered bytes) was NOT reaped and still works.
    idle.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    idle.flush().unwrap();
    let resp = read_line(&mut BufReader::new(idle));
    let frame = astore_server::json::parse(resp.trim()).unwrap();
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// io-model differential: reactor vs thread-per-connection oracle.
// ---------------------------------------------------------------------------

/// A recorded request log covering the whole protocol surface: text SQL
/// (reads and writes), prepare/execute/close, malformed JSON, parse
/// errors, unknown commands, unknown statement ids, wrong parameter
/// counts. Stats/metrics frames are excluded — their payloads carry
/// clocks and counters that legitimately differ between two servers.
fn request_log() -> Vec<String> {
    let mut log: Vec<String> = vec![
        r#"{"sql":"SELECT count(*) AS c FROM date"}"#.into(),
        r#"{"sql":"SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year"}"#.into(),
        r#"{"sql":"SELEKT nonsense"}"#.into(),
        r#"this is not json"#.into(),
        r#"{"cmd":"no_such_command"}"#.into(),
        r#"{"prepare":"SELECT count(*) AS c FROM date WHERE d_year = ?"}"#.into(),
        r#"{"execute":{"id":1,"params":[1993]}}"#.into(),
        r#"{"execute":{"id":1,"params":[1994]}}"#.into(),
        r#"{"execute":{"id":1,"params":[]}}"#.into(),
        r#"{"execute":{"id":999,"params":[1]}}"#.into(),
        r#"{"sql":"UPDATE customer SET c_mktsegment = 'MACHINERY' WHERE rowid = 3"}"#.into(),
        r#"{"sql":"SELECT count(*) AS c FROM customer WHERE c_mktsegment = 'MACHINERY'"}"#.into(),
        r#"{"close":1}"#.into(),
        r#"{"close":1}"#.into(),
        r#"{"execute":{"id":1,"params":[1995]}}"#.into(),
        r#"{"prepare":"UPDATE customer SET c_mktsegment = ? WHERE rowid = ?"}"#.into(),
        r#"{"execute":{"id":2,"params":["BUILDING",5]}}"#.into(),
        r#"{"sql":""}"#.into(),
    ];
    // A few parameterized scans with rotating literals.
    for year in [1992, 1994, 1996, 1998] {
        log.push(format!(
            "{{\"sql\":\"SELECT sum(lo_extendedprice * lo_discount) AS revenue \
             FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = {year} \
             AND lo_discount BETWEEN 1 AND 3\"}}"
        ));
    }
    log
}

/// Replays the log on one connection, one frame per round trip, and
/// returns every response with its volatile `elapsed_us` stamp removed.
fn replay(addr: std::net::SocketAddr, log: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    log.iter()
        .map(|req| {
            stream.write_all(req.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            stream.flush().unwrap();
            let resp = read_line(&mut reader);
            let mut frame = astore_server::json::parse(resp.trim())
                .unwrap_or_else(|e| panic!("unparseable response to {req}: {e}"));
            if let Json::Object(m) = &mut frame {
                m.remove("elapsed_us");
            }
            frame.to_string()
        })
        .collect()
}

#[test]
fn io_models_serve_byte_identical_frames_for_recorded_log() {
    let log = request_log();
    let reactor = serve(IoModel::Reactor, 0);
    let threads = serve(IoModel::Threads, 0);
    let from_reactor = replay(reactor.addr(), &log);
    let from_threads = replay(threads.addr(), &log);
    for (i, (r, t)) in from_reactor.iter().zip(&from_threads).enumerate() {
        assert_eq!(r, t, "response {i} diverged for request {:?}", log[i]);
    }
    assert_eq!(from_reactor.len(), from_threads.len());
    reactor.shutdown();
    threads.shutdown();
}
