//! Adaptive-router differential: whatever engine the router picks — AIR,
//! hash-join, or cached denormalization — the answer must be *identical*
//! to the forced-AIR oracle.
//!
//! Three suites:
//!
//! 1. **Four-strategy 200-query differential.** The seeded SPJGA workload
//!    (shared with `prepared_differential.rs` / `scan_pruning.rs`) runs on
//!    four sessions of one engine — pinned air, pinned join, pinned
//!    denorm, and adaptive — with an aggressive explore cadence so every
//!    arm actually executes. Every frame must match the pinned-air frame.
//!
//! 2. **Concurrent writers.** A writer churns inserts/updates/deletes
//!    through the group-commit path while the adaptive session answers
//!    queries; nothing may error, and once the writer quiesces the
//!    adaptive session must agree with forced AIR again — whatever the
//!    router learned during the churn.
//!
//! 3. **Denorm staleness proof.** A session pinned to the denormalized
//!    engine must observe every committed write: the epoch check
//!    invalidates the cached wide table, and the rebuilt answer matches
//!    AIR exactly — a stale cache would keep returning the old sum.

use std::collections::HashSet;
use std::sync::Arc;

use astore_datagen::ssb;
use astore_integration_tests::random_sql;
use astore_server::json::Json;
use astore_server::{Engine, RouterConfig, StatementRegistry};
use astore_storage::snapshot::SharedDatabase;
use astore_storage::types::{RowId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sql(e: &Engine, reg: &mut StatementRegistry, s: &str) -> Json {
    e.handle_line_session(&Json::obj([("sql", Json::Str(s.into()))]).to_string(), reg)
}

/// Columns plus rows of a successful result frame, with the rows sorted by
/// their serialized form. Engines may emit groups in different orders when
/// the query has no ORDER BY; sorting canonicalizes that while every cell —
/// including float aggregates — must still match bit-for-bit.
fn canon(frame: &Json, ctx: &str) -> (Json, Vec<String>) {
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true), "{ctx}: {frame}");
    let cols = frame.get("columns").cloned().unwrap_or(Json::Array(vec![]));
    let mut rows: Vec<String> = frame
        .get("rows")
        .and_then(Json::as_array)
        .map(|rs| rs.iter().map(Json::to_string).collect())
        .unwrap_or_default();
    rows.sort_unstable();
    (cols, rows)
}

/// One engine over a small SSB set, with an explore cadence aggressive
/// enough that a 200-query run exercises every arm.
fn router_engine(sf: f64, seed: u64) -> (Arc<Engine>, SharedDatabase) {
    let shared = SharedDatabase::new(ssb::generate(sf, seed));
    let engine = Engine::new(shared.clone()).router_config(RouterConfig {
        epsilon_n: 2,
        warmup: 1,
        ..RouterConfig::default()
    });
    (Arc::new(engine), shared)
}

/// A session pinned to `engine` ("air" | "join" | "denorm" | "auto").
fn pinned_session(e: &Engine, engine: &str) -> StatementRegistry {
    let mut reg = StatementRegistry::default();
    let r = sql(e, &mut reg, &format!("SET engine = {engine}"));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(r.get("engine").and_then(Json::as_str), Some(engine), "{r}");
    reg
}

#[test]
fn four_strategies_agree_on_200_seeded_queries() {
    let (e, _shared) = router_engine(0.002, 20260808);
    let mut air = pinned_session(&e, "air");
    let mut join = pinned_session(&e, "join");
    let mut denorm = pinned_session(&e, "denorm");
    let mut auto = pinned_session(&e, "auto");

    let mut rng = SmallRng::seed_from_u64(0x407E5);
    let mut engines_seen: HashSet<String> = HashSet::new();
    let mut nonempty = 0usize;
    for q in 0..200 {
        let stmt = random_sql(&mut rng).literal_sql();
        let oracle = canon(&sql(&e, &mut air, &stmt), &format!("query {q} pinned air\n{stmt}"));
        for (name, reg) in [("join", &mut join), ("denorm", &mut denorm), ("auto", &mut auto)] {
            let frame = sql(&e, reg, &stmt);
            let got = canon(&frame, &format!("query {q} {name}\n{stmt}"));
            assert_eq!(got, oracle, "query {q}: {name} diverged from forced AIR\n{stmt}");
            if name == "auto" {
                if let Some(engine) = frame.get("engine").and_then(Json::as_str) {
                    engines_seen.insert(engine.to_owned());
                }
            }
        }
        if !oracle.1.is_empty() {
            nonempty += 1;
        }
    }
    assert!(nonempty >= 100, "only {nonempty}/200 queries returned rows; generator too weak");
    assert!(
        engines_seen.len() >= 2,
        "the adaptive session never left one engine: {engines_seen:?}"
    );
}

/// Renders one storage value as a SQL literal.
fn lit(v: &Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Key(k) => k.to_string(),
        Value::Null => "NULL".into(),
    }
}

/// A random committed write against `lineorder` (insert cloned from a live
/// row, measure/date update, or delete).
fn random_write(rng: &mut SmallRng, db: &astore_storage::catalog::Database) -> String {
    let lo = db.table("lineorder").unwrap();
    let n_dates = db.table("date").unwrap().num_slots() as i64;
    let live: Vec<RowId> = (0..lo.num_slots() as RowId).filter(|&r| lo.is_live(r)).collect();
    let pick = live[rng.gen_range(0..live.len())];
    match rng.gen_range(0..5u32) {
        0 | 1 => {
            let mut row = lo.row(pick);
            row[5] = Value::Key(rng.gen_range(0..n_dates) as u32);
            row[12] = Value::Int(rng.gen_range(100..100_000i64));
            let vals: Vec<String> = row.iter().map(lit).collect();
            format!("INSERT INTO lineorder VALUES ({})", vals.join(", "))
        }
        2 => format!(
            "UPDATE lineorder SET lo_revenue = {} WHERE rowid = {pick}",
            rng.gen_range(0..1_000_000i64)
        ),
        3 => format!(
            "UPDATE lineorder SET lo_quantity = {} WHERE rowid = {pick}",
            rng.gen_range(1..=50i64)
        ),
        _ if live.len() > 100 => format!("DELETE FROM lineorder WHERE rowid = {pick}"),
        _ => format!("UPDATE lineorder SET lo_shipmode = 'AIR' WHERE rowid = {pick}"),
    }
}

#[test]
fn adaptive_session_survives_concurrent_writers_and_reconverges() {
    let (e, shared) = router_engine(0.002, 20260807);
    let mut auto = pinned_session(&e, "auto");

    // Phase 1: writers churn while the adaptive session answers queries.
    // Results cannot be compared to an oracle mid-churn (each statement
    // legally sees a different snapshot) — but nothing may error, and every
    // engine the router picks must still answer.
    std::thread::scope(|s| {
        let writer_engine = Arc::clone(&e);
        let writer_shared = shared.clone();
        s.spawn(move || {
            let mut reg = StatementRegistry::default();
            let mut rng = SmallRng::seed_from_u64(0xA11_0C8);
            for w in 0..150 {
                let stmt = random_write(&mut rng, &writer_shared.snapshot());
                let r = sql(&writer_engine, &mut reg, &stmt);
                assert_eq!(
                    r.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "write {w} failed: {r}\n{stmt}"
                );
            }
        });
        let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE);
        for q in 0..100 {
            let stmt = random_sql(&mut rng).literal_sql();
            let r = sql(&e, &mut auto, &stmt);
            assert_eq!(
                r.get("ok").and_then(Json::as_bool),
                Some(true),
                "query {q} failed under churn: {r}\n{stmt}"
            );
        }
    });

    // Phase 2: quiesced. Whatever latencies the router learned during the
    // churn, the adaptive session must still agree with forced AIR.
    let mut air = pinned_session(&e, "air");
    let mut rng = SmallRng::seed_from_u64(0xF17A1);
    for q in 0..40 {
        let stmt = random_sql(&mut rng).literal_sql();
        let oracle = canon(&sql(&e, &mut air, &stmt), &format!("post-churn {q} air\n{stmt}"));
        let got = canon(&sql(&e, &mut auto, &stmt), &format!("post-churn {q} auto\n{stmt}"));
        assert_eq!(got, oracle, "post-churn query {q}: adaptive diverged\n{stmt}");
    }
}

#[test]
fn pinned_denorm_observes_every_committed_write() {
    let (e, _shared) = router_engine(0.001, 20260806);
    let mut air = pinned_session(&e, "air");
    let mut denorm = pinned_session(&e, "denorm");
    let mut writer = StatementRegistry::default();
    const Q: &str = "SELECT d_year, sum(lo_revenue) AS rev FROM lineorder, date \
                     WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year";

    let before = canon(&sql(&e, &mut denorm, Q), "denorm before write");
    assert_eq!(before, canon(&sql(&e, &mut air, Q), "air before write"));

    // A committed write the cached wide table cannot contain.
    let r = sql(&e, &mut writer, "UPDATE lineorder SET lo_revenue = 987654321 WHERE rowid = 0");
    assert_eq!(r.get("rows_affected").and_then(Json::as_i64), Some(1), "{r}");

    let after = canon(&sql(&e, &mut denorm, Q), "denorm after write");
    assert_eq!(
        after,
        canon(&sql(&e, &mut air, Q), "air after write"),
        "denormalized answer is stale after a committed write"
    );
    assert_ne!(before.1, after.1, "the write must change the sum for this proof to bite");
}
