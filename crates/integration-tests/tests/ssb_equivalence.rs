//! Cross-engine equivalence on the Star Schema Benchmark: every SSB query
//! must produce identical results across all five AIRScan variants, the
//! parallel executor, the hash-join pipeline engine, the materialized
//! denormalization engine, and the forced-hash aggregation path.

use astore_baseline::denorm::denormalize;
use astore_baseline::engine::execute_hash_pipeline;
use astore_core::optimizer::{AggStrategy, OptimizerConfig};
use astore_core::prelude::*;
use astore_datagen::ssb;
use astore_storage::catalog::Database;

fn db() -> Database {
    ssb::generate(0.004, 42)
}

#[test]
fn all_variants_agree_on_all_ssb_queries() {
    let db = db();
    for sq in ssb::queries() {
        let reference = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        for v in ScanVariant::ALL {
            let out = execute(&db, &sq.query, &ExecOptions::with_variant(v)).unwrap();
            assert!(
                out.result.same_contents(&reference.result, 1e-6),
                "{}: variant {} diverged",
                sq.id,
                v.paper_name()
            );
        }
    }
}

#[test]
fn parallel_agrees_on_all_ssb_queries() {
    let db = db();
    // Forced fan-out: the test-sized dataset sits below the default planner
    // threshold, and a clamped-to-serial run would compare serial to serial.
    let mut popts = ExecOptions::default().threads(4);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    for sq in ssb::queries() {
        let serial = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let parallel = execute(&db, &sq.query, &popts).unwrap();
        // Serial is only legitimate when zone maps pruned every segment.
        assert!(
            parallel.plan.executor.is_parallel() || parallel.plan.segments_scanned == 0,
            "{}: fell back to serial with unpruned segments",
            sq.id
        );
        assert!(
            parallel.result.same_contents(&serial.result, 1e-6),
            "{}: parallel diverged",
            sq.id
        );
        assert_eq!(parallel.plan.selected_rows, serial.plan.selected_rows, "{}", sq.id);
    }
}

#[test]
fn hash_pipeline_agrees_on_all_ssb_queries() {
    let db = db();
    for sq in ssb::queries() {
        let air = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let hash = execute_hash_pipeline(&db, &sq.query).unwrap();
        assert!(
            hash.result.same_contents(&air.result, 1e-6),
            "{}: hash pipeline diverged\nair: {:?}\nhash: {:?}",
            sq.id,
            air.result.rows.len(),
            hash.result.rows.len()
        );
        assert_eq!(hash.selected_rows, air.plan.selected_rows, "{}", sq.id);
    }
}

#[test]
fn denormalized_engine_agrees_on_all_ssb_queries() {
    let db = db();
    let wide = denormalize(&db, Some("lineorder")).unwrap();
    for sq in ssb::queries() {
        let air = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let wq = wide.rewrite(&sq.query, "lineorder");
        let den = execute(&wide.db, &wq, &ExecOptions::default()).unwrap();
        assert!(
            den.result.same_contents(&air.result, 1e-6),
            "{}: denormalized engine diverged",
            sq.id
        );
    }
}

#[test]
fn agg_strategies_agree_on_all_ssb_queries() {
    let db = db();
    for sq in ssb::queries() {
        let dense = execute(
            &db,
            &sq.query,
            &ExecOptions { force_agg: Some(AggStrategy::DenseArray), ..Default::default() },
        )
        .unwrap();
        let hashed = execute(
            &db,
            &sq.query,
            &ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() },
        )
        .unwrap();
        assert!(
            dense.result.same_contents(&hashed.result, 1e-6),
            "{}: dense vs hash aggregation diverged",
            sq.id
        );
    }
}

#[test]
fn starved_cache_budget_agrees() {
    // With a 0-byte budget every chain is probed directly; results must not
    // change (only the plan does).
    let db = db();
    let starved = ExecOptions {
        optimizer: OptimizerConfig { cache_budget_bytes: 0, ..Default::default() },
        ..Default::default()
    };
    for sq in ssb::queries() {
        let normal = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        let direct = execute(&db, &sq.query, &starved).unwrap();
        assert_eq!(direct.plan.predvec_chains, 0, "{}: budget 0 must disable filters", sq.id);
        assert!(
            direct.result.same_contents(&normal.result, 1e-6),
            "{}: direct probing diverged",
            sq.id
        );
    }
}

#[test]
fn starjoin_counts_match_full_query_selectivity() {
    let db = db();
    for (full, star) in ssb::queries().iter().zip(ssb::starjoin_queries()) {
        let f = execute(&db, &full.query, &ExecOptions::default()).unwrap();
        let s = execute(&db, &star.query, &ExecOptions::default()).unwrap();
        // The count-only reduction selects the same tuples.
        assert_eq!(
            s.plan.selected_rows, f.plan.selected_rows,
            "{}: star-join reduction changed selectivity",
            full.id
        );
    }
}

#[test]
fn group_sums_equal_global_sum() {
    // Aggregation invariant: the per-group revenue sums of Q3.1 must add up
    // to the revenue sum of its count-only/no-group variant.
    let db = db();
    let q31 = &ssb::queries()[6].query;
    let grouped = execute(&db, q31, &ExecOptions::default()).unwrap();
    let mut global = q31.clone();
    global.group_by.clear();
    global.order_by.clear();
    let global_out = execute(&db, &global, &ExecOptions::default()).unwrap();

    let group_total: f64 = grouped
        .result
        .rows
        .iter()
        .map(|r| match r.last().unwrap() {
            astore_storage::types::Value::Float(f) => *f,
            other => panic!("unexpected {other:?}"),
        })
        .sum();
    let global_total = match &global_out.result.rows[0][0] {
        astore_storage::types::Value::Float(f) => *f,
        other => panic!("unexpected {other:?}"),
    };
    assert!(
        (group_total - global_total).abs() < 1e-6 * (1.0 + global_total.abs()),
        "group sums {group_total} != global {global_total}"
    );
}
