//! Property-based tests (proptest): on randomly generated star schemas
//! with random predicates, deletes and groupings, every execution strategy
//! must agree with every other — the AIR engine is cross-checked against
//! itself (all variants, serial and parallel, dense and hash aggregation)
//! and against the hash-join pipeline engine.

use proptest::prelude::*;

use astore_baseline::engine::execute_hash_pipeline;
use astore_core::optimizer::AggStrategy;
use astore_core::prelude::*;
use astore_storage::prelude::*;

/// A generated star schema instance plus a query over it.
#[derive(Debug, Clone)]
struct Case {
    dim_a_rows: Vec<(i32, String)>,  // (a_flag, a_cat ∈ {c0..c3})
    dim_b_rows: Vec<i32>,            // b_val
    fact: Vec<(u32, u32, i64, i32)>, // (fk_a, fk_b possibly NULL, measure, tag)
    pred_flag_max: i32,
    pred_bval_min: i32,
    group_on_cat: bool,
    group_on_tag: bool,
    deletes: Vec<(u8, u32)>, // (table selector, row)
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let dim_a = prop::collection::vec((0..4i32, 0..4u8), 1..24)
        .prop_map(|v| v.into_iter().map(|(f, c)| (f, format!("c{c}"))).collect::<Vec<_>>());
    let dim_b = prop::collection::vec(-10..10i32, 1..16);
    (dim_a, dim_b).prop_flat_map(|(da, db)| {
        let na = da.len() as u32;
        let nb = db.len() as u32;
        let fact =
            prop::collection::vec((0..na, prop::option::of(0..nb), -100..100i64, 0..3i32), 0..200)
                .prop_map(move |rows| {
                    rows.into_iter()
                        .map(|(a, b, m, t)| (a, b.unwrap_or(NULL_KEY), m, t))
                        .collect::<Vec<_>>()
                });
        let deletes = prop::collection::vec((0..3u8, 0..64u32), 0..10);
        (Just(da), Just(db), fact, 0..5i32, -11..11i32, any::<bool>(), any::<bool>(), deletes)
            .prop_map(|(da, db, fact, pf, pb, gc, gt, deletes)| Case {
                dim_a_rows: da,
                dim_b_rows: db,
                fact,
                pred_flag_max: pf,
                pred_bval_min: pb,
                group_on_cat: gc,
                group_on_tag: gt,
                deletes,
            })
    })
}

fn build(case: &Case) -> (Database, Query) {
    let mut dim_a = Table::new(
        "dim_a",
        Schema::new(vec![
            ColumnDef::new("a_flag", DataType::I32),
            ColumnDef::new("a_cat", DataType::Dict),
        ]),
    );
    for (f, c) in &case.dim_a_rows {
        dim_a.append_row(&[Value::Int(i64::from(*f)), Value::Str(c.clone())]);
    }
    let mut dim_b = Table::new("dim_b", Schema::new(vec![ColumnDef::new("b_val", DataType::I32)]));
    for v in &case.dim_b_rows {
        dim_b.append_row(&[Value::Int(i64::from(*v))]);
    }
    let mut fact = Table::new(
        "fact",
        Schema::new(vec![
            ColumnDef::new("f_a", DataType::Key { target: "dim_a".into() }),
            ColumnDef::new("f_b", DataType::Key { target: "dim_b".into() }),
            ColumnDef::new("f_m", DataType::I64),
            ColumnDef::new("f_tag", DataType::I32),
        ]),
    );
    for (a, b, m, t) in &case.fact {
        fact.append_row(&[
            Value::Key(*a),
            Value::Key(*b),
            Value::Int(*m),
            Value::Int(i64::from(*t)),
        ]);
    }
    let mut db = Database::new();
    db.add_table(dim_a);
    db.add_table(dim_b);
    db.add_table(fact);

    // Apply deletes (modulo each table's size).
    for (sel, row) in &case.deletes {
        let name = match sel % 3 {
            0 => "dim_a",
            1 => "dim_b",
            _ => "fact",
        };
        let n = db.table(name).unwrap().num_slots() as u32;
        if n > 0 {
            db.table_mut(name).unwrap().delete(row % n);
        }
    }

    let mut q = Query::new()
        .root("fact")
        .filter("dim_a", Pred::cmp("a_flag", CmpOp::Le, case.pred_flag_max))
        .filter("dim_b", Pred::cmp("b_val", CmpOp::Ge, case.pred_bval_min))
        .agg(Aggregate::sum(MeasureExpr::col("f_m"), "total"))
        .agg(Aggregate::count("n"))
        .agg(Aggregate::min(MeasureExpr::col("f_m"), "lo"))
        .agg(Aggregate::max(MeasureExpr::col("f_m"), "hi"));
    if case.group_on_cat {
        q = q.group("dim_a", "a_cat");
    }
    if case.group_on_tag {
        q = q.group("fact", "f_tag");
    }
    (db, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_execution_strategies_agree(case in case_strategy()) {
        let (db, q) = build(&case);
        let reference = execute(&db, &q, &ExecOptions::default()).unwrap();

        for v in ScanVariant::ALL {
            let out = execute(&db, &q, &ExecOptions::with_variant(v)).unwrap();
            prop_assert!(
                out.result.same_contents(&reference.result, 1e-9),
                "variant {} diverged", v.paper_name()
            );
        }
        // Forced fan-out: generated fixtures are tiny, and the default
        // planner would (correctly, but uselessly here) stay serial.
        let mut popts = ExecOptions::default().threads(3);
        popts.optimizer.parallel_min_rows_per_thread = 1;
        popts.optimizer.host_threads = 64;
        let par = execute(&db, &q, &popts).unwrap();
        prop_assert!(par.plan.executor.is_parallel(), "parallel executor did not run");
        prop_assert!(par.result.same_contents(&reference.result, 1e-9), "parallel diverged");

        let hashed = execute(
            &db,
            &q,
            &ExecOptions { force_agg: Some(AggStrategy::HashTable), ..Default::default() },
        )
        .unwrap();
        prop_assert!(hashed.result.same_contents(&reference.result, 1e-9), "hash agg diverged");

        let pipeline = execute_hash_pipeline(&db, &q).unwrap();
        prop_assert!(
            pipeline.result.same_contents(&reference.result, 1e-9),
            "hash pipeline diverged"
        );
    }

    #[test]
    fn denormalization_preserves_results(case in case_strategy()) {
        let (db, q) = build(&case);
        let reference = execute(&db, &q, &ExecOptions::default()).unwrap();
        let wide = astore_baseline::denorm::denormalize(&db, Some("fact")).unwrap();
        let wq = wide.rewrite(&q, "fact");
        let den = execute(&wide.db, &wq, &ExecOptions::default()).unwrap();
        prop_assert!(
            den.result.same_contents(&reference.result, 1e-9),
            "denormalized engine diverged: {:?} vs {:?}", den.result.rows, reference.result.rows
        );
    }

    #[test]
    fn consolidation_preserves_query_results(case in case_strategy()) {
        let (mut db, q) = build(&case);
        let before = execute(&db, &q, &ExecOptions::default()).unwrap();
        // Consolidating the fact table must not change any result (dim
        // consolidation with dangling fact references legitimately changes
        // results by nulling them, so we compact the root only).
        db.consolidate("fact");
        let after = execute(&db, &q, &ExecOptions::default()).unwrap();
        prop_assert!(
            after.result.same_contents(&before.result, 1e-9),
            "fact consolidation changed results"
        );
    }
}

#[test]
fn selection_vector_equals_bitmap_filter_semantics() {
    use astore_storage::bitmap::Bitmap;
    use astore_storage::selvec::SelVec;
    // SelVec refinement must equal bitmap AND-chains for arbitrary masks.
    proptest!(|(bits in prop::collection::vec(any::<bool>(), 1..200),
                bits2 in prop::collection::vec(any::<bool>(), 1..200))| {
        let n = bits.len().min(bits2.len());
        let bm1 = Bitmap::from_fn(n, |i| bits[i]);
        let bm2 = Bitmap::from_fn(n, |i| bits2[i]);
        let mut sv = SelVec::all(n);
        sv.refine(|r| bm1.get(r as usize));
        sv.refine(|r| bm2.get(r as usize));
        let mut anded = bm1.clone();
        anded.and_assign(&bm2);
        prop_assert_eq!(sv, SelVec::from_bitmap(&anded));
    });
}
