//! Concurrent snapshot semantics, end to end.
//!
//! Two levels: (1) raw `SharedDatabase` — readers taking snapshots while a
//! writer churns rows must never observe a torn row (a multi-field
//! invariant violated mid-write); (2) the TCP server — SSB Q1.1 answers
//! during an update burst must always correspond to a whole number of
//! atomically applied insert batches, never a partial one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use astore_core::exec::ExecOptions;
use astore_persist::store;
use astore_server::json::Json;
use astore_server::{start, Client, Durability, Engine, ServerConfig};
use astore_storage::prelude::*;

/// Level 1: writers maintain the invariant `b == 2 * a` in every row,
/// restoring it only within a single `write` call. A reader that ever sees
/// the invariant broken has observed a torn write.
#[test]
fn readers_never_observe_torn_rows() {
    let mut t = Table::new(
        "pair",
        Schema::new(vec![ColumnDef::new("a", DataType::I64), ColumnDef::new("b", DataType::I64)]),
    );
    for i in 0..8i64 {
        t.append_row(&[Value::Int(i), Value::Int(2 * i)]);
    }
    let mut db = Database::new();
    db.add_table(t);
    let shared = SharedDatabase::new(db);

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            s.spawn(move || {
                for i in 8..400i64 {
                    // One write call: insert a fresh pair AND rewrite an
                    // existing row. Both sides keep b == 2a; a snapshot
                    // taken between the two `update` calls would not.
                    shared.write(|db| {
                        let t = db.table_mut("pair").unwrap();
                        t.insert(&[Value::Int(i), Value::Int(2 * i)]);
                        let victim = (i % 8) as RowId;
                        t.update(victim, "a", &Value::Int(i * 10));
                        t.update(victim, "b", &Value::Int(i * 20));
                    });
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for _ in 0..3 {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut checked = 0usize;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let snap = shared.snapshot();
                    let t = snap.table("pair").unwrap();
                    for row in 0..t.num_slots() as RowId {
                        if !t.is_live(row) {
                            continue;
                        }
                        let vals = t.row(row);
                        let (Value::Int(a), Value::Int(b)) = (&vals[0], &vals[1]) else {
                            panic!("unexpected types in row {row}: {vals:?}");
                        };
                        assert_eq!(*b, 2 * a, "torn row {row}: a={a} b={b}");
                        checked += 1;
                    }
                    if finished {
                        break;
                    }
                }
                assert!(checked > 0);
            });
        }
    });
    assert_eq!(shared.snapshot().table("pair").unwrap().num_live(), 400);
}

/// Level 2: the served Q1.1 answer mid-burst is always `base + k * DELTA`
/// for a whole `k` — each burst is one multi-row INSERT, and the engine
/// promises readers see all of a write call or none of it.
#[test]
fn server_q11_consistent_mid_update_burst() {
    const BURSTS: usize = 25;
    const ROWS_PER_BURST: usize = 4;
    // Every inserted row matches the Q1.1 predicate and contributes
    // lo_extendedprice * lo_discount = 1000 * 2 to the aggregate.
    const ROW_DELTA: i64 = 2000;
    const BURST_DELTA: i64 = ROW_DELTA * ROWS_PER_BURST as i64;

    let db = astore_datagen::ssb::generate(0.002, 42);
    // A date key with d_year = 1993, found by scanning the dimension.
    let date = db.table("date").unwrap();
    let year_col = date.schema().defs().iter().position(|d| d.name == "d_year").unwrap();
    let d1993 = (0..date.num_slots() as RowId)
        .find(|&r| date.row(r)[year_col] == Value::Int(1993))
        .expect("SSB date table covers 1993");

    let engine = Arc::new(Engine::new(SharedDatabase::new(db)));
    let h = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let addr = h.addr();

    const Q11: &str = "SELECT sum(lo_extendedprice * lo_discount) AS revenue \
                       FROM lineorder, date \
                       WHERE lo_orderdate = d_datekey AND d_year = 1993 \
                         AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25";
    let revenue = |c: &mut Client| -> i64 {
        let r = c.sql(Q11).expect("q1.1 failed");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0]
            .as_i64()
            .expect("integral revenue")
    };

    let mut probe = Client::connect(addr).unwrap();
    let base = revenue(&mut probe);

    let burst_row = format!(
        "(999999, 1, 0, 0, 0, {d1993}, '1-URGENT', 0, 10, 1000, 1000, 2, 980, 500, 0, {d1993}, 'AIR')"
    );
    let burst_sql =
        format!("INSERT INTO lineorder VALUES {}", vec![burst_row; ROWS_PER_BURST].join(", "));

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let done = Arc::clone(&done);
            let burst_sql = burst_sql.clone();
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..BURSTS {
                    let r = c.sql(&burst_sql).expect("burst failed");
                    assert_eq!(
                        r.get("rows_affected").and_then(Json::as_i64),
                        Some(ROWS_PER_BURST as i64),
                        "{r:?}"
                    );
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for _ in 0..3 {
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut observed = 0usize;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let rev = revenue(&mut c);
                    let delta = rev - base;
                    assert!(
                        delta >= 0 && delta % BURST_DELTA == 0,
                        "reader saw a partial burst: base={base} rev={rev} delta={delta}"
                    );
                    assert!(delta <= BURSTS as i64 * BURST_DELTA, "overshoot: {delta}");
                    observed += 1;
                    if finished {
                        break;
                    }
                }
                assert!(observed > 0);
            });
        }
    });

    assert_eq!(revenue(&mut probe), base + BURSTS as i64 * BURST_DELTA);
    let stats = probe.stats().unwrap();
    assert_eq!(stats.get("errors").and_then(Json::as_i64), Some(0), "{stats:?}");
    assert!(stats.get("cache_hits").and_then(Json::as_i64).unwrap() > 0, "plan cache exercised");
    h.shutdown();
}

/// Level 2b: the same torn-burst invariant with *intra-query parallelism
/// on* (`--engine-threads`-equivalent): a mixed read burst where big scans
/// fan out across the morsel dispatcher while an update burst churns the
/// fact table. Every Q1.1 answer must still correspond to a whole number of
/// atomically applied bursts — parallel workers scan one copy-on-write
/// snapshot, so a torn read here would mean a morsel crossed snapshots.
#[test]
fn server_parallel_reads_consistent_mid_update_burst() {
    const BURSTS: usize = 25;
    const ROWS_PER_BURST: usize = 4;
    const ROW_DELTA: i64 = 2000; // lo_extendedprice(1000) * lo_discount(2)
    const BURST_DELTA: i64 = ROW_DELTA * ROWS_PER_BURST as i64;

    let db = astore_datagen::ssb::generate(0.002, 42);
    let date = db.table("date").unwrap();
    let year_col = date.schema().defs().iter().position(|d| d.name == "d_year").unwrap();
    let d1993 = (0..date.num_slots() as RowId)
        .find(|&r| date.row(r)[year_col] == Value::Int(1993))
        .expect("SSB date table covers 1993");

    // Fan-out ceiling 4; thresholds lowered so the SF 0.002 fact table
    // (12K rows) fans out, with small morsels for real dispatcher traffic.
    // Core budget 8 covers the statement workers' baseline permits with
    // room for extra engine threads even on a small CI box.
    let mut opts = ExecOptions::default().threads(4).morsel_rows(512);
    opts.optimizer.parallel_min_rows_per_thread = 64;
    opts.optimizer.host_threads = 64;
    let engine = Arc::new(Engine::with_options(SharedDatabase::new(db), opts).core_budget(8));
    let h = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let addr = h.addr();

    const Q11: &str = "SELECT sum(lo_extendedprice * lo_discount) AS revenue \
                       FROM lineorder, date \
                       WHERE lo_orderdate = d_datekey AND d_year = 1993 \
                         AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25";
    let revenue = |c: &mut Client| -> i64 {
        let r = c.sql(Q11).expect("q1.1 failed");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0]
            .as_i64()
            .expect("integral revenue")
    };

    let mut probe = Client::connect(addr).unwrap();
    let base = revenue(&mut probe);

    let burst_row = format!(
        "(999999, 1, 0, 0, 0, {d1993}, '1-URGENT', 0, 10, 1000, 1000, 2, 980, 500, 0, {d1993}, 'AIR')"
    );
    let burst_sql =
        format!("INSERT INTO lineorder VALUES {}", vec![burst_row; ROWS_PER_BURST].join(", "));

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let done = Arc::clone(&done);
            let burst_sql = burst_sql.clone();
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..BURSTS {
                    let r = c.sql(&burst_sql).expect("burst failed");
                    assert_eq!(
                        r.get("rows_affected").and_then(Json::as_i64),
                        Some(ROWS_PER_BURST as i64),
                        "{r:?}"
                    );
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for _ in 0..3 {
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut observed = 0usize;
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let rev = revenue(&mut c);
                    let delta = rev - base;
                    assert!(
                        delta >= 0 && delta % BURST_DELTA == 0,
                        "parallel reader saw a partial burst: base={base} rev={rev} delta={delta}"
                    );
                    assert!(delta <= BURSTS as i64 * BURST_DELTA, "overshoot: {delta}");
                    observed += 1;
                    if finished {
                        break;
                    }
                }
                assert!(observed > 0);
            });
        }
    });

    assert_eq!(revenue(&mut probe), base + BURSTS as i64 * BURST_DELTA);
    let stats = probe.stats().unwrap();
    assert_eq!(stats.get("errors").and_then(Json::as_i64), Some(0), "{stats:?}");
    assert!(
        stats.get("parallel_queries").and_then(Json::as_i64).unwrap() > 0,
        "no query ever ran on the parallel executor — the suite proved nothing: {stats:?}"
    );
    assert_eq!(
        stats.get("core_budget_in_use").and_then(Json::as_i64),
        Some(0),
        "every permit must be back in the pool once the burst is over: {stats:?}"
    );
    h.shutdown();
}

/// Level 3: a durable server killed mid-flight and rebooted from its
/// `--data-dir` must serve a Q1.1 answer reflecting *every acknowledged
/// write* — without regenerating the dataset. The kill is SIGKILL-equivalent
/// for the on-disk state: no checkpoint, no graceful flush beyond the
/// per-statement fsync that already happened before each acknowledgment.
#[test]
fn server_restart_from_data_dir_preserves_every_acknowledged_write() {
    const BURSTS: usize = 20;
    const ROWS_PER_BURST: usize = 3;
    const ROW_DELTA: i64 = 2000; // lo_extendedprice(1000) * lo_discount(2)
    const Q11: &str = "SELECT sum(lo_extendedprice * lo_discount) AS revenue \
                       FROM lineorder, date \
                       WHERE lo_orderdate = d_datekey AND d_year = 1993 \
                         AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25";

    let dir = std::env::temp_dir().join(format!("astore-it-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let db = astore_datagen::ssb::generate(0.002, 42);
    let seed_fact_rows = db.table("lineorder").unwrap().num_live();
    let date = db.table("date").unwrap();
    let year_col = date.schema().defs().iter().position(|d| d.name == "d_year").unwrap();
    let d1993 = (0..date.num_slots() as RowId)
        .find(|&r| date.row(r)[year_col] == Value::Int(1993))
        .expect("SSB date table covers 1993");

    let revenue = |c: &mut Client| -> i64 {
        let r = c.sql(Q11).expect("q1.1 failed");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        r.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0]
            .as_i64()
            .expect("integral revenue")
    };
    let burst_row = format!(
        "(999999, 1, 0, 0, 0, {d1993}, '1-URGENT', 0, 10, 1000, 1000, 2, 980, 500, 0, {d1993}, 'AIR')"
    );
    let burst_sql =
        format!("INSERT INTO lineorder VALUES {}", vec![burst_row; ROWS_PER_BURST].join(", "));

    // ---- First life: durable boot, acknowledged update burst, kill. ----
    let wal = store::bootstrap(&dir, &db).unwrap();
    let engine =
        Arc::new(Engine::new(SharedDatabase::new(db)).durable(Durability::new(&dir, wal, 0)));
    let h = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let (base, acked) = {
        let mut c = Client::connect(h.addr()).unwrap();
        let base = revenue(&mut c);
        let mut acked = 0i64;
        for _ in 0..BURSTS {
            let r = c.sql(&burst_sql).expect("burst failed");
            assert_eq!(
                r.get("rows_affected").and_then(Json::as_i64),
                Some(ROWS_PER_BURST as i64),
                "{r:?}"
            );
            // Only count writes the server acknowledged (all of them here;
            // the durability contract is about exactly these).
            acked += 1;
        }
        (base, acked)
    };
    // SIGKILL-equivalent: tear the process-level state down with no
    // checkpoint; the only surviving truth is the data directory.
    h.shutdown();

    // ---- Second life: recover from disk, serve, verify. ----
    let rec = store::open(&dir).unwrap();
    assert_eq!(rec.replayed as i64, acked, "every acknowledged burst is in the WAL");
    let engine = Arc::new(
        Engine::new(SharedDatabase::new(rec.db)).durable(Durability::new(&dir, rec.wal, 0)),
    );
    let h = start(
        engine,
        ServerConfig { addr: "127.0.0.1:0".into(), queue_depth: 64, ..Default::default() },
    )
    .unwrap();
    let mut c = Client::connect(h.addr()).unwrap();
    assert_eq!(
        revenue(&mut c),
        base + acked * ROWS_PER_BURST as i64 * ROW_DELTA,
        "restarted server must reflect every acknowledged write"
    );
    // Writes keep working after recovery, and LSNs keep rising.
    let r = c.sql(&burst_sql).expect("post-restart write");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    let r = c.request(&Json::obj([("cmd", Json::Str("checkpoint".into()))])).unwrap();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    assert!(r.get("lsn").and_then(Json::as_i64).unwrap() > acked, "{r:?}");
    h.shutdown();

    // ---- Third life: checkpointed boot replays nothing. ----
    let rec = store::open(&dir).unwrap();
    assert_eq!(rec.replayed, 0, "checkpoint folded the WAL into the snapshot");
    assert_eq!(
        rec.db.table("lineorder").unwrap().num_live(),
        seed_fact_rows + (acked as usize + 1) * ROWS_PER_BURST,
        "all bursts present in the snapshot"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
