//! Zone-map segmentation differential: the segmented, data-skipping scan
//! must be *observationally identical* to the pre-segmentation flat scan —
//! on the static SSB workload, and under a seeded interleaving of
//! INSERT/UPDATE/DELETE with queries (the writes exercise incremental
//! zone-map maintenance: widening on update, live-count decay on delete,
//! slot reuse on insert). The unsegmented oracle is the same engine with
//! `ExecOptions::pruning(false)`, which scans every segment flat.
//!
//! The SPJGA workload generator is shared with `prepared_differential.rs`
//! (see `astore_integration_tests`), so both suites cover the same query
//! space: 200 seeded queries here, interleaved with 200 seeded writes.

use astore_api::{Connection, EmbeddedConnection, Row, Rows};
use astore_core::prelude::*;
use astore_datagen::ssb;
use astore_integration_tests::random_sql;
use astore_storage::snapshot::SharedDatabase;
use astore_storage::types::{RowId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn to_result(rows: Rows) -> QueryResult {
    let columns = rows.columns().to_vec();
    QueryResult { columns, rows: rows.map(Row::into_values).collect() }
}

/// Renders one storage value as a SQL literal.
fn lit(v: &Value) -> String {
    match v {
        Value::Int(x) => x.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Key(k) => k.to_string(),
        Value::Null => "NULL".into(),
    }
}

/// A random committed write against `lineorder`: a fresh insert cloned from
/// a live row (measures perturbed, order date re-rolled — widening the
/// target segment's zones), an in-place measure/key/dict update, or a
/// delete. Returns the SQL to apply identically to both databases.
fn random_write(rng: &mut SmallRng, db: &astore_storage::catalog::Database) -> String {
    let lo = db.table("lineorder").unwrap();
    let n_dates = db.table("date").unwrap().num_slots() as i64;
    let live: Vec<RowId> = (0..lo.num_slots() as RowId).filter(|&r| lo.is_live(r)).collect();
    let pick = live[rng.gen_range(0..live.len())];
    match rng.gen_range(0..6u32) {
        0 | 1 => {
            let mut row = lo.row(pick);
            // lo_orderdate is column 5; re-roll it so the insert lands a
            // date far from its segment's cluster (zone widening).
            row[5] = Value::Key(rng.gen_range(0..n_dates) as u32);
            // lo_revenue is column 12; perturb the measure.
            row[12] = Value::Int(rng.gen_range(100..100_000i64));
            let vals: Vec<String> = row.iter().map(lit).collect();
            format!("INSERT INTO lineorder VALUES ({})", vals.join(", "))
        }
        2 => format!(
            "UPDATE lineorder SET lo_revenue = {} WHERE rowid = {pick}",
            rng.gen_range(0..1_000_000i64)
        ),
        3 => format!(
            "UPDATE lineorder SET lo_orderdate = {} WHERE rowid = {pick}",
            rng.gen_range(0..n_dates)
        ),
        4 => format!(
            "UPDATE lineorder SET lo_quantity = {} WHERE rowid = {pick}",
            rng.gen_range(1..=50i64)
        ),
        _ if live.len() > 100 => format!("DELETE FROM lineorder WHERE rowid = {pick}"),
        _ => format!("UPDATE lineorder SET lo_shipmode = 'AIR' WHERE rowid = {pick}"),
    }
}

/// 200 seeded SPJGA queries interleaved with 200 seeded writes: after every
/// write batch, the finely-segmented database must answer exactly like the
/// flat-scan oracle — result-identical to the last bit, including float
/// accumulation order (pruning only removes segments that contribute no
/// rows, and surviving rows keep their scan order).
#[test]
fn interleaved_writes_segmented_matches_flat_oracle() {
    let base = ssb::generate(0.002, 20260729);
    let mut seg_db = base.clone();
    // 1024-row segments: ~12 prunable segments instead of one 64K segment.
    seg_db.table_mut("lineorder").unwrap().set_segment_rows(1024);
    let shared_seg = SharedDatabase::new(seg_db);
    let shared_flat = SharedDatabase::new(base);
    let mut seg_conn = EmbeddedConnection::over(shared_seg.clone());
    let mut flat_conn = EmbeddedConnection::over(shared_flat.clone())
        .with_options(ExecOptions::default().pruning(false));

    let mut rng = SmallRng::seed_from_u64(0x5E6_5CA9);
    let (mut total_pruned, mut total_scanned) = (0usize, 0usize);
    let mut nonempty = 0usize;
    for round in 0..40 {
        for w in 0..5 {
            let sql = random_write(&mut rng, &shared_seg.snapshot());
            let a = seg_conn.execute(&sql, &[]).unwrap_or_else(|e| {
                panic!("round {round} write {w} failed on segmented: {e}\n{sql}")
            });
            let b = flat_conn.execute(&sql, &[]).unwrap();
            assert_eq!(a, b, "round {round}: write affected different row counts\n{sql}");
        }
        for q in 0..5 {
            let sql = random_sql(&mut rng).literal_sql();
            let stmt = seg_conn
                .prepare(&sql)
                .unwrap_or_else(|e| panic!("round {round} query {q} prepare failed: {e}\n{sql}"));
            let (rows, plan) = seg_conn.query_with_plan(&stmt, &[]).unwrap();
            total_pruned += plan.segments_pruned;
            total_scanned += plan.segments_scanned;
            let seg_res = to_result(rows);
            let flat_res = to_result(flat_conn.query(&sql, &[]).unwrap());
            assert_eq!(
                seg_res, flat_res,
                "round {round} query {q}: segmented != flat oracle\n{sql}"
            );
            if !seg_res.rows.is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(total_pruned > 0, "the differential never exercised pruning");
    assert!(total_scanned > 0);
    assert!(nonempty >= 100, "only {nonempty}/200 queries returned rows; generator too weak");
}

/// The selective SSB flight 1 queries must actually skip segments of a
/// date-clustered fact table — and stay bit-identical to the flat scan.
#[test]
fn ssb_q1_flight_prunes_segments_bit_identically() {
    let mut db = ssb::generate(0.01, 42);
    db.table_mut("lineorder").unwrap().set_segment_rows(4096);
    let n_segs = db.table("lineorder").unwrap().segment_count();
    assert!(n_segs >= 10, "fixture too small to mean anything: {n_segs} segments");

    for sq in ssb::queries() {
        let flat = execute(&db, &sq.query, &ExecOptions::default().pruning(false)).unwrap();
        let pruned = execute(&db, &sq.query, &ExecOptions::default()).unwrap();
        assert!(
            pruned.result.same_contents(&flat.result, 0.0),
            "{}: pruned scan diverged from flat scan",
            sq.id
        );
        assert_eq!(
            pruned.plan.segments_scanned + pruned.plan.segments_pruned,
            n_segs,
            "{}: scan counts must cover the table",
            sq.id
        );
        if sq.id.starts_with("Q1") {
            assert!(
                pruned.plan.segments_pruned > 0,
                "{}: a tight date predicate must skip segments of a \
                 date-clustered table (scanned {}, pruned {})",
                sq.id,
                pruned.plan.segments_scanned,
                pruned.plan.segments_pruned
            );
        }
    }
}

/// Parallel execution over the pruned segment set agrees with the serial
/// flat scan (the dispatcher never hands out a pruned segment).
#[test]
fn parallel_pruned_scan_matches_flat_oracle() {
    let mut db = ssb::generate(0.005, 7);
    db.table_mut("lineorder").unwrap().set_segment_rows(2048);
    let mut popts = ExecOptions::default().threads(4).morsel_rows(512);
    popts.optimizer.parallel_min_rows_per_thread = 1;
    popts.optimizer.host_threads = 64;
    for sq in ssb::queries() {
        let flat = execute(&db, &sq.query, &ExecOptions::default().pruning(false)).unwrap();
        let par = execute(&db, &sq.query, &popts).unwrap();
        assert!(
            par.plan.executor.is_parallel() || par.plan.segments_scanned == 0,
            "{}: fell back to serial with unpruned segments",
            sq.id
        );
        assert!(
            par.result.same_contents(&flat.result, 1e-9),
            "{}: parallel pruned scan diverged",
            sq.id
        );
    }
}
