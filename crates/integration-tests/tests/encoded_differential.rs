//! Encoded-vs-flat result identity: the compressed scan path must be
//! observationally invisible. Every generated SPJGA query runs through
//! three arms — encoded segments (the default), the flat columns with
//! encoded evaluation disabled, and zone-map pruning disabled — serially
//! and through the morsel executor, and all answers must agree.
//!
//! Between query batches the fact table takes interleaved writes (updates
//! and reuse-inserts unseal their segment; deletes keep the encoding and
//! rely on the liveness bitmap) followed by a re-seal, so the differential
//! covers the unseal → re-encode lifecycle and mixed sealed/unsealed
//! tables, not just a freshly encoded image. The generator deliberately
//! mixes float literals over integer columns — the encoded seed-range
//! derivation must round them exactly as the scalar path does.
//!
//! `ASTORE_SF` scales the dataset (CI's sf1 job smokes this at 0.2).

use astore_core::expr::{CmpOp, MeasureExpr, Pred};
use astore_core::prelude::*;
use astore_core::query::Aggregate;
use astore_datagen::{env_scale_factor, ssb};
use astore_storage::types::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const MFGRS: [&str; 5] = ["MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"];

/// One random dimension predicate.
fn random_dim_pred(rng: &mut SmallRng) -> (&'static str, Pred) {
    match rng.gen_range(0..6u32) {
        0 => ("date", Pred::eq("d_year", rng.gen_range(1992..=1998i64))),
        1 => {
            let lo = rng.gen_range(1992..=1997i64);
            ("date", Pred::between("d_year", lo, lo + 1))
        }
        2 => ("customer", Pred::eq("c_region", REGIONS[rng.gen_range(0..REGIONS.len())])),
        3 => ("supplier", Pred::eq("s_region", REGIONS[rng.gen_range(0..REGIONS.len())])),
        4 => ("part", Pred::eq("p_mfgr", MFGRS[rng.gen_range(0..MFGRS.len())])),
        _ => {
            let lo = rng.gen_range(1..=40i64);
            ("part", Pred::between("p_size", lo, lo + rng.gen_range(0..=10i64)))
        }
    }
}

/// One random fact-local predicate. Half the arms use float literals over
/// integer columns: the encoded kernels compare bit-packed *codes*, so the
/// literal→code rounding must match scalar comparison semantics exactly
/// (e.g. `lo_quantity < 24.5` ≡ `lo_quantity <= 24`, and a between over
/// fractional bounds must not widen to the enclosing integers).
fn random_fact_pred(rng: &mut SmallRng) -> Pred {
    match rng.gen_range(0..6u32) {
        0 => {
            let lo = rng.gen_range(1..=8i64);
            Pred::between("lo_discount", lo, lo + 2)
        }
        1 => Pred::cmp("lo_quantity", CmpOp::Lt, rng.gen_range(5..=50i64)),
        2 => Pred::cmp("lo_quantity", CmpOp::Lt, rng.gen_range(5..=50i64) as f64 - 0.5),
        3 => {
            let lo = rng.gen_range(1..=7i64) as f64;
            Pred::between("lo_discount", lo - 0.5, lo + 1.5)
        }
        4 => Pred::cmp("lo_extendedprice", CmpOp::Ge, rng.gen_range(100..=2000i64) as f64 * 100.5),
        _ => {
            let lo = rng.gen_range(1..=8i64);
            Pred::between("lo_discount", lo, lo + 1).and(Pred::cmp(
                "lo_quantity",
                CmpOp::Ge,
                rng.gen_range(1..=30i64) as f64 + 0.5,
            ))
        }
    }
}

/// A random SPJGA query over the SSB schema.
fn random_query(rng: &mut SmallRng) -> Query {
    const GROUPS: [(&str, &str); 6] = [
        ("date", "d_year"),
        ("date", "d_month"),
        ("customer", "c_region"),
        ("supplier", "s_region"),
        ("part", "p_mfgr"),
        ("lineorder", "lo_shipmode"),
    ];
    let mut q = Query::new().root("lineorder");
    for _ in 0..rng.gen_range(0..=2u32) {
        let (t, p) = random_dim_pred(rng);
        q = q.filter(t, p);
    }
    if rng.gen_bool(0.7) {
        q = q.filter("lineorder", random_fact_pred(rng));
    }
    let mut used = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let (t, c) = GROUPS[rng.gen_range(0..GROUPS.len())];
        if !used.contains(&c) {
            used.push(c);
            q = q.group(t, c);
        }
    }
    for i in 0..rng.gen_range(1..=2u32) {
        let name = format!("agg{i}");
        q = q.agg(match rng.gen_range(0..4u32) {
            0 => Aggregate::sum(MeasureExpr::col("lo_revenue"), name),
            1 => Aggregate::sum(
                MeasureExpr::Mul(
                    Box::new(MeasureExpr::col("lo_extendedprice")),
                    Box::new(MeasureExpr::col("lo_discount")),
                ),
                name,
            ),
            2 => Aggregate::count(name),
            _ => Aggregate::min(MeasureExpr::col("lo_revenue"), name),
        });
    }
    q
}

/// The three serial arms: the default encoded scan, the flat columns with
/// encoded evaluation off, and pruning off (every segment admitted).
fn arms() -> [(&'static str, ExecOptions); 3] {
    [
        ("encoded", ExecOptions::default()),
        ("flat", ExecOptions::default().encoded(false)),
        ("unpruned", ExecOptions::default().pruning(false)),
    ]
}

/// The same arm through the morsel executor, fan-out forced on the
/// test-sized dataset.
fn parallel(base: &ExecOptions) -> ExecOptions {
    let mut o = base.clone().threads(4).morsel_rows(1024);
    o.optimizer.parallel_min_rows_per_thread = 1;
    o.optimizer.host_threads = 64;
    o
}

#[test]
fn encoded_flat_unpruned_differential_with_interleaved_writes() {
    const ROUNDS: usize = 4;
    const PER_ROUND: usize = 50; // 200 queries total
    let sf = env_scale_factor(0.005);
    let mut db = ssb::generate_streaming(sf, 0xE2C0DE);
    {
        // Re-chunk the fact table into small segments so zone-map pruning
        // and per-segment encoding choices actually vary, then re-seal
        // (re-chunking unseals everything).
        let t = db.table_mut("lineorder").unwrap();
        t.set_segment_rows(4096);
        t.seal_segments();
        assert!(
            t.encodings().iter().all(|e| e.as_ref().is_some_and(|e| e.encoded_cols() > 0)),
            "fixture must start fully encoded"
        );
    }

    let mut rng = SmallRng::seed_from_u64(0x0D1F_FE2C);
    let mut nonempty = 0usize;
    for round in 0..ROUNDS {
        for i in 0..PER_ROUND {
            let q = random_query(&mut rng);
            let qi = round * PER_ROUND + i;
            let mut reference: Option<ExecOutput> = None;
            for (name, opts) in arms() {
                let serial = execute(&db, &q, &opts)
                    .unwrap_or_else(|e| panic!("query {qi} failed on {name} arm: {e:?}\n{q:?}"));
                let par = execute(&db, &q, &parallel(&opts)).unwrap_or_else(|e| {
                    panic!("query {qi} failed on parallel {name} arm: {e:?}\n{q:?}")
                });
                // Parallel merges re-associate float additions; everything
                // else is bit-identical work over identical rows.
                assert!(
                    par.result.same_contents(&serial.result, 1e-9),
                    "query {qi}: {name} arm diverged serial vs parallel\n{q:?}"
                );
                match &reference {
                    None => reference = Some(serial),
                    Some(r) => {
                        assert!(
                            serial.result.same_contents(&r.result, 1e-9),
                            "query {qi}: {name} arm diverged from encoded arm \
                             ({} vs {} rows)\n{q:?}",
                            serial.result.len(),
                            r.result.len()
                        );
                        assert_eq!(
                            serial.plan.selected_rows, r.plan.selected_rows,
                            "query {qi}: {name} arm selected a different row count\n{q:?}"
                        );
                    }
                }
            }
            if !reference.expect("three arms ran").result.rows.is_empty() {
                nonempty += 1;
            }
        }

        // Interleaved writes: updates and reuse-inserts unseal their
        // segments, deletes keep the encoding (liveness is consulted on
        // scan), appends grow an unsealed tail. The next round therefore
        // runs over a mixed sealed/unsealed table; the re-seal afterwards
        // exercises re-encoding of the dirtied segments.
        let t = db.table_mut("lineorder").unwrap();
        let n = t.num_slots() as u32;
        for _ in 0..8 {
            let r = rng.gen_range(0..n);
            if t.is_live(r) {
                t.update(r, "lo_quantity", &Value::Int(rng.gen_range(1..=50)));
            }
        }
        for _ in 0..8 {
            let r = rng.gen_range(0..n);
            if t.is_live(r) {
                t.delete(r);
            }
        }
        for _ in 0..4 {
            let r = (0..n).find(|&r| t.is_live(r)).expect("a live row");
            let vals = t.row(r);
            t.insert(&vals);
        }
        if round % 2 == 0 {
            // Half the rounds run the next batch over the mixed state;
            // the other half re-seal first.
            t.seal_segments();
        }
    }
    assert!(
        nonempty > (ROUNDS * PER_ROUND) / 3,
        "generator degenerated: only {nonempty}/{} queries returned rows",
        ROUNDS * PER_ROUND
    );
}
